//! Group commit: batching appenders onto shared fsync boundaries.
//!
//! PR 3 put the WAL behind a dedicated append mutex assigning LSNs
//! independently of lock traffic; this module is the batching layer that
//! slots in behind it. Appenders append under the log mutex (cheap —
//! encode + push, no I/O) and *commit* by parking on their record's LSN in
//! [`DurableWal::sync_to`]. The first parked committer becomes the batch
//! leader: it waits out the group-commit window so followers can pile on,
//! drains every frame staged since the last flush, and retires the whole
//! batch with one device write + fsync. `durable_lsn` advances only at these
//! fsync boundaries — a crash loses precisely the suffix past the last
//! completed fsync, never a prefix of it.
//!
//! Failure is sticky: if a sync fails mid-batch, no transaction in that
//! batch (or any later one) is ever acknowledged — the error surfaces to
//! every parked committer and to all future ones. Acking a commit whose
//! fsync did not complete is the one unforgivable durability bug.

use crate::device::{LogDevice, MemDevice};
use crate::log::{Lsn, Wal};
use acc_common::faults::FaultInjector;
use acc_common::{Error, Result};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a batch leader waits for followers before flushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitWindow {
    /// Wait exactly this long. Zero — the default — flushes immediately
    /// (every committer that finds no flush in progress leads its own
    /// batch); non-zero trades commit latency for fewer, fatter fsyncs.
    Fixed(Duration),
    /// Track the observed arrival rate: the leader waits roughly four EWMA
    /// inter-append gaps (time enough for a few more records to arrive at
    /// the current pace), clamped to `floor..=ceil` — but only while
    /// flushes are actually coalescing commits. The second signal is an
    /// EWMA of committers retired per flush: while it sits near 1 (a lone
    /// committer, or a device so fast that batching buys nothing) the wait
    /// is zero, so a solo thread never pays a window for followers that
    /// cannot exist. On a slow device under concurrency the in-flight fsync
    /// itself coalesces the first followers, occupancy rises above the
    /// engage threshold, and the window switches on. Gaps so long that four
    /// of them exceed `ceil` mean "idle": zero wait again.
    Adaptive {
        /// Smallest engaged wait (granted even when the gap estimate says
        /// less — an fsync costs the same either way).
        floor: Duration,
        /// Largest wait; estimated waits beyond it mean "idle, don't wait".
        ceil: Duration,
    },
}

impl Default for CommitWindow {
    fn default() -> CommitWindow {
        CommitWindow::Fixed(Duration::ZERO)
    }
}

/// Commits-per-flush below which an adaptive window stays off: flushes are
/// not coalescing, so waiting would tax the only committer there is.
const ENGAGE_COMMITS_PER_FLUSH: f64 = 1.5;

/// The leader wait a [`CommitWindow::Adaptive`] window prescribes given the
/// EWMA of inter-append gaps (`0` = no estimate yet) and the EWMA of
/// committers retired per flush. Pure, so the clamp/engage policy is
/// unit-testable without a clock.
pub fn adaptive_wait(
    ewma_gap_ns: u64,
    ewma_commits_per_flush: f64,
    floor: Duration,
    ceil: Duration,
) -> Duration {
    if ewma_commits_per_flush < ENGAGE_COMMITS_PER_FLUSH {
        // Flushes retire ~one commit each: either a lone committer (no
        // follower will ever arrive during the wait) or a device fast
        // enough that followers retire behind the in-flight fsync anyway.
        // Waiting buys nothing; don't.
        return Duration::ZERO;
    }
    if ewma_gap_ns == 0 {
        // Coalescing but no rate estimate yet: the cheapest engaged wait.
        return floor;
    }
    let want = Duration::from_nanos(ewma_gap_ns.saturating_mul(4));
    if want > ceil {
        // Records arrive slower than the ceiling covers: idle, don't wait.
        return Duration::ZERO;
    }
    want.max(floor)
}

/// Tuning for the group-commit batcher.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitPolicy {
    /// The leader's follower-accumulation wait.
    pub window: CommitWindow,
    /// Background-flush threshold: once this many records are appended but
    /// not yet durable, a non-committing append may trigger a flush so the
    /// staged tail cannot grow without bound between commits.
    pub max_batch: usize,
}

impl GroupCommitPolicy {
    /// A fixed-window policy.
    pub fn fixed(window: Duration, max_batch: usize) -> GroupCommitPolicy {
        GroupCommitPolicy {
            window: CommitWindow::Fixed(window),
            max_batch,
        }
    }

    /// A rate-adaptive policy (see [`CommitWindow::Adaptive`]).
    pub fn adaptive(floor: Duration, ceil: Duration, max_batch: usize) -> GroupCommitPolicy {
        GroupCommitPolicy {
            window: CommitWindow::Adaptive { floor, ceil },
            max_batch,
        }
    }
}

impl Default for GroupCommitPolicy {
    fn default() -> GroupCommitPolicy {
        GroupCommitPolicy {
            window: CommitWindow::default(),
            max_batch: 256,
        }
    }
}

/// What one leader flush retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushStats {
    /// Records newly made durable by this flush.
    pub records: u64,
    /// Encoded bytes newly made durable by this flush.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct GcState {
    /// Records covered by completed fsyncs (the durable LSN frontier:
    /// record `lsn` is durable iff `lsn < durable`).
    durable: u64,
    /// True while a leader is flushing (followers park instead of syncing).
    flushing: bool,
    /// Completed fsync boundaries.
    fsyncs: u64,
    /// Sticky device failure: set once, fails every later sync.
    failed: Option<String>,
    /// When the last flush completed (adaptive-window rate tracking).
    last_flush: Option<Instant>,
    /// EWMA (α = 1/4) of inter-append gaps, nanoseconds; 0 = no estimate.
    /// Sampled batchwise: elapsed-since-last-flush / records-this-flush.
    ewma_gap_ns: u64,
    /// EWMA (α = 1/4) of committers retired per flush — the adaptive
    /// window's engage signal (see [`adaptive_wait`]).
    ewma_commits_per_flush: f64,
    /// `sync_to` calls since the last completed flush.
    committers_since_flush: u64,
}

impl GcState {
    /// Fold one completed flush covering `records` new records into the
    /// rate estimates. Called at each completed flush, under the state
    /// mutex.
    fn note_flush(&mut self, records: u64) {
        let now = Instant::now();
        if let Some(prev) = self.last_flush {
            let elapsed = now.duration_since(prev).as_nanos().min(u64::MAX as u128) as u64;
            // Mean inter-append gap over the interval. Dividing by the batch
            // size is also what keeps the feedback loop stable: a longer
            // window collects proportionally more records, so the per-record
            // gap — and with it the next window — converges instead of
            // compounding.
            let gap = elapsed / records.max(1);
            self.ewma_gap_ns = if self.ewma_gap_ns == 0 {
                gap
            } else {
                self.ewma_gap_ns - self.ewma_gap_ns / 4 + gap / 4
            };
        }
        self.last_flush = Some(now);
        self.ewma_commits_per_flush =
            self.ewma_commits_per_flush * 0.75 + self.committers_since_flush as f64 * 0.25;
        self.committers_since_flush = 0;
    }
}

/// The WAL plus its durable backend and the group-commit state machine.
///
/// The in-memory [`Wal`] stays the source of truth for reads (`records`,
/// `to_bytes`); the device holds the durable image. The three locks are
/// ordered `state` → `log` → `dev` (each taken briefly, never nested the
/// other way), so appenders touch only `log` while a leader is inside the
/// device fsync.
pub struct DurableWal {
    log: Mutex<Wal>,
    dev: Mutex<Box<dyn LogDevice>>,
    state: Mutex<GcState>,
    cv: Condvar,
    policy: GroupCommitPolicy,
    faults: Option<Arc<FaultInjector>>,
}

impl std::fmt::Debug for DurableWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap();
        f.debug_struct("DurableWal")
            .field("durable", &state.durable)
            .field("fsyncs", &state.fsyncs)
            .field("failed", &state.failed)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Default for DurableWal {
    fn default() -> DurableWal {
        DurableWal::new(Box::new(MemDevice::new()), GroupCommitPolicy::default())
    }
}

impl DurableWal {
    /// A log on `dev` under `policy`.
    pub fn new(dev: Box<dyn LogDevice>, policy: GroupCommitPolicy) -> DurableWal {
        DurableWal {
            log: Mutex::new(Wal::new()),
            dev: Mutex::new(dev),
            state: Mutex::new(GcState::default()),
            cv: Condvar::new(),
            policy,
            faults: None,
        }
    }

    /// Install a fault injector: the inner log observes appends and step
    /// boundaries (as before), and the batcher reports each completed fsync
    /// so a planned crash can land exactly on a fsync boundary.
    pub fn set_fault_injector(&mut self, faults: Arc<FaultInjector>) {
        self.log
            .lock()
            .unwrap()
            .set_fault_injector(Arc::clone(&faults));
        self.faults = Some(faults);
    }

    /// Run `f` under the append mutex — the PR-3 append path, unchanged.
    pub fn with_log<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        f(&mut self.log.lock().unwrap())
    }

    /// The group-commit policy in force.
    pub fn policy(&self) -> GroupCommitPolicy {
        self.policy
    }

    /// Records covered by completed fsyncs.
    pub fn durable_records(&self) -> u64 {
        self.state.lock().unwrap().durable
    }

    /// Completed fsync boundaries.
    pub fn fsyncs(&self) -> u64 {
        self.state.lock().unwrap().fsyncs
    }

    /// The device's durable record stream (what a crash right now leaves).
    pub fn durable_stream(&self) -> Vec<u8> {
        self.dev.lock().unwrap().durable_stream()
    }

    /// The device's raw durable image (sector-framed for a file device).
    pub fn raw_image(&self) -> Vec<u8> {
        self.dev.lock().unwrap().raw_image()
    }

    /// The device's short name ("mem" / "file").
    pub fn device_kind(&self) -> &'static str {
        self.dev.lock().unwrap().kind()
    }

    /// Park until record `lsn` is durable, leading a batch flush if nobody
    /// else is. Returns `Some(stats)` if this call led the flush that
    /// retired `lsn` (the caller observes the fsync boundary), `None` if a
    /// concurrent leader covered it. Errors are sticky: once a sync fails,
    /// every current and future committer gets the error.
    pub fn sync_to(&self, lsn: Lsn) -> Result<Option<FlushStats>> {
        let mut state = self.state.lock().unwrap();
        state.committers_since_flush += 1;
        loop {
            if let Some(msg) = &state.failed {
                return Err(Error::Internal(format!("wal device failed: {msg}")));
            }
            if state.durable > lsn.0 {
                return Ok(None);
            }
            if state.flushing {
                state = self.cv.wait(state).unwrap();
                continue;
            }
            // Lead: let followers accumulate for one window, then flush
            // everything staged — including appends that arrived during the
            // wait — in one write + fsync.
            state.flushing = true;
            let wait = match self.policy.window {
                CommitWindow::Fixed(w) => w,
                CommitWindow::Adaptive { floor, ceil } => {
                    adaptive_wait(state.ewma_gap_ns, state.ewma_commits_per_flush, floor, ceil)
                }
            };
            drop(state);
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            let flushed = self.flush_once();
            state = self.state.lock().unwrap();
            state.flushing = false;
            match flushed {
                Ok((covered, bytes)) => {
                    let stats = FlushStats {
                        records: covered - state.durable,
                        bytes,
                    };
                    state.durable = covered;
                    state.fsyncs += 1;
                    state.note_flush(stats.records);
                    self.cv.notify_all();
                    // This leader's own record is covered by construction:
                    // it was appended before sync_to was called.
                    debug_assert!(state.durable > lsn.0);
                    return Ok(Some(stats));
                }
                Err(e) => {
                    state.failed = Some(e.to_string());
                    self.cv.notify_all();
                    return Err(Error::Internal(format!("wal device failed: {e}")));
                }
            }
        }
    }

    /// Background flush hint: if at least `max_batch` records are appended
    /// but not durable and no flush is running, lead one now (no window
    /// wait — the batch is already full). Returns the flush stats if this
    /// call flushed. Device errors are sticky but deliberately not returned
    /// here: a failed background flush surfaces at the next commit's
    /// `sync_to`, which is the ack point that must see it.
    pub fn flush_if_batchful(&self) -> Option<FlushStats> {
        {
            let state = self.state.lock().unwrap();
            if state.flushing || state.failed.is_some() {
                return None;
            }
            let appended = self.log.lock().unwrap().len() as u64;
            if appended.saturating_sub(state.durable) < self.policy.max_batch as u64 {
                return None;
            }
        }
        self.force_flush().ok().flatten()
    }

    /// Lead a flush now regardless of batch size (used by tests and
    /// shutdown). Same sticky-failure semantics as [`DurableWal::sync_to`].
    pub fn force_flush(&self) -> Result<Option<FlushStats>> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(msg) = &state.failed {
                return Err(Error::Internal(format!("wal device failed: {msg}")));
            }
            if state.flushing {
                state = self.cv.wait(state).unwrap();
                continue;
            }
            let appended = self.log.lock().unwrap().len() as u64;
            if state.durable >= appended {
                return Ok(None);
            }
            state.flushing = true;
            drop(state);
            let flushed = self.flush_once();
            state = self.state.lock().unwrap();
            state.flushing = false;
            match flushed {
                Ok((covered, bytes)) => {
                    let stats = FlushStats {
                        records: covered - state.durable,
                        bytes,
                    };
                    state.durable = covered;
                    state.fsyncs += 1;
                    state.note_flush(stats.records);
                    self.cv.notify_all();
                    return Ok(Some(stats));
                }
                Err(e) => {
                    state.failed = Some(e.to_string());
                    self.cv.notify_all();
                    return Err(Error::Internal(format!("wal device failed: {e}")));
                }
            }
        }
    }

    /// Drain staged frames and fsync them. Returns the record count covered
    /// by this flush (the log length at drain time) and the byte count
    /// written. Called only by a leader (state.flushing == true), so there
    /// is exactly one drainer at a time.
    fn flush_once(&self) -> Result<(u64, u64)> {
        let (bytes, covered) = {
            let mut log = self.log.lock().unwrap();
            let bytes = log.take_staged();
            (bytes, log.len() as u64)
        };
        let n = bytes.len() as u64;
        let mut dev = self.dev.lock().unwrap();
        dev.stage(&bytes);
        dev.sync()?;
        if let Some(f) = &self.faults {
            if f.is_enabled() {
                f.on_wal_fsync(|| dev.durable_stream());
            }
        }
        Ok((covered, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use crate::record::LogRecord;
    use acc_common::TxnId;

    fn commit_rec(n: u64) -> LogRecord {
        LogRecord::Commit { txn: TxnId(n) }
    }

    /// A device whose sync always fails — the mid-batch crash model.
    struct BrokenDevice;

    impl LogDevice for BrokenDevice {
        fn stage(&mut self, _bytes: &[u8]) {}
        fn sync(&mut self) -> Result<()> {
            Err(Error::Internal("injected sync failure".into()))
        }
        fn staged_len(&self) -> usize {
            0
        }
        fn durable_len(&self) -> u64 {
            0
        }
        fn durable_stream(&self) -> Vec<u8> {
            Vec::new()
        }
        fn raw_image(&self) -> Vec<u8> {
            Vec::new()
        }
        fn kind(&self) -> &'static str {
            "broken"
        }
    }

    #[test]
    fn sync_to_advances_durable_only_at_fsync() {
        let wal = DurableWal::default();
        let a = wal.with_log(|w| w.append(commit_rec(1)));
        let b = wal.with_log(|w| w.append(commit_rec(2)));
        assert_eq!(wal.durable_records(), 0);
        assert!(wal.durable_stream().is_empty());
        let stats = wal.sync_to(b).unwrap().expect("led the flush");
        assert_eq!(stats.records, 2);
        assert_eq!(wal.durable_records(), 2);
        assert_eq!(wal.fsyncs(), 1);
        // Both records are on the durable stream.
        let recs = codec::decode_all(&wal.durable_stream());
        assert_eq!(recs, vec![commit_rec(1), commit_rec(2)]);
        // Re-syncing an already durable LSN is a no-op.
        assert_eq!(wal.sync_to(a).unwrap(), None);
        assert_eq!(wal.fsyncs(), 1);
    }

    #[test]
    fn lone_appender_flushes_within_the_window() {
        // Liveness: one committer, nonzero window, nobody else to batch
        // with — it must lead its own flush and return, not park forever.
        let wal = DurableWal::new(
            Box::new(MemDevice::new()),
            GroupCommitPolicy::fixed(Duration::from_millis(5), 256),
        );
        let lsn = wal.with_log(|w| w.append(commit_rec(1)));
        let start = std::time::Instant::now();
        wal.sync_to(lsn).unwrap().expect("led");
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(wal.durable_records(), 1);
    }

    #[test]
    fn failed_sync_is_sticky_and_acks_nothing() {
        let mut wal = DurableWal::new(Box::new(BrokenDevice), GroupCommitPolicy::default());
        wal.set_fault_injector(FaultInjector::disabled());
        let lsn = wal.with_log(|w| w.append(commit_rec(1)));
        assert!(wal.sync_to(lsn).is_err());
        assert_eq!(wal.durable_records(), 0, "no ack on failed fsync");
        // Sticky: later commits fail too, without touching the device.
        let lsn2 = wal.with_log(|w| w.append(commit_rec(2)));
        assert!(wal.sync_to(lsn2).is_err());
        assert!(wal.force_flush().is_err());
    }

    #[test]
    fn concurrent_committers_coalesce_into_few_fsyncs() {
        let wal = Arc::new(DurableWal::new(
            Box::new(MemDevice::new()),
            GroupCommitPolicy::fixed(Duration::from_millis(2), 256),
        ));
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let lsn = wal.with_log(|w| w.append(commit_rec(i)));
                    wal.sync_to(lsn).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.durable_records(), 8);
        assert!(
            wal.fsyncs() <= 8,
            "never more fsyncs than committers: {}",
            wal.fsyncs()
        );
        assert_eq!(codec::decode_all(&wal.durable_stream()).len(), 8);
    }

    #[test]
    fn flush_if_batchful_flushes_at_threshold() {
        let wal = DurableWal::new(
            Box::new(MemDevice::new()),
            GroupCommitPolicy::fixed(Duration::ZERO, 4),
        );
        for i in 0..3 {
            wal.with_log(|w| w.append(commit_rec(i)));
            assert_eq!(wal.flush_if_batchful(), None, "below threshold");
        }
        wal.with_log(|w| w.append(commit_rec(3)));
        let stats = wal.flush_if_batchful().expect("at threshold");
        assert_eq!(stats.records, 4);
        assert_eq!(wal.durable_records(), 4);
    }

    #[test]
    fn adaptive_wait_clamps_to_the_observed_rate() {
        let floor = Duration::from_micros(50);
        let ceil = Duration::from_millis(2);
        // Not coalescing (~1 commit per flush): never wait, whatever the
        // rate estimate says — a lone committer has no followers to collect.
        assert_eq!(adaptive_wait(0, 0.0, floor, ceil), Duration::ZERO);
        assert_eq!(adaptive_wait(1_000, 1.0, floor, ceil), Duration::ZERO);
        assert_eq!(adaptive_wait(100_000, 1.4, floor, ceil), Duration::ZERO);
        // Engaged but no rate estimate yet: the cheapest engaged wait.
        assert_eq!(adaptive_wait(0, 4.0, floor, ceil), floor);
        // Gaps so small that 4× still undercuts the floor: floor wins.
        assert_eq!(adaptive_wait(1_000, 4.0, floor, ceil), floor);
        // In range: wait ≈ four gaps.
        assert_eq!(
            adaptive_wait(100_000, 4.0, floor, ceil),
            Duration::from_micros(400)
        );
        // The exact ceiling is still a wait...
        assert_eq!(adaptive_wait(500_000, 4.0, floor, ceil), ceil);
        // ...but beyond it the system is idle: no wait at all.
        assert_eq!(adaptive_wait(500_001, 4.0, floor, ceil), Duration::ZERO);
        assert_eq!(adaptive_wait(u64::MAX, 8.0, floor, ceil), Duration::ZERO);
    }

    #[test]
    fn adaptive_window_stays_live_and_durable() {
        // Functional check (the latency/batching numbers live in
        // `figures -- wal`): an adaptive policy must ack every commit and
        // advance durability exactly like a fixed one.
        let wal = Arc::new(DurableWal::new(
            Box::new(MemDevice::new()),
            GroupCommitPolicy::adaptive(Duration::from_micros(50), Duration::from_millis(2), 256),
        ));
        let threads: Vec<_> = (0..4u64)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for j in 0..8u64 {
                        let lsn = wal.with_log(|w| w.append(commit_rec(i * 8 + j)));
                        wal.sync_to(lsn).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.durable_records(), 32);
        assert_eq!(codec::decode_all(&wal.durable_stream()).len(), 32);
        assert!(wal.fsyncs() <= 32);
    }
}
