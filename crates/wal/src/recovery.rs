//! Step-aware crash recovery.
//!
//! Model: the caller hands recovery the *base* database image (the state
//! before any logged record — e.g. the populated benchmark database) plus
//! whatever log prefix survived the crash. Recovery replays durable work and
//! reports what is left for the transaction runtime to do:
//!
//! * **committed** transactions: fully replayed;
//! * **aborted** transactions: fully replayed — the runtime logged their
//!   rollback (single-step undo or compensating steps) as ordinary updates
//!   before the abort record, so replay reproduces the net effect;
//! * **in-flight** transactions: updates of *completed* steps (those at or
//!   before the transaction's last end-of-step record) are replayed — a step
//!   is atomic and durable; updates of the *incomplete* current step are not
//!   replayed at all (equivalent to redo-then-undo, and safe because the
//!   step still held conventional locks on everything it touched, so no
//!   later logged update can depend on the skipped ones). In-flight
//!   transactions with at least one completed step are reported in
//!   [`RecoveryReport::needs_compensation`] together with their last saved
//!   work area; the runtime then runs their compensating steps (§3.4).

use crate::log::Wal;
use crate::record::LogRecord;
use acc_common::{Error, Result, TxnId, TxnTypeId};
use acc_storage::Database;
use std::collections::{HashMap, HashSet};

/// An in-flight transaction that survived the crash with durable steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlight {
    /// The transaction.
    pub txn: TxnId,
    /// Its analyzed type.
    pub txn_type: TxnTypeId,
    /// Number of forward steps that completed (their effects are in the
    /// recovered database).
    pub steps_completed: u32,
    /// The work area saved with the last end-of-step record.
    pub work_area: Vec<u8>,
    /// True if the transaction had already begun compensating when the
    /// system crashed; compensation must be resumed, not started.
    pub compensating: bool,
}

/// What recovery did and what remains to be done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose commit record survived.
    pub committed: Vec<TxnId>,
    /// Transactions whose abort record survived (rollback fully replayed).
    pub aborted: Vec<TxnId>,
    /// In-flight multi-step transactions whose durable steps must now be
    /// semantically undone by compensating steps.
    pub needs_compensation: Vec<InFlight>,
    /// In-flight transactions with no completed step: nothing of theirs is
    /// in the database; they simply vanish.
    pub discarded: Vec<TxnId>,
    /// Updates replayed.
    pub redone_updates: usize,
    /// Incomplete-step updates skipped.
    pub skipped_updates: usize,
}

/// Replay `wal` against the base image `db`. See the module docs for the
/// contract.
pub fn recover(db: &mut Database, wal: &Wal) -> Result<RecoveryReport> {
    let records = wal.records();

    // ---- analysis ----------------------------------------------------------
    let mut types: HashMap<TxnId, TxnTypeId> = HashMap::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut comp_begun: HashMap<TxnId, u32> = HashMap::new();
    // Per txn: (log index of last StepEnd, step_index, work area).
    let mut last_step_end: HashMap<TxnId, (usize, u32, Vec<u8>)> = HashMap::new();

    for (i, rec) in records.iter().enumerate() {
        match rec {
            LogRecord::Begin { txn, txn_type } => {
                types.insert(*txn, *txn_type);
            }
            LogRecord::StepEnd {
                txn,
                step_index,
                work_area,
            } => {
                last_step_end.insert(*txn, (i, *step_index, work_area.clone()));
            }
            LogRecord::CompensationBegin { txn, from_step } => {
                comp_begun.insert(*txn, *from_step);
            }
            LogRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            LogRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            LogRecord::Update { .. } => {}
        }
    }

    let finished = |t: &TxnId| committed.contains(t) || aborted.contains(t);

    // ---- redo --------------------------------------------------------------
    let mut redone = 0usize;
    let mut skipped = 0usize;
    for (i, rec) in records.iter().enumerate() {
        let LogRecord::Update {
            txn,
            table,
            slot,
            before,
            after,
        } = rec
        else {
            continue;
        };
        let durable = finished(txn)
            || last_step_end
                .get(txn)
                .is_some_and(|(step_end_idx, _, _)| i <= *step_end_idx);
        if !durable {
            skipped += 1;
            continue;
        }
        let t = db.table_mut(*table)?;
        match (before, after) {
            (None, Some(row)) => t.insert_at(*slot, row.clone())?,
            (Some(_), Some(row)) => {
                t.update(*slot, row.clone())?;
            }
            (Some(_), None) => {
                t.delete(*slot)?;
            }
            (None, None) => {
                return Err(Error::Recovery(format!(
                    "update record {i} has neither before nor after image"
                )));
            }
        }
        redone += 1;
    }

    // ---- report ------------------------------------------------------------
    let mut report = RecoveryReport {
        redone_updates: redone,
        skipped_updates: skipped,
        ..Default::default()
    };
    let mut committed_v: Vec<TxnId> = committed.iter().copied().collect();
    committed_v.sort_unstable();
    report.committed = committed_v;
    let mut aborted_v: Vec<TxnId> = aborted.iter().copied().collect();
    aborted_v.sort_unstable();
    report.aborted = aborted_v;

    let mut active: Vec<TxnId> = types.keys().filter(|t| !finished(t)).copied().collect();
    active.sort_unstable();
    for txn in active {
        match last_step_end.get(&txn) {
            Some((_, step_index, work_area)) => report.needs_compensation.push(InFlight {
                txn,
                txn_type: types[&txn],
                steps_completed: step_index + 1,
                work_area: work_area.clone(),
                compensating: comp_begun.contains_key(&txn),
            }),
            None => report.discarded.push(txn),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::{TableId, Value};
    use acc_storage::{Catalog, ColumnType, Row, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            TableSchema::builder("t")
                .column("id", ColumnType::Int)
                .column("v", ColumnType::Int)
                .key(&["id"])
                .build(),
        );
        c
    }

    fn row(id: i64, v: i64) -> Row {
        Row::from(vec![Value::Int(id), Value::Int(v)])
    }

    const T: TableId = TableId(0);

    fn insert(txn: u64, slot: u64, id: i64, v: i64) -> LogRecord {
        LogRecord::Update {
            txn: TxnId(txn),
            table: T,
            slot,
            before: None,
            after: Some(row(id, v)),
        }
    }

    fn update(txn: u64, slot: u64, id: i64, old: i64, new: i64) -> LogRecord {
        LogRecord::Update {
            txn: TxnId(txn),
            table: T,
            slot,
            before: Some(row(id, old)),
            after: Some(row(id, new)),
        }
    }

    fn begin(txn: u64) -> LogRecord {
        LogRecord::Begin {
            txn: TxnId(txn),
            txn_type: TxnTypeId(1),
        }
    }

    fn step_end(txn: u64, idx: u32) -> LogRecord {
        LogRecord::StepEnd {
            txn: TxnId(txn),
            step_index: idx,
            work_area: vec![idx as u8],
        }
    }

    #[test]
    fn committed_transaction_is_replayed() {
        let cat = catalog();
        let mut db = Database::new(&cat);
        let mut wal = Wal::new();
        wal.append(begin(1));
        wal.append(insert(1, 0, 10, 100));
        wal.append(LogRecord::Commit { txn: TxnId(1) });

        let report = recover(&mut db, &wal).unwrap();
        assert_eq!(report.committed, vec![TxnId(1)]);
        assert_eq!(report.redone_updates, 1);
        assert_eq!(db.table(T).unwrap().len(), 1);
    }

    #[test]
    fn incomplete_step_is_skipped_and_txn_discarded() {
        let cat = catalog();
        let mut db = Database::new(&cat);
        let mut wal = Wal::new();
        wal.append(begin(1));
        wal.append(insert(1, 0, 10, 100)); // step never ended
        let report = recover(&mut db, &wal).unwrap();
        assert_eq!(report.skipped_updates, 1);
        assert_eq!(report.discarded, vec![TxnId(1)]);
        assert!(report.needs_compensation.is_empty());
        assert!(db.table(T).unwrap().is_empty());
    }

    #[test]
    fn completed_steps_are_durable_and_reported_for_compensation() {
        let cat = catalog();
        let mut db = Database::new(&cat);
        let mut wal = Wal::new();
        wal.append(begin(1));
        wal.append(insert(1, 0, 10, 100));
        wal.append(step_end(1, 0));
        wal.append(insert(1, 1, 11, 111)); // second step, incomplete
        let report = recover(&mut db, &wal).unwrap();
        assert_eq!(report.redone_updates, 1);
        assert_eq!(report.skipped_updates, 1);
        assert_eq!(
            report.needs_compensation,
            vec![InFlight {
                txn: TxnId(1),
                txn_type: TxnTypeId(1),
                steps_completed: 1,
                work_area: vec![0],
                compensating: false,
            }]
        );
        let t = db.table(T).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.get(&acc_storage::Key::ints(&[10])).is_some());
        assert!(t.get(&acc_storage::Key::ints(&[11])).is_none());
    }

    #[test]
    fn aborted_transaction_net_effect_is_replayed() {
        // The runtime undid the step by logging a compensating update (CLR
        // style) before the abort record; recovery replays both, net zero.
        let cat = catalog();
        let mut db = Database::new(&cat);
        db.table_mut(T).unwrap().insert(row(10, 100)).unwrap();
        let mut wal = Wal::new();
        wal.append(begin(1));
        wal.append(update(1, 0, 10, 100, 999));
        wal.append(update(1, 0, 10, 999, 100)); // undo logged as update
        wal.append(LogRecord::Abort { txn: TxnId(1) });
        let report = recover(&mut db, &wal).unwrap();
        assert_eq!(report.aborted, vec![TxnId(1)]);
        assert_eq!(report.redone_updates, 2);
        assert_eq!(
            db.table(T)
                .unwrap()
                .get(&acc_storage::Key::ints(&[10]))
                .unwrap()
                .1
                .int(1),
            100
        );
    }

    #[test]
    fn in_flight_compensation_is_flagged_for_resume() {
        let cat = catalog();
        let mut db = Database::new(&cat);
        let mut wal = Wal::new();
        wal.append(begin(1));
        wal.append(insert(1, 0, 10, 100));
        wal.append(step_end(1, 0));
        wal.append(LogRecord::CompensationBegin {
            txn: TxnId(1),
            from_step: 1,
        });
        let report = recover(&mut db, &wal).unwrap();
        assert_eq!(report.needs_compensation.len(), 1);
        assert!(report.needs_compensation[0].compensating);
    }

    #[test]
    fn interleaved_transactions_recover_independently() {
        let cat = catalog();
        let mut db = Database::new(&cat);
        let mut wal = Wal::new();
        wal.append(begin(1));
        wal.append(begin(2));
        wal.append(insert(1, 0, 10, 100));
        wal.append(insert(2, 1, 20, 200));
        wal.append(step_end(1, 0));
        wal.append(LogRecord::Commit { txn: TxnId(2) });
        // Txn 1's second step starts but does not finish.
        wal.append(insert(1, 2, 11, 110));

        let report = recover(&mut db, &wal).unwrap();
        assert_eq!(report.committed, vec![TxnId(2)]);
        assert_eq!(report.needs_compensation.len(), 1);
        assert_eq!(report.needs_compensation[0].txn, TxnId(1));
        let t = db.table(T).unwrap();
        assert_eq!(t.len(), 2); // 10 (durable step) and 20 (committed)
    }

    #[test]
    fn crash_at_every_log_prefix_is_recoverable() {
        // Build a full history, then recover from every prefix of it;
        // recovery must never error and committed-at-prefix data must be
        // present.
        let cat = catalog();
        let mut wal = Wal::new();
        wal.append(begin(1));
        wal.append(insert(1, 0, 10, 100));
        wal.append(step_end(1, 0));
        wal.append(update(1, 0, 10, 100, 101));
        wal.append(step_end(1, 1));
        wal.append(LogRecord::Commit { txn: TxnId(1) });
        wal.append(begin(2));
        wal.append(update(2, 0, 10, 101, 102));
        wal.append(LogRecord::Commit { txn: TxnId(2) });

        let full = wal.to_bytes();
        for cut in 0..=full.len() {
            let partial = Wal::from_bytes(&full[..cut]);
            let mut db = Database::new(&cat);
            let report = recover(&mut db, &partial).unwrap();
            // If txn 1 committed in this prefix its final value (101 or 102)
            // must be visible.
            if report.committed.contains(&TxnId(1)) {
                let v = db
                    .table(T)
                    .unwrap()
                    .get(&acc_storage::Key::ints(&[10]))
                    .unwrap()
                    .1
                    .int(1);
                assert!(v == 101 || v == 102, "v = {v} at cut {cut}");
            }
        }
    }

    #[test]
    fn malformed_update_is_an_error() {
        let cat = catalog();
        let mut db = Database::new(&cat);
        let mut wal = Wal::new();
        wal.append(begin(1));
        wal.append(LogRecord::Update {
            txn: TxnId(1),
            table: T,
            slot: 0,
            before: None,
            after: None,
        });
        wal.append(LogRecord::Commit { txn: TxnId(1) });
        assert!(matches!(recover(&mut db, &wal), Err(Error::Recovery(_))));
    }
}
