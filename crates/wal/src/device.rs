//! Pluggable durable backends for the WAL.
//!
//! A [`LogDevice`] owns the byte-level durability contract: the group-commit
//! layer ([`crate::group::DurableWal`]) stages encoded frames on it and calls
//! [`LogDevice::sync`] at fsync boundaries; only bytes covered by a completed
//! `sync` are durable. Two implementations:
//!
//! * [`MemDevice`] — the PR-2 model: the "disk" is an in-memory image, a
//!   crash keeps exactly the synced prefix. Zero I/O, fully deterministic;
//!   the default for every test and simulation.
//! * [`FileDevice`] — a real file written in sector-aligned units
//!   ([`crate::sector`]) with chained page checksums and `sync_data` at each
//!   fsync boundary; reopening re-reads the raw image and salvages the
//!   verified sector prefix.
//!
//! [`Snooper`] wraps any device and snapshots the durable state after every
//! sync — the fsync-boundary torture harness replays those snapshots as crash
//! points.

use crate::sector::{self, SectorWriter};
use acc_common::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A durable byte sink for encoded WAL frames.
///
/// The contract mirrors a file plus fsync: [`stage`](LogDevice::stage) is
/// `write(2)` into the OS cache (fast, not durable), [`sync`](LogDevice::sync)
/// is `fdatasync(2)` (everything staged so far becomes durable, atomically at
/// the sector level). A crash loses all staged-but-unsynced bytes and may tear
/// the sectors of an in-flight sync.
pub trait LogDevice: Send {
    /// Queue `bytes` for the next sync. Cheap; no durability yet.
    fn stage(&mut self, bytes: &[u8]);

    /// Make everything staged durable. On error the device is considered
    /// failed: staged bytes are in unknown state and no further durability
    /// can be promised.
    fn sync(&mut self) -> Result<()>;

    /// Bytes staged since the last sync.
    fn staged_len(&self) -> usize;

    /// Record-stream bytes covered by completed syncs.
    fn durable_len(&self) -> u64;

    /// The durable record stream — what a crash right now would leave for
    /// recovery, after whatever integrity checks the device applies.
    fn durable_stream(&self) -> Vec<u8>;

    /// The raw durable image in the device's on-disk format (for
    /// [`MemDevice`] this equals the stream; for [`FileDevice`] it is the
    /// sector-framed file contents). Corruption sweeps mangle this and hand
    /// it back through the device's open path.
    fn raw_image(&self) -> Vec<u8>;

    /// A short name for reports ("mem" / "file").
    fn kind(&self) -> &'static str;
}

/// The in-memory device: durable state is the synced prefix of a plain byte
/// vector.
#[derive(Debug, Default)]
pub struct MemDevice {
    bytes: Vec<u8>,
    synced: usize,
}

impl MemDevice {
    /// An empty in-memory device.
    pub fn new() -> MemDevice {
        MemDevice::default()
    }
}

impl LogDevice for MemDevice {
    fn stage(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    fn sync(&mut self) -> Result<()> {
        self.synced = self.bytes.len();
        Ok(())
    }

    fn staged_len(&self) -> usize {
        self.bytes.len() - self.synced
    }

    fn durable_len(&self) -> u64 {
        self.synced as u64
    }

    fn durable_stream(&self) -> Vec<u8> {
        self.bytes[..self.synced].to_vec()
    }

    fn raw_image(&self) -> Vec<u8> {
        self.durable_stream()
    }

    fn kind(&self) -> &'static str {
        "mem"
    }
}

/// A file-backed device writing sector-aligned frames with chained page
/// checksums (see [`crate::sector`] for the format and what it detects).
#[derive(Debug)]
pub struct FileDevice {
    file: File,
    path: PathBuf,
    writer: SectorWriter,
    pending: Vec<u8>,
    durable: u64,
}

impl FileDevice {
    /// Create (truncating) a log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<FileDevice> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| Error::Internal(format!("create {}: {e}", path.display())))?;
        Ok(FileDevice {
            file,
            path,
            writer: SectorWriter::new(),
            pending: Vec::new(),
            durable: 0,
        })
    }

    /// Open an existing log file, salvaging the verified sector prefix (the
    /// reopen-after-crash path). Bytes past the salvaged prefix — torn
    /// sectors, stale versions, trailing garbage — are abandoned; the next
    /// sync overwrites them.
    pub fn open_existing(path: impl AsRef<Path>) -> Result<FileDevice> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::Internal(format!("open {}: {e}", path.display())))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)
            .map_err(|e| Error::Internal(format!("read {}: {e}", path.display())))?;
        let opened = sector::open(&raw);
        let writer = SectorWriter::resume(&opened.stream);
        let durable = opened.stream.len() as u64;
        Ok(FileDevice {
            file,
            path,
            writer,
            pending: Vec::new(),
            durable,
        })
    }

    /// The file this device writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogDevice for FileDevice {
    fn stage(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
    }

    fn sync(&mut self) -> Result<()> {
        let staged = std::mem::take(&mut self.pending);
        let (offset, sectors) = self.writer.push(&staged);
        let io = (|| -> std::io::Result<()> {
            if !sectors.is_empty() {
                self.file.seek(SeekFrom::Start(offset))?;
                self.file.write_all(&sectors)?;
            }
            self.file.sync_data()
        })();
        io.map_err(|e| Error::Internal(format!("sync {}: {e}", self.path.display())))?;
        self.durable = self.writer.stream_len();
        Ok(())
    }

    fn staged_len(&self) -> usize {
        self.pending.len()
    }

    fn durable_len(&self) -> u64 {
        self.durable
    }

    fn durable_stream(&self) -> Vec<u8> {
        // Honest path: re-verify the on-disk sectors rather than trusting
        // in-memory state — this is exactly what recovery would see.
        sector::open(&self.raw_image()).stream
    }

    fn raw_image(&self) -> Vec<u8> {
        let mut f = match File::open(&self.path) {
            Ok(f) => f,
            Err(_) => return Vec::new(),
        };
        let mut raw = Vec::new();
        let _ = f.read_to_end(&mut raw);
        raw
    }

    fn kind(&self) -> &'static str {
        "file"
    }
}

/// Durable state captured immediately after one successful sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsyncSnapshot {
    /// The verified record stream durable at this boundary.
    pub stream: Vec<u8>,
    /// The raw device image (sector-framed for [`FileDevice`]).
    pub raw: Vec<u8>,
}

/// Wraps a device and records an [`FsyncSnapshot`] after every successful
/// sync — the torture harness's window into each fsync boundary.
pub struct Snooper<D> {
    inner: D,
    snapshots: Arc<Mutex<Vec<FsyncSnapshot>>>,
}

impl<D: LogDevice> Snooper<D> {
    /// Wrap `inner`; snapshots accumulate into the shared vector.
    pub fn new(inner: D) -> (Snooper<D>, Arc<Mutex<Vec<FsyncSnapshot>>>) {
        let snapshots = Arc::new(Mutex::new(Vec::new()));
        (
            Snooper {
                inner,
                snapshots: Arc::clone(&snapshots),
            },
            snapshots,
        )
    }
}

impl<D: LogDevice> LogDevice for Snooper<D> {
    fn stage(&mut self, bytes: &[u8]) {
        self.inner.stage(bytes);
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()?;
        self.snapshots.lock().unwrap().push(FsyncSnapshot {
            stream: self.inner.durable_stream(),
            raw: self.inner.raw_image(),
        });
        Ok(())
    }

    fn staged_len(&self) -> usize {
        self.inner.staged_len()
    }

    fn durable_len(&self) -> u64 {
        self.inner.durable_len()
    }

    fn durable_stream(&self) -> Vec<u8> {
        self.inner.durable_stream()
    }

    fn raw_image(&self) -> Vec<u8> {
        self.inner.raw_image()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

/// A unique temp-file path for tests and benches (pid + discriminator).
pub fn temp_log_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("acc-wal-{}-{tag}.log", std::process::id()));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_durable_is_synced_prefix() {
        let mut d = MemDevice::new();
        d.stage(b"hello ");
        assert_eq!(d.durable_len(), 0);
        assert!(d.durable_stream().is_empty());
        d.sync().unwrap();
        d.stage(b"world");
        assert_eq!(d.durable_stream(), b"hello ");
        assert_eq!(d.staged_len(), 5);
        d.sync().unwrap();
        assert_eq!(d.durable_stream(), b"hello world");
    }

    #[test]
    fn file_device_round_trip_and_reopen() {
        let path = temp_log_path("device-roundtrip");
        let payload: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        {
            let mut d = FileDevice::create(&path).unwrap();
            d.stage(&payload[..1000]);
            d.sync().unwrap();
            d.stage(&payload[1000..]);
            d.sync().unwrap();
            assert_eq!(d.durable_len(), payload.len() as u64);
            assert_eq!(d.durable_stream(), payload);
            // The raw image is sector-framed, strictly larger than the
            // stream and sector-aligned.
            let raw = d.raw_image();
            assert_eq!(raw.len() % sector::SECTOR_SIZE, 0);
            assert!(raw.len() > payload.len());
        }
        let reopened = FileDevice::open_existing(&path).unwrap();
        assert_eq!(reopened.durable_len(), payload.len() as u64);
        assert_eq!(reopened.durable_stream(), payload);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_device_unsynced_bytes_are_not_durable() {
        let path = temp_log_path("device-unsynced");
        let mut d = FileDevice::create(&path).unwrap();
        d.stage(b"durable");
        d.sync().unwrap();
        d.stage(b"staged only");
        assert_eq!(d.durable_stream(), b"durable");
        // A reopen (the crash model) sees only the synced prefix.
        let reopened = FileDevice::open_existing(&path).unwrap();
        assert_eq!(reopened.durable_stream(), b"durable");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_reopen_salvages_prefix_of_torn_image() {
        let path = temp_log_path("device-torn");
        let payload: Vec<u8> = (0..2500u32).map(|i| (i % 13) as u8).collect();
        {
            let mut d = FileDevice::create(&path).unwrap();
            d.stage(&payload);
            d.sync().unwrap();
        }
        // Tear the second sector on disk.
        let mut raw = std::fs::read(&path).unwrap();
        for b in &mut raw[sector::SECTOR_SIZE..2 * sector::SECTOR_SIZE] {
            *b ^= 0x5a;
        }
        std::fs::write(&path, &raw).unwrap();
        let reopened = FileDevice::open_existing(&path).unwrap();
        assert_eq!(reopened.durable_stream(), payload[..sector::CAPACITY]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_device_extends_after_torn_reopen() {
        let path = temp_log_path("device-extend");
        {
            let mut d = FileDevice::create(&path).unwrap();
            d.stage(&[7u8; 100]);
            d.sync().unwrap();
        }
        let mut d = FileDevice::open_existing(&path).unwrap();
        d.stage(&[9u8; 50]);
        d.sync().unwrap();
        let mut expect = vec![7u8; 100];
        expect.extend_from_slice(&[9u8; 50]);
        assert_eq!(d.durable_stream(), expect);
        let reopened = FileDevice::open_existing(&path).unwrap();
        assert_eq!(reopened.durable_stream(), expect);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snooper_snapshots_every_sync() {
        let (mut d, snaps) = Snooper::new(MemDevice::new());
        d.stage(b"ab");
        d.sync().unwrap();
        d.stage(b"cd");
        d.sync().unwrap();
        let snaps = snaps.lock().unwrap();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].stream, b"ab");
        assert_eq!(snaps[1].stream, b"abcd");
    }
}
