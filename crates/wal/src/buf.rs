//! Minimal byte-buffer helpers: a `Vec<u8>` writer extension and a bounds-
//! checked slice reader. Keeps the codec free of external buffer crates.

/// Little-endian append helpers for `Vec<u8>`.
pub trait PutExt {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
}

impl PutExt for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every getter
/// returns `None` on underrun instead of panicking, which is what a codec
/// replaying a torn log tail needs.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub fn get_u32_le(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    pub fn get_u64_le(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_reader() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(42);
        buf.put_i64_le(-1);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32_le(), Some(0xdead_beef));
        assert_eq!(r.get_u64_le(), Some(42));
        assert_eq!(r.get_u64_le(), Some(u64::MAX));
        assert_eq!(r.get_u8(), None);
    }

    #[test]
    fn underrun_is_none_not_panic() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.get_u32_le(), None);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.take(3), Some(&[1u8, 2, 3][..]));
        assert_eq!(r.take(1), None);
    }
}
