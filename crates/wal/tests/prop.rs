//! Property tests for the WAL codec: arbitrary record sequences round-trip
//! exactly, and any truncation decodes to an exact prefix.

use acc_common::{Decimal, TableId, TxnId, TxnTypeId, Value};
use acc_storage::Row;
use acc_wal::{LogRecord, Wal};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::Str),
        any::<i64>().prop_map(|u| Value::Decimal(Decimal::from_units(u))),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn row_strategy() -> impl Strategy<Value = Row> {
    proptest::collection::vec(value_strategy(), 0..6).prop_map(Row)
}

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    let txn = (0u64..1000).prop_map(TxnId);
    prop_oneof![
        (txn.clone(), 0u32..10).prop_map(|(txn, ty)| LogRecord::Begin {
            txn,
            txn_type: TxnTypeId(ty),
        }),
        (
            txn.clone(),
            0u32..9,
            0u64..100,
            proptest::option::of(row_strategy()),
            proptest::option::of(row_strategy()),
        )
            .prop_map(|(txn, table, slot, before, after)| LogRecord::Update {
                txn,
                table: TableId(table),
                slot,
                before,
                after,
            }),
        (txn.clone(), 0u32..30, proptest::collection::vec(any::<u8>(), 0..40)).prop_map(
            |(txn, step_index, work_area)| LogRecord::StepEnd {
                txn,
                step_index,
                work_area,
            }
        ),
        (txn.clone(), 0u32..30).prop_map(|(txn, from_step)| LogRecord::CompensationBegin {
            txn,
            from_step,
        }),
        txn.clone().prop_map(|txn| LogRecord::Commit { txn }),
        txn.prop_map(|txn| LogRecord::Abort { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_round_trips(records in proptest::collection::vec(record_strategy(), 0..30)) {
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r.clone());
        }
        let restored = Wal::from_bytes(&wal.to_bytes());
        prop_assert_eq!(restored.records(), &records[..]);
    }

    #[test]
    fn any_truncation_yields_exact_prefix(
        records in proptest::collection::vec(record_strategy(), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r.clone());
        }
        let bytes = wal.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let restored = Wal::from_bytes(&bytes[..cut]);
        prop_assert!(restored.len() <= records.len());
        prop_assert_eq!(restored.records(), &records[..restored.len()]);
    }

    #[test]
    fn single_corrupt_byte_never_yields_garbage_records(
        records in proptest::collection::vec(record_strategy(), 1..8),
        flip_frac in 0.0f64..1.0,
    ) {
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r.clone());
        }
        let mut bytes = wal.to_bytes();
        if bytes.is_empty() {
            return Ok(());
        }
        let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[at] ^= 0x5a;
        let restored = Wal::from_bytes(&bytes);
        // Decoding stops at (or before) the corrupted frame: every decoded
        // record must be one of the originals, in prefix order — with the
        // single exception of a flip inside a length header that happens to
        // frame a checksum-valid window, which FNV makes vanishingly
        // unlikely; we assert the prefix property outright.
        prop_assert!(restored.len() <= records.len());
        for (got, want) in restored.records().iter().zip(records.iter()) {
            prop_assert_eq!(got, want);
        }
    }
}
