//! Randomized property tests for the WAL codec (seeded, dependency-free):
//! arbitrary record sequences round-trip exactly, and any truncation decodes
//! to an exact prefix.

use acc_common::{Decimal, SeededRng, TableId, TxnId, TxnTypeId, Value};
use acc_storage::Row;
use acc_wal::{LogRecord, Wal};

fn random_value(rng: &mut SeededRng) -> Value {
    match rng.index(5) {
        0 => Value::Null,
        1 => Value::Int(rng.int_range(i64::MIN, i64::MAX)),
        2 => Value::Str(rng.alnum_string(0, 24)),
        3 => Value::Decimal(Decimal::from_units(rng.int_range(i64::MIN, i64::MAX))),
        _ => Value::Bool(rng.chance(0.5)),
    }
}

fn random_row(rng: &mut SeededRng) -> Row {
    let n = rng.index(6);
    Row((0..n).map(|_| random_value(rng)).collect())
}

fn random_opt_row(rng: &mut SeededRng) -> Option<Row> {
    rng.chance(0.5).then(|| random_row(rng))
}

fn random_record(rng: &mut SeededRng) -> LogRecord {
    let txn = TxnId(rng.int_range(0, 999) as u64);
    match rng.index(6) {
        0 => LogRecord::Begin {
            txn,
            txn_type: TxnTypeId(rng.int_range(0, 9) as u32),
        },
        1 => LogRecord::Update {
            txn,
            table: TableId(rng.int_range(0, 8) as u32),
            slot: rng.int_range(0, 99) as u64,
            before: random_opt_row(rng),
            after: random_opt_row(rng),
        },
        2 => LogRecord::StepEnd {
            txn,
            step_index: rng.int_range(0, 29) as u32,
            work_area: (0..rng.index(40))
                .map(|_| rng.int_range(0, 255) as u8)
                .collect(),
        },
        3 => LogRecord::CompensationBegin {
            txn,
            from_step: rng.int_range(0, 29) as u32,
        },
        4 => LogRecord::Commit { txn },
        _ => LogRecord::Abort { txn },
    }
}

fn random_records(rng: &mut SeededRng, lo: usize, hi: usize) -> Vec<LogRecord> {
    let n = lo + rng.index(hi - lo + 1);
    (0..n).map(|_| random_record(rng)).collect()
}

#[test]
fn codec_round_trips() {
    let mut rng = SeededRng::new(0x0a1_5eed);
    for _case in 0..256 {
        let records = random_records(&mut rng, 0, 29);
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r.clone());
        }
        let restored = Wal::from_bytes(&wal.to_bytes());
        assert_eq!(restored.records(), &records[..]);
    }
}

#[test]
fn any_truncation_yields_exact_prefix() {
    let mut rng = SeededRng::new(0x7a11);
    for _case in 0..256 {
        let records = random_records(&mut rng, 1, 11);
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r.clone());
        }
        let bytes = wal.to_bytes();
        let cut = rng.index(bytes.len() + 1);
        let restored = Wal::from_bytes(&bytes[..cut]);
        assert!(restored.len() <= records.len());
        assert_eq!(restored.records(), &records[..restored.len()]);
    }
}

#[test]
fn truncation_plus_corruption_never_panics_and_keeps_prefix_order() {
    // The crash-torture model: a torn tail AND scribbled bytes on what
    // survives. Whatever `from_bytes` salvages must still be a prefix-ordered
    // subsequence of the originals — never garbage, never a panic.
    let mut rng = SeededRng::new(0x70c7);
    for _case in 0..256 {
        let records = random_records(&mut rng, 1, 11);
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r.clone());
        }
        let mut bytes = wal.to_bytes();
        let cut = rng.index(bytes.len() + 1);
        bytes.truncate(cut);
        for _ in 0..rng.index(4) {
            if bytes.is_empty() {
                break;
            }
            let at = rng.index(bytes.len());
            bytes[at] ^= 1 << rng.index(8);
        }
        let restored = Wal::from_bytes(&bytes);
        assert!(restored.len() <= records.len());
        for (got, want) in restored.records().iter().zip(records.iter()) {
            assert_eq!(got, want);
        }
    }
}

#[test]
fn exhaustive_single_bit_flips_on_sample_image() {
    // Every bit of one representative image, flipped one at a time: decoding
    // must never panic and must always stop at or before the damaged frame.
    let mut rng = SeededRng::new(0xb17);
    let records = random_records(&mut rng, 6, 6);
    let mut wal = Wal::new();
    for r in &records {
        wal.append(r.clone());
    }
    let bytes = wal.to_bytes();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut image = bytes.clone();
            image[byte] ^= 1u8 << bit;
            let restored = Wal::from_bytes(&image);
            assert!(restored.len() <= records.len(), "byte {byte} bit {bit}");
            for (got, want) in restored.records().iter().zip(records.iter()) {
                assert_eq!(got, want, "byte {byte} bit {bit}");
            }
        }
    }
}

#[test]
fn single_corrupt_byte_never_yields_garbage_records() {
    let mut rng = SeededRng::new(0xc0de);
    for _case in 0..256 {
        let records = random_records(&mut rng, 1, 7);
        let mut wal = Wal::new();
        for r in &records {
            wal.append(r.clone());
        }
        let mut bytes = wal.to_bytes();
        if bytes.is_empty() {
            continue;
        }
        let at = rng.index(bytes.len());
        bytes[at] ^= 0x5a;
        let restored = Wal::from_bytes(&bytes);
        // Decoding stops at (or before) the corrupted frame: every decoded
        // record must be one of the originals, in prefix order — with the
        // single exception of a flip inside a length header that happens to
        // frame a checksum-valid window, which FNV makes vanishingly
        // unlikely; we assert the prefix property outright.
        assert!(restored.len() <= records.len());
        for (got, want) in restored.records().iter().zip(records.iter()) {
            assert_eq!(got, want);
        }
    }
}
