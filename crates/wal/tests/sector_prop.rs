//! Property tests for the sector-aligned frame format: arbitrary record
//! sequences survive encode → seal → tear-at-any-sector → open → decode with
//! zero silent loss — every record is either fully recovered or provably past
//! the salvage point, never invented and never reordered.
//!
//! Also holds the regression test for the ROADMAP torn-page bug: a frame
//! split across a sector boundary whose tear leaves bytes the *record codec
//! alone* happily accepts (a stale, internally-consistent frame at the right
//! offset). Only the chained sector checksums reject it.

use acc_common::{Decimal, SeededRng, TableId, TxnId, TxnTypeId, Value};
use acc_storage::Row;
use acc_wal::{codec, sector, LogRecord};

fn random_value(rng: &mut SeededRng) -> Value {
    match rng.index(5) {
        0 => Value::Null,
        1 => Value::Int(rng.int_range(i64::MIN, i64::MAX)),
        2 => Value::Str(rng.alnum_string(0, 24)),
        3 => Value::Decimal(Decimal::from_units(rng.int_range(i64::MIN, i64::MAX))),
        _ => Value::Bool(rng.chance(0.5)),
    }
}

fn random_row(rng: &mut SeededRng) -> Row {
    let n = rng.index(6);
    Row((0..n).map(|_| random_value(rng)).collect())
}

fn random_opt_row(rng: &mut SeededRng) -> Option<Row> {
    rng.chance(0.5).then(|| random_row(rng))
}

fn random_record(rng: &mut SeededRng) -> LogRecord {
    let txn = TxnId(rng.int_range(0, 999) as u64);
    match rng.index(6) {
        0 => LogRecord::Begin {
            txn,
            txn_type: TxnTypeId(rng.int_range(0, 9) as u32),
        },
        1 => LogRecord::Update {
            txn,
            table: TableId(rng.int_range(0, 8) as u32),
            slot: rng.int_range(0, 99) as u64,
            before: random_opt_row(rng),
            after: random_opt_row(rng),
        },
        2 => LogRecord::StepEnd {
            txn,
            step_index: rng.int_range(0, 29) as u32,
            work_area: (0..rng.index(40))
                .map(|_| rng.int_range(0, 255) as u8)
                .collect(),
        },
        3 => LogRecord::CompensationBegin {
            txn,
            from_step: rng.int_range(0, 29) as u32,
        },
        4 => LogRecord::Commit { txn },
        _ => LogRecord::Abort { txn },
    }
}

fn encode(records: &[LogRecord]) -> Vec<u8> {
    let mut stream = Vec::new();
    for r in records {
        codec::encode_record(r, &mut stream);
    }
    stream
}

/// Byte offset of the end of each intact frame in `stream`.
fn frame_ends(stream: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while stream.len() - pos >= 12 {
        let len = u32::from_le_bytes(stream[pos..pos + 4].try_into().unwrap()) as usize;
        if stream.len() - pos - 12 < len {
            break;
        }
        pos += 12 + len;
        out.push(pos);
    }
    out
}

#[test]
fn records_survive_any_single_sector_tear_with_zero_silent_loss() {
    let mut rng = SeededRng::new(0x05ec_70a1);
    for _case in 0..48 {
        let n = 2 + rng.index(28);
        let records: Vec<LogRecord> = (0..n).map(|_| random_record(&mut rng)).collect();
        let stream = encode(&records);
        let image = sector::seal(&stream);
        let n_sectors = image.len() / sector::SECTOR_SIZE;
        let ends = frame_ends(&stream);

        // Tear EVERY sector in turn, not a sample: the property must hold at
        // any offset.
        for k in 0..n_sectors {
            let mut torn = image.clone();
            for b in &mut torn[k * sector::SECTOR_SIZE..(k + 1) * sector::SECTOR_SIZE] {
                *b ^= 0x5a;
            }
            let opened = sector::open(&torn);
            assert!(opened.torn, "tear at sector {k} silently absorbed");
            // The salvaged stream is the exact byte prefix preceding the
            // torn sector — chained checksums admit nothing past it.
            let want = (k * sector::CAPACITY).min(stream.len());
            assert_eq!(opened.stream.len(), want, "sector {k}");
            assert_eq!(opened.stream, stream[..want], "sector {k}");
            // Zero silent loss at the record level: decoding the salvage
            // yields an exact prefix of the original records; every record
            // not recovered provably extends past the salvage point.
            let decoded = codec::decode_all(&opened.stream);
            assert!(decoded.len() <= records.len());
            assert_eq!(decoded[..], records[..decoded.len()], "sector {k}");
            let frames_within = ends.iter().filter(|&&e| e <= want).count();
            assert_eq!(
                decoded.len(),
                frames_within,
                "sector {k}: lost a record that was fully inside the salvage"
            );
        }
    }
}

#[test]
fn multi_sector_tears_still_salvage_an_exact_prefix() {
    let mut rng = SeededRng::new(0x05ec_70a2);
    for _case in 0..32 {
        let n = 4 + rng.index(26);
        let records: Vec<LogRecord> = (0..n).map(|_| random_record(&mut rng)).collect();
        let stream = encode(&records);
        let image = sector::seal(&stream);
        let n_sectors = image.len() / sector::SECTOR_SIZE;
        // Tear a random set of sectors (1..=3 of them). Overwrite rather
        // than XOR so picking the same sector twice stays torn.
        let mut torn = image.clone();
        let mut first = usize::MAX;
        for _ in 0..1 + rng.index(3) {
            let k = rng.index(n_sectors);
            first = first.min(k);
            for b in &mut torn[k * sector::SECTOR_SIZE..(k + 1) * sector::SECTOR_SIZE] {
                *b = 0xA5;
            }
        }
        let opened = sector::open(&torn);
        let want = (first * sector::CAPACITY).min(stream.len());
        assert_eq!(opened.stream, stream[..want]);
        let decoded = codec::decode_all(&opened.stream);
        assert_eq!(decoded[..], records[..decoded.len()]);
    }
}

/// The ROADMAP torn-page bug, reproduced and closed.
///
/// The log's tail sector is rewritten in place on every append (the normal
/// pattern for a partial sector). Model a torn multi-sector write: the disk
/// persisted the *old* version of the rewritten tail sector but the *new*
/// sector after it. A length-header-only reader sees `new[..a] ++ old[a..b]
/// ++ new[c..]`, and because the stale region ends exactly where a frame of
/// the old log ended — while a frame of the new log happens to start at the
/// next sector's payload boundary — it resynchronises and returns a record
/// sequence that was never contiguous on any durable log. The frame spanning
/// the stale/new boundary is silently skipped, not detected.
#[test]
fn torn_page_splitting_a_frame_is_caught_by_page_checksums_not_length_headers() {
    // Records whose encoded size we control exactly: a StepEnd frame is
    // 12-byte frame header + 17-byte fixed payload + work_area.
    let pad_to = |target: usize, txn: u64| -> LogRecord {
        let body = 12 + 1 + 8 + 4 + 4;
        assert!(target > body);
        LogRecord::StepEnd {
            txn: TxnId(txn),
            step_index: 0,
            work_area: vec![0xEE; target - body],
        }
    };
    let cap = sector::CAPACITY;
    // Old log: frame 1 fills most of sector 0; frame 2 spans the 0/1
    // boundary and ends 80 bytes into sector 1 (the partial tail).
    let old_records = vec![pad_to(cap - 40, 1), pad_to(120, 2)];
    let old_stream = encode(&old_records);
    assert_eq!(old_stream.len(), cap + 80);

    // New log: two more records. Frame 3 pads the stream to exactly 2*cap,
    // so frame 4 begins precisely at sector 2's payload boundary — the
    // alignment that lets a naive reader resynchronise past the tear.
    let mut new_records = old_records.clone();
    new_records.push(pad_to(2 * cap - old_stream.len(), 3));
    new_records.push(pad_to(100, 4));
    let new_stream = encode(&new_records);
    assert_eq!(new_stream.len(), 2 * cap + 100);

    let old_image = sector::seal(&old_stream);
    let new_image = sector::seal(&new_stream);
    assert_eq!(new_image.len(), 3 * sector::SECTOR_SIZE);

    // The torn write: sector 1 reverted to its stale (old-tail) version,
    // sector 2 persisted the new version.
    let mut torn = new_image.clone();
    torn[sector::SECTOR_SIZE..2 * sector::SECTOR_SIZE]
        .copy_from_slice(&old_image[sector::SECTOR_SIZE..2 * sector::SECTOR_SIZE]);

    // First, pin the bug a length-header-only reader has: strip the sector
    // headers trusting only the `len` fields (no chain verification) and
    // hand the bytes to the record codec.
    let naive_stream: Vec<u8> = torn
        .chunks(sector::SECTOR_SIZE)
        .flat_map(|s| {
            let len = u16::from_le_bytes(s[12..14].try_into().unwrap()) as usize;
            s[sector::HEADER..sector::HEADER + len.min(cap)].to_vec()
        })
        .collect();
    let naive = codec::decode_all(&naive_stream);
    // The splice decodes "cleanly": frames 1 and 2 (its tail from the stale
    // sector), then frame 4 — with frame 3 silently skipped. Every frame
    // checksum passes, yet this sequence never existed on any durable log.
    assert_eq!(
        naive.len(),
        3,
        "the naive scan resynchronised past the tear"
    );
    assert_eq!(naive[..2], new_records[..2]);
    assert_eq!(naive[2], new_records[3], "phantom: frame 4 without frame 3");
    assert_ne!(naive[..], new_records[..]);

    // The fix: chained page checksums. The stale sector 1 is a *valid old
    // tail* (its own chain verifies), so salvage keeps it — but it is a
    // partial sector, so everything after it is refused as torn trailing
    // bytes. The result is exactly the old durable log: a state that really
    // existed, with the tear reported instead of absorbed.
    let opened = sector::open(&torn);
    assert!(opened.torn, "the tear must be reported, not absorbed");
    assert_eq!(opened.sectors, 2);
    assert_eq!(opened.stream, old_stream);
    let decoded = codec::decode_all(&opened.stream);
    assert_eq!(decoded[..], new_records[..2]);
    assert_eq!(decoded[..], old_records[..]);
}

#[test]
fn reordered_flush_never_exposes_a_suffix_without_its_prefix() {
    // A controller that persists sector k+1 but loses sector k (write
    // reordering on power loss). The chain must refuse everything from k on.
    let mut rng = SeededRng::new(0x05ec_70a3);
    let records: Vec<LogRecord> = (0..60).map(|_| random_record(&mut rng)).collect();
    let stream = encode(&records);
    let image = sector::seal(&stream);
    let n_sectors = image.len() / sector::SECTOR_SIZE;
    assert!(n_sectors >= 3, "need at least 3 sectors for this scenario");
    let k = n_sectors / 2;
    let mut torn = image;
    // Sector k reverts to all zeroes (never written); k+1 onward intact.
    for b in &mut torn[k * sector::SECTOR_SIZE..(k + 1) * sector::SECTOR_SIZE] {
        *b = 0;
    }
    let opened = sector::open(&torn);
    assert_eq!(opened.stream, stream[..k * sector::CAPACITY]);
    assert!(opened.torn);
}
