//! Length-prefixed wire framing with chained checksums — the one place the
//! workspace's byte-pipe idioms live.
//!
//! Two consumers speak this format today: the replication transport
//! (`acc-repl`'s loopback TCP ship pipe) and the network front-end
//! (`acc-server`'s request/response protocol). Both need the same three
//! things from a raw byte stream:
//!
//! 1. **Framing** — `[seq u64][start u64][chain u64][len u32][payload]`,
//!    all little-endian. `seq` is a monotonic per-stream ordinal, `start`
//!    the payload's byte offset in the logical stream, `chain` a cumulative
//!    checksum over the stream up to and including this payload.
//! 2. **Incremental decoding** — TCP delivers arbitrary fragments; a
//!    [`FrameBuf`] accumulates them and yields a [`Frame`] only once the
//!    whole thing (header + payload) has arrived, so partial reads and
//!    slow-loris senders are handled in one place.
//! 3. **Chain verification** — [`chain_update`] folds payload bytes into a
//!    running FNV-1a chain (seeded with [`CHAIN_SEED`], mixed with the frame
//!    ordinal the way the WAL's sector chain mixes sector sequence numbers),
//!    so a receiver detects reordering, splicing, and corruption without
//!    trusting the sender's framing.
//!
//! The frame layer is deliberately dumb: it neither interprets payloads nor
//! enforces chains — receivers decide what a mismatch means (the follower
//! refuses the batch; the server drops the connection). What it guarantees
//! is that a [`Frame`] handed up was received whole, exactly as long as its
//! header claimed.

/// FNV-1a 64-bit offset basis — the seed of every chain in the workspace
/// (the WAL sector chain uses the same constant).
pub const CHAIN_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Wire header size: `seq` + `start` + `chain` + `len`.
pub const FRAME_HEADER: usize = 8 + 8 + 8 + 4;

/// Hard ceiling on a frame payload. Anything larger is a protocol violation
/// (or a hostile length field) and must be rejected before the receiver
/// tries to buffer it.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// Fold `bytes` into a running FNV-1a chain, mixing in `seq` first so
/// identical payloads at different stream positions chain differently.
pub fn chain_update(chain: u64, seq: u64, bytes: &[u8]) -> u64 {
    let mut h = chain;
    for b in seq.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Monotonic per-stream frame ordinal.
    pub seq: u64,
    /// Byte offset of `payload` in the logical stream.
    pub start: u64,
    /// Cumulative stream checksum as the sender computed it.
    pub chain: u64,
    /// The framed bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Serialize header + payload into one wire buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut wire = Vec::with_capacity(FRAME_HEADER + self.payload.len());
        wire.extend_from_slice(&self.seq.to_le_bytes());
        wire.extend_from_slice(&self.start.to_le_bytes());
        wire.extend_from_slice(&self.chain.to_le_bytes());
        wire.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&self.payload);
        wire
    }
}

/// Incremental frame decoder over an untrusted byte stream.
///
/// Feed fragments with [`FrameBuf::extend`]; pull whole frames with
/// [`FrameBuf::next_frame`]. A length field beyond [`MAX_FRAME_PAYLOAD`]
/// poisons the buffer — every later call reports the violation, because a
/// stream that lied about one length has no recoverable frame boundary.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    poisoned: bool,
}

/// Outcome of one [`FrameBuf::next_frame`] poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A whole frame arrived.
    Frame(Frame),
    /// Not enough bytes buffered yet.
    Incomplete,
    /// The stream declared an impossible payload length; the connection is
    /// unrecoverable.
    Violation,
}

impl FrameBuf {
    /// Empty decoder.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Buffer one received fragment.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next whole frame.
    pub fn next_frame(&mut self) -> Decoded {
        if self.poisoned {
            return Decoded::Violation;
        }
        if self.buf.len() < FRAME_HEADER {
            return Decoded::Incomplete;
        }
        let u64_at =
            |b: &[u8], i: usize| u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(self.buf[24..28].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            self.poisoned = true;
            return Decoded::Violation;
        }
        if self.buf.len() < FRAME_HEADER + len {
            return Decoded::Incomplete;
        }
        let frame = Frame {
            seq: u64_at(&self.buf, 0),
            start: u64_at(&self.buf, 8),
            chain: u64_at(&self.buf, 16),
            payload: self.buf[FRAME_HEADER..FRAME_HEADER + len].to_vec(),
        };
        self.buf.drain(..FRAME_HEADER + len);
        Decoded::Frame(frame)
    }
}

/// Sender-side bookkeeping for one framed stream: assigns ordinals and
/// offsets, maintains the cumulative chain. The receiving side mirrors it
/// with [`StreamChain::verify`].
#[derive(Debug, Clone)]
pub struct StreamChain {
    seq: u64,
    start: u64,
    chain: u64,
}

impl Default for StreamChain {
    fn default() -> Self {
        StreamChain::new()
    }
}

impl StreamChain {
    /// A fresh stream at offset 0 with the canonical seed.
    pub fn new() -> StreamChain {
        StreamChain {
            seq: 0,
            start: 0,
            chain: CHAIN_SEED,
        }
    }

    /// Frame `payload` as the next element of this stream, advancing the
    /// chain state.
    pub fn frame(&mut self, payload: Vec<u8>) -> Frame {
        self.seq += 1;
        self.chain = chain_update(self.chain, self.seq, &payload);
        let frame = Frame {
            seq: self.seq,
            start: self.start,
            chain: self.chain,
            payload,
        };
        self.start += frame.payload.len() as u64;
        frame
    }

    /// Receiver side: check that `frame` is exactly the next element of this
    /// stream (ordinal, offset, and chain all line up), and advance. Returns
    /// false — with the state untouched — on any mismatch.
    pub fn verify(&mut self, frame: &Frame) -> bool {
        if frame.seq != self.seq + 1 || frame.start != self.start {
            return false;
        }
        let chain = chain_update(self.chain, frame.seq, &frame.payload);
        if chain != frame.chain {
            return false;
        }
        self.seq = frame.seq;
        self.start += frame.payload.len() as u64;
        self.chain = chain;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_fragmented_delivery() {
        let f = Frame {
            seq: 3,
            start: 100,
            chain: 0xdead,
            payload: vec![1, 2, 3, 4, 5],
        };
        let wire = f.encode();
        let mut buf = FrameBuf::new();
        // Deliver one byte at a time — a slow-loris sender.
        for b in &wire {
            assert!(matches!(
                buf.next_frame(),
                Decoded::Incomplete | Decoded::Frame(_)
            ));
            buf.extend(std::slice::from_ref(b));
        }
        assert_eq!(buf.next_frame(), Decoded::Frame(f));
        assert_eq!(buf.next_frame(), Decoded::Incomplete);
        assert_eq!(buf.buffered(), 0);
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let mut buf = FrameBuf::new();
        let mut wire = Vec::new();
        let mut chain = StreamChain::new();
        for i in 0..4u8 {
            wire.extend_from_slice(&chain.frame(vec![i; i as usize]).encode());
        }
        buf.extend(&wire);
        let mut verify = StreamChain::new();
        for i in 0..4u8 {
            match buf.next_frame() {
                Decoded::Frame(f) => {
                    assert_eq!(f.payload, vec![i; i as usize]);
                    assert!(verify.verify(&f));
                }
                other => panic!("expected frame {i}, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_length_poisons_the_buffer() {
        let mut buf = FrameBuf::new();
        let mut wire = Frame {
            seq: 1,
            start: 0,
            chain: 0,
            payload: vec![],
        }
        .encode();
        wire[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        buf.extend(&wire);
        assert_eq!(buf.next_frame(), Decoded::Violation);
        assert_eq!(buf.next_frame(), Decoded::Violation, "violations stick");
    }

    #[test]
    fn stream_chain_rejects_tampering() {
        let mut tx = StreamChain::new();
        let a = tx.frame(vec![1, 2, 3]);
        let b = tx.frame(vec![4, 5]);

        // Clean delivery verifies.
        let mut rx = StreamChain::new();
        assert!(rx.verify(&a));
        assert!(rx.verify(&b));

        // Reordered, re-delivered, or mangled frames do not.
        let mut rx = StreamChain::new();
        assert!(!rx.verify(&b), "skipping a frame breaks seq/start/chain");
        assert!(rx.verify(&a));
        assert!(!rx.verify(&a), "duplicate delivery is rejected");
        let mut torn = b.clone();
        torn.payload[0] ^= 0x40;
        assert!(!rx.verify(&torn), "payload corruption breaks the chain");
        assert!(rx.verify(&b), "a refused frame leaves the state untouched");
    }

    #[test]
    fn chain_update_mixes_ordinal_and_bytes() {
        let c1 = chain_update(CHAIN_SEED, 1, b"abc");
        let c2 = chain_update(CHAIN_SEED, 2, b"abc");
        assert_ne!(c1, c2, "same bytes at different ordinals chain apart");
        assert_ne!(c1, chain_update(CHAIN_SEED, 1, b"abd"));
    }
}
