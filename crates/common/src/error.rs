//! The workspace-wide error type.

use crate::ids::{ResourceId, TxnId};
use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the storage, locking and transaction layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A deadlock was detected and this transaction's current step was chosen
    /// as the victim. The step may be retried after its effects are undone.
    Deadlock {
        /// The victim transaction.
        victim: TxnId,
    },
    /// The transaction was aborted (explicitly or as a deadlock casualty) and
    /// cannot issue further operations.
    TxnAborted(TxnId),
    /// A lock could not be granted and the caller asked not to wait.
    WouldBlock {
        /// The requesting transaction.
        txn: TxnId,
        /// The contested resource.
        resource: ResourceId,
    },
    /// Primary or unique key already present.
    DuplicateKey(String),
    /// Row or table not found.
    NotFound(String),
    /// Value/row shape does not match the table schema.
    SchemaMismatch(String),
    /// The log is corrupt or recovery failed.
    Recovery(String),
    /// A replica's log history disagrees with the primary's at a byte offset
    /// both claim to have durably written. Unlike a torn ship batch (refused
    /// and re-shipped), divergence is never self-healing: one side's history
    /// must be discarded by an operator, so it surfaces as a typed error,
    /// never a panic and never a silent re-ship.
    Divergence {
        /// Stream byte offset where the histories were compared.
        at: u64,
        /// The primary's chained checksum at that offset.
        expected: u64,
        /// The replica's chained checksum at that offset.
        found: u64,
    },
    /// An internal invariant was violated; always a bug.
    Internal(String),
}

impl Error {
    /// True for errors that the transaction runtime resolves by undoing and
    /// retrying the current step rather than failing the whole transaction.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Deadlock { .. } | Error::WouldBlock { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Deadlock { victim } => write!(f, "deadlock detected; victim {victim}"),
            Error::TxnAborted(t) => write!(f, "transaction {t} is aborted"),
            Error::WouldBlock { txn, resource } => {
                write!(f, "{txn} would block on {resource}")
            }
            Error::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            Error::NotFound(w) => write!(f, "not found: {w}"),
            Error::SchemaMismatch(w) => write!(f, "schema mismatch: {w}"),
            Error::Recovery(w) => write!(f, "recovery failure: {w}"),
            Error::Divergence {
                at,
                expected,
                found,
            } => write!(
                f,
                "replica log diverges from primary at byte {at}: \
                 chain {found:#018x} != primary {expected:#018x}"
            ),
            Error::Internal(w) => write!(f, "internal error: {w}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(Error::Deadlock { victim: TxnId(1) }.is_transient());
        assert!(Error::WouldBlock {
            txn: TxnId(1),
            resource: ResourceId::Named(0)
        }
        .is_transient());
        assert!(!Error::TxnAborted(TxnId(1)).is_transient());
        assert!(!Error::NotFound("x".into()).is_transient());
        // Divergence is a permanent condition: retrying the ship cannot make
        // two incompatible histories agree.
        assert!(!Error::Divergence {
            at: 512,
            expected: 1,
            found: 2
        }
        .is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = Error::Deadlock { victim: TxnId(9) };
        assert!(e.to_string().contains("TxnId(9)"));
        let e = Error::DuplicateKey("orders(1,2)".into());
        assert!(e.to_string().contains("orders(1,2)"));
    }
}
