//! Strongly typed identifiers.
//!
//! Everything the lock manager can lock is a [`ResourceId`]; everything the
//! interference tables talk about is a [`StepTypeId`] × [`AssertionTemplateId`]
//! pair. Keeping these as newtypes prevents an entire class of index mix-ups.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A transaction instance.
    TxnId(u64)
);
id_newtype!(
    /// A transaction *type* (e.g. "TPC-C new-order"), the unit the design-time
    /// analysis decomposes.
    TxnTypeId(u32)
);
id_newtype!(
    /// A step *type*: one of the statically analyzed step kinds a transaction
    /// type is decomposed into (forward or compensating).
    StepTypeId(u32)
);
id_newtype!(
    /// An assertion *template*: a parameterized interstep assertion whose
    /// interference with each step type is decided at design time.
    AssertionTemplateId(u32)
);
id_newtype!(
    /// A table in the catalog.
    TableId(u32)
);

/// The step type assigned to unanalyzed (legacy / ad-hoc / baseline 2PL)
/// transactions. Interference oracles treat it maximally conservatively: it
/// read- and write-interferes with every assertion template, which is what
/// keeps legacy transactions fully isolated from decomposed ones.
pub const LEGACY_STEP: StepTypeId = StepTypeId(u32::MAX);

/// A page number within a table.
pub type PageNo = u32;

/// A row slot within a table's heap.
pub type Slot = u64;

/// Something the lock manager can lock.
///
/// The engine locks *pages* by default (as Open Ingres did), with row-level
/// resources available for hot tuples and named resources for things like
/// sequence counters that live outside any table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceId {
    /// An entire table (used for intention locking and scans).
    Table(TableId),
    /// One page of a table.
    Page(TableId, PageNo),
    /// One row of a table, identified by heap slot.
    Row(TableId, Slot),
    /// A named singleton resource, e.g. a database counter variable.
    Named(u32),
}

impl ResourceId {
    /// The table this resource belongs to, if any.
    pub fn table(&self) -> Option<TableId> {
        match self {
            ResourceId::Table(t) | ResourceId::Page(t, _) | ResourceId::Row(t, _) => Some(*t),
            ResourceId::Named(_) => None,
        }
    }

    /// True if `self` is the table-level resource covering `other`.
    pub fn covers(&self, other: &ResourceId) -> bool {
        match (self, other) {
            (ResourceId::Table(a), ResourceId::Page(b, _) | ResourceId::Row(b, _)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Table(t) => write!(f, "table#{}", t.0),
            ResourceId::Page(t, p) => write!(f, "table#{}/page#{p}", t.0),
            ResourceId::Row(t, s) => write!(f, "table#{}/row#{s}", t.0),
            ResourceId::Named(n) => write!(f, "named#{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtype_roundtrip() {
        assert_eq!(TxnId(7).raw(), 7);
        assert_eq!(StepTypeId(3).to_string(), "StepTypeId(3)");
        assert!(TxnId(1) < TxnId(2));
    }

    #[test]
    fn resource_table() {
        let t = TableId(4);
        assert_eq!(ResourceId::Table(t).table(), Some(t));
        assert_eq!(ResourceId::Page(t, 9).table(), Some(t));
        assert_eq!(ResourceId::Row(t, 10).table(), Some(t));
        assert_eq!(ResourceId::Named(1).table(), None);
    }

    #[test]
    fn resource_covers() {
        let t = TableId(1);
        assert!(ResourceId::Table(t).covers(&ResourceId::Page(t, 0)));
        assert!(ResourceId::Table(t).covers(&ResourceId::Row(t, 5)));
        assert!(!ResourceId::Table(t).covers(&ResourceId::Table(t)));
        assert!(!ResourceId::Table(TableId(2)).covers(&ResourceId::Page(t, 0)));
        assert!(!ResourceId::Page(t, 0).covers(&ResourceId::Row(t, 0)));
    }

    #[test]
    fn resource_display() {
        assert_eq!(
            ResourceId::Page(TableId(2), 7).to_string(),
            "table#2/page#7"
        );
        assert_eq!(ResourceId::Named(3).to_string(), "named#3");
    }
}
