//! Seeded, deterministic fault injection for crash-torture testing.
//!
//! A [`FaultInjector`] is the fault-site analogue of [`crate::events::EventSink`]:
//! components hold an `Arc<FaultInjector>` (or an `Option` of one) and call the
//! site hooks; a disabled injector — the default — costs one branch (and at
//! most one relaxed load) per instrumented operation, so production paths pay
//! essentially nothing.
//!
//! Faults are *planned*, never random at the site: a [`FaultPlan`] names the
//! injection point up front (crash after the Nth WAL append, crash on a given
//! edge of the Nth step boundary, wake every Kth blocked lock wait spuriously)
//! and the injector fires it deterministically. Randomisation, if any, happens
//! in the harness that builds the plan from a [`crate::rng::SeededRng`] — so
//! the same seed always tortures the same points.
//!
//! A "crash" here does not kill the process. The injector captures the durable
//! WAL image exactly as `write(2)` would have left it at the fault point
//! (optionally mangled by a [`Corruption`]) and lets the run continue; the
//! harness later recovers from the captured image as if the process had died
//! there. This is faithful because the WAL image fully determines durable
//! state, and it lets one live run serve as the oracle for its own crash.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which side of an end-of-step boundary a crash lands on. The two edges are
/// the cases that decide recovery's fate for the in-flight step: a crash
/// *before* the end-of-step record makes the step's updates non-durable
/// (discarded and redone by compensation of earlier steps only), a crash
/// *after* it makes them durable (replayed, then compensated as a completed
/// step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryEdge {
    /// Just before the end-of-step record is appended.
    Before,
    /// Just after the end-of-step record is appended.
    After,
}

impl fmt::Display for BoundaryEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundaryEdge::Before => write!(f, "before"),
            BoundaryEdge::After => write!(f, "after"),
        }
    }
}

/// Deterministic mangling applied to a captured disk image — what a torn
/// write or a decaying sector leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Corruption {
    /// Capture the image verbatim.
    #[default]
    None,
    /// Drop the last `n` bytes (a torn final `write(2)`).
    TornTail(u32),
    /// Flip one bit: byte `(n / 8) % len`, bit `n % 8`.
    BitFlip(u64),
    /// Mangle one whole `sector_size`-sized unit (XOR 0x5a over sector
    /// `n % sector_count`) — a torn *page*: the disk persisted garbage (or a
    /// stale version) for exactly one write unit, splitting any frame that
    /// crossed its boundary.
    SectorTear {
        /// Which sector to tear (wrapped by the image's sector count).
        index: u64,
        /// The write-unit size in bytes.
        sector_size: u32,
    },
    /// Drop the last `n` bytes of a *shipped* WAL batch in transit — the
    /// replication analogue of [`Corruption::TornTail`]: the network (or a
    /// dying sender) delivered a prefix of the batch. Distinct from
    /// `TornTail` so plans can say *where* the tear happened; on a byte
    /// image the effect is the same truncation.
    ShipTear(u32),
}

impl Corruption {
    /// Apply the corruption to `image` in place.
    pub fn apply(self, image: &mut Vec<u8>) {
        match self {
            Corruption::None => {}
            Corruption::TornTail(n) | Corruption::ShipTear(n) => {
                let keep = image.len().saturating_sub(n as usize);
                image.truncate(keep);
            }
            Corruption::BitFlip(n) => {
                if !image.is_empty() {
                    let byte = (n / 8) as usize % image.len();
                    image[byte] ^= 1 << (n % 8);
                }
            }
            Corruption::SectorTear { index, sector_size } => {
                let size = sector_size.max(1) as usize;
                let sectors = image.len().div_ceil(size);
                if sectors > 0 {
                    let k = (index as usize) % sectors;
                    let end = ((k + 1) * size).min(image.len());
                    for b in &mut image[k * size..end] {
                        *b ^= 0x5a;
                    }
                }
            }
        }
    }
}

/// What to inject, and where. All sites are optional and independent; an
/// empty plan makes the injector a pure counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Capture the durable image when the `n`th WAL append (1-based)
    /// completes — the crash point includes that record.
    pub crash_after_appends: Option<u64>,
    /// Capture at the `n`th end-of-step boundary (0-based), on the given
    /// edge.
    pub crash_at_step_boundary: Option<(u64, BoundaryEdge)>,
    /// Capture the durable image when the `n`th WAL fsync (1-based)
    /// completes — the crash loses everything past that fsync boundary
    /// (`durable_lsn`), exactly what a real disk can lose.
    pub crash_after_fsyncs: Option<u64>,
    /// Capture when the `n`th ship batch (1-based) is acknowledged — the
    /// leader dies after a partial ship, and whatever the follower verified
    /// so far is all that survives the failover.
    pub crash_after_ships: Option<u64>,
    /// Corruption applied to whichever capture fires first.
    pub corruption: Corruption,
    /// Wake every `k`th blocked lock-wait slice spuriously (before its
    /// timeout), exercising the timeout/re-detection path.
    pub spurious_wake_every: Option<u64>,
}

impl FaultPlan {
    /// Crash when the `n`th WAL append (1-based) completes.
    pub fn crash_after_appends(n: u64) -> FaultPlan {
        FaultPlan {
            crash_after_appends: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Crash on `edge` of the `n`th end-of-step boundary (0-based).
    pub fn crash_at_step_boundary(n: u64, edge: BoundaryEdge) -> FaultPlan {
        FaultPlan {
            crash_at_step_boundary: Some((n, edge)),
            ..FaultPlan::default()
        }
    }

    /// Crash when the `n`th WAL fsync (1-based) completes.
    pub fn crash_after_fsyncs(n: u64) -> FaultPlan {
        FaultPlan {
            crash_after_fsyncs: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Crash when the `n`th ship batch (1-based) is acknowledged.
    pub fn crash_after_ships(n: u64) -> FaultPlan {
        FaultPlan {
            crash_after_ships: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Wake every `k`th blocked lock-wait slice spuriously.
    pub fn spurious_wakes(k: u64) -> FaultPlan {
        FaultPlan {
            spurious_wake_every: Some(k),
            ..FaultPlan::default()
        }
    }

    /// Mangle the captured image with `c`.
    pub fn with_corruption(mut self, c: Corruption) -> FaultPlan {
        self.corruption = c;
        self
    }
}

/// What a misbehaving transport does with one send. Produced by
/// [`ShipPlan::action`]; interpreted by the transport, not the injector —
/// the plan only decides, deterministically, which sends misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipAction {
    /// Deliver the batch normally.
    Deliver,
    /// Lose the batch entirely (the sender sees a transient failure).
    Drop,
    /// Deliver the batch twice back to back.
    Duplicate,
    /// Hold the batch back and deliver it after the next `n` sends — a
    /// reordering delay, not a wall-clock one, so plans stay deterministic.
    Delay(u32),
}

/// Deterministic transport-misbehavior plan, the ship-path analogue of
/// [`FaultPlan`]: every decision is a pure function of the 1-based send
/// ordinal, so the same plan over the same stream misbehaves identically.
/// When several sites match one ordinal, the most destructive wins
/// (drop > delay > duplicate): a dropped batch cannot also arrive twice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipPlan {
    /// Drop every `k`th send.
    pub drop_every: Option<u64>,
    /// Duplicate every `k`th send.
    pub duplicate_every: Option<u64>,
    /// Delay every `k`th send by `n` later sends.
    pub delay_every: Option<(u64, u32)>,
    /// Mangle the payload of the `n`th send (1-based) with a [`Corruption`]
    /// — typically [`Corruption::ShipTear`] — before it is delivered.
    pub tear_at: Option<(u64, Corruption)>,
}

impl ShipPlan {
    /// Build a plan from a seeded RNG: small periods so the three
    /// misbehaviors interleave rather than always coinciding. Each site is
    /// present with probability 0.7 — some seeded plans are partly clean,
    /// which is itself a case worth covering.
    pub fn seeded(rng: &mut crate::rng::SeededRng) -> ShipPlan {
        let period = |rng: &mut crate::rng::SeededRng| rng.int_range(2, 7) as u64;
        ShipPlan {
            drop_every: rng.chance(0.7).then(|| period(rng)),
            duplicate_every: rng.chance(0.7).then(|| period(rng)),
            delay_every: {
                let fires = rng.chance(0.7);
                fires.then(|| (period(rng), rng.int_range(1, 3) as u32))
            },
            tear_at: None,
        }
    }

    /// The action for the `ordinal`th send (1-based).
    pub fn action(&self, ordinal: u64) -> ShipAction {
        let hits = |k: Option<u64>| matches!(k, Some(k) if k > 0 && ordinal.is_multiple_of(k));
        if hits(self.drop_every) {
            ShipAction::Drop
        } else if let Some((k, n)) = self.delay_every {
            if k > 0 && ordinal.is_multiple_of(k) {
                ShipAction::Delay(n)
            } else if hits(self.duplicate_every) {
                ShipAction::Duplicate
            } else {
                ShipAction::Deliver
            }
        } else if hits(self.duplicate_every) {
            ShipAction::Duplicate
        } else {
            ShipAction::Deliver
        }
    }

    /// The payload corruption for the `ordinal`th send (1-based);
    /// [`Corruption::None`] for all but the planned tear point.
    pub fn corruption(&self, ordinal: u64) -> Corruption {
        match self.tear_at {
            Some((n, c)) if n == ordinal => c,
            _ => Corruption::None,
        }
    }

    /// True if the plan never misbehaves — transports can skip bookkeeping.
    pub fn is_clean(&self) -> bool {
        *self == ShipPlan::default()
    }
}

/// What a misbehaving *client connection* does with one request/response
/// round trip. Produced by [`ConnPlan::action`]; interpreted by the server's
/// deterministic in-memory transport (and by torture harnesses), the same
/// way [`ShipAction`] is interpreted by the ship transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnAction {
    /// Behave: send the whole request, read the whole response.
    Deliver,
    /// The client dies mid-send: only the first `n` bytes of the request
    /// frame reach the server, then the connection closes. The request must
    /// never be admitted (a partial frame is not a request).
    DropMidRequest(u32),
    /// The response write tears after `n` bytes — the transaction's fate is
    /// decided server-side, but the client never learns it. The audit must
    /// account for such commits explicitly (committed-but-unacked), never
    /// silently.
    PartialWrite(u32),
    /// Slow-loris: the request arrives one byte per poll over `k` polls.
    /// The server must hold no engine resource while the frame dribbles in.
    SlowLoris(u32),
    /// Connection churn: open and immediately close without sending a
    /// request at all.
    Churn,
}

/// Deterministic connection-misbehavior plan — the front-end analogue of
/// [`ShipPlan`]: every decision is a pure function of the 1-based request
/// ordinal, so the same plan over the same request stream misbehaves
/// identically. When several sites match one ordinal the most destructive
/// wins (churn > drop > partial write > slow-loris): a connection that never
/// sent its request cannot also tear its response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnPlan {
    /// Churn (open/close, no request) every `k`th ordinal.
    pub churn_every: Option<u64>,
    /// Drop the connection after `n` request bytes every `k`th ordinal.
    pub drop_mid_request_every: Option<(u64, u32)>,
    /// Tear the response after `n` bytes every `k`th ordinal.
    pub partial_write_every: Option<(u64, u32)>,
    /// Trickle the request one byte per poll every `k`th ordinal.
    pub slow_loris_every: Option<u64>,
    /// Mangle the `n`th request's frame bytes (1-based) with a
    /// [`Corruption`] before delivery — a hostile or bit-rotted client.
    pub tear_at: Option<(u64, Corruption)>,
}

impl ConnPlan {
    /// Build a plan from a seeded RNG: small periods so the misbehaviors
    /// interleave rather than always coinciding. Each site is present with
    /// probability 0.6 — some seeded plans are partly (or wholly) clean,
    /// which is itself a case worth covering.
    pub fn seeded(rng: &mut crate::rng::SeededRng) -> ConnPlan {
        let period = |rng: &mut crate::rng::SeededRng| rng.int_range(3, 9) as u64;
        ConnPlan {
            churn_every: rng.chance(0.6).then(|| period(rng)),
            drop_mid_request_every: {
                let fires = rng.chance(0.6);
                fires.then(|| (period(rng), rng.int_range(1, 20) as u32))
            },
            partial_write_every: {
                let fires = rng.chance(0.6);
                fires.then(|| (period(rng), rng.int_range(1, 20) as u32))
            },
            slow_loris_every: rng.chance(0.6).then(|| period(rng)),
            tear_at: None,
        }
    }

    /// The action for the `ordinal`th request (1-based).
    pub fn action(&self, ordinal: u64) -> ConnAction {
        let hits = |k: Option<u64>| matches!(k, Some(k) if k > 0 && ordinal.is_multiple_of(k));
        let hits2 =
            |k: Option<(u64, u32)>| matches!(k, Some((k, _)) if k > 0 && ordinal.is_multiple_of(k));
        if hits(self.churn_every) {
            ConnAction::Churn
        } else if hits2(self.drop_mid_request_every) {
            let (_, n) = self.drop_mid_request_every.expect("hit");
            ConnAction::DropMidRequest(n)
        } else if hits2(self.partial_write_every) {
            let (_, n) = self.partial_write_every.expect("hit");
            ConnAction::PartialWrite(n)
        } else if hits(self.slow_loris_every) {
            ConnAction::SlowLoris(1)
        } else {
            ConnAction::Deliver
        }
    }

    /// The request-frame corruption for the `ordinal`th request (1-based);
    /// [`Corruption::None`] for all but the planned tear point.
    pub fn corruption(&self, ordinal: u64) -> Corruption {
        match self.tear_at {
            Some((n, c)) if n == ordinal => c,
            _ => Corruption::None,
        }
    }

    /// True if the plan never misbehaves.
    pub fn is_clean(&self) -> bool {
        *self == ConnPlan::default()
    }
}

/// A point-in-time copy of the injector's site counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// WAL appends observed.
    pub wal_appends: u64,
    /// End-of-step boundaries observed (counted once, on the `Before` edge).
    pub step_boundaries: u64,
    /// WAL fsync boundaries observed.
    pub wal_fsyncs: u64,
    /// Acknowledged ship batches observed.
    pub ships: u64,
    /// Blocked lock-wait slices observed.
    pub lock_waits: u64,
    /// Spurious wakeups injected.
    pub spurious_wakes: u64,
}

/// The injector: an enable flag, a plan, per-site counters, and at most one
/// captured crash image. Cheap to share (`Arc<FaultInjector>`), inert when
/// disabled.
pub struct FaultInjector {
    enabled: AtomicBool,
    plan: FaultPlan,
    wal_appends: AtomicU64,
    step_boundaries: AtomicU64,
    wal_fsyncs: AtomicU64,
    ships: AtomicU64,
    lock_waits: AtomicU64,
    spurious_wakes: AtomicU64,
    image: Mutex<Option<Vec<u8>>>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("enabled", &self.is_enabled())
            .field("plan", &self.plan)
            .field("crashed", &self.crashed())
            .finish()
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector {
            enabled: AtomicBool::new(false),
            plan: FaultPlan::default(),
            wal_appends: AtomicU64::new(0),
            step_boundaries: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            ships: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
            spurious_wakes: AtomicU64::new(0),
            image: Mutex::new(None),
        }
    }
}

impl FaultInjector {
    /// A disabled injector with an empty plan — the default everywhere.
    pub fn disabled() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::default())
    }

    /// An enabled injector executing `plan`.
    pub fn with_plan(plan: FaultPlan) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            enabled: AtomicBool::new(true),
            plan,
            ..FaultInjector::default()
        })
    }

    /// The hot-path guard: one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Site hook: one WAL append just completed. `serialize` produces the
    /// durable image *including* the appended record; it is only invoked if
    /// this append is the planned crash point.
    pub fn on_wal_append(&self, serialize: impl FnOnce() -> Vec<u8>) {
        if !self.is_enabled() {
            return;
        }
        let n = self.wal_appends.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.crash_after_appends == Some(n) {
            self.capture(serialize());
        }
    }

    /// Site hook: the current end-of-step boundary, on `edge`. Boundaries are
    /// numbered from 0 in the order their `Before` edges occur.
    pub fn on_step_boundary(&self, edge: BoundaryEdge, serialize: impl FnOnce() -> Vec<u8>) {
        if !self.is_enabled() {
            return;
        }
        let ord = match edge {
            BoundaryEdge::Before => self.step_boundaries.fetch_add(1, Ordering::Relaxed),
            BoundaryEdge::After => self
                .step_boundaries
                .load(Ordering::Relaxed)
                .saturating_sub(1),
        };
        if self.plan.crash_at_step_boundary == Some((ord, edge)) {
            self.capture(serialize());
        }
    }

    /// Site hook: one WAL group-commit fsync just completed. `serialize`
    /// produces the durable record stream as of this fsync boundary; it is
    /// only invoked if this fsync is the planned crash point.
    pub fn on_wal_fsync(&self, serialize: impl FnOnce() -> Vec<u8>) {
        if !self.is_enabled() {
            return;
        }
        let n = self.wal_fsyncs.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.crash_after_fsyncs == Some(n) {
            self.capture(serialize());
        }
    }

    /// Site hook: one ship batch was just verified and acknowledged by the
    /// follower. `serialize` produces the follower's verified stream as of
    /// this acknowledgement — the only bytes that survive a leader death
    /// here; it is only invoked if this ship is the planned crash point.
    pub fn on_ship(&self, serialize: impl FnOnce() -> Vec<u8>) {
        if !self.is_enabled() {
            return;
        }
        let n = self.ships.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.crash_after_ships == Some(n) {
            self.capture(serialize());
        }
    }

    /// Site hook: a lock wait is about to park for one timeout slice.
    /// Returns true if this slice should wake spuriously instead of sleeping
    /// its full length.
    pub fn on_lock_wait(&self) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let n = self.lock_waits.fetch_add(1, Ordering::Relaxed) + 1;
        match self.plan.spurious_wake_every {
            Some(k) if k > 0 && n.is_multiple_of(k) => {
                self.spurious_wakes.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    fn capture(&self, mut image: Vec<u8>) {
        let mut slot = self.image.lock().unwrap();
        // First capture wins: the crash happened, later faults are moot.
        if slot.is_none() {
            self.plan.corruption.apply(&mut image);
            *slot = Some(image);
        }
    }

    /// True once a planned crash point has fired.
    pub fn crashed(&self) -> bool {
        self.image.lock().unwrap().is_some()
    }

    /// The captured (post-corruption) disk image, if a crash point fired.
    pub fn captured_image(&self) -> Option<Vec<u8>> {
        self.image.lock().unwrap().clone()
    }

    /// Copy out the site counters.
    pub fn counters(&self) -> FaultCounters {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        FaultCounters {
            wal_appends: get(&self.wal_appends),
            step_boundaries: get(&self.step_boundaries),
            wal_fsyncs: get(&self.wal_fsyncs),
            ships: get(&self.ships),
            lock_waits: get(&self.lock_waits),
            spurious_wakes: get(&self.spurious_wakes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_is_inert() {
        let f = FaultInjector::disabled();
        f.on_wal_append(|| panic!("must not serialize when disabled"));
        f.on_step_boundary(BoundaryEdge::Before, || panic!("inert"));
        assert!(!f.on_lock_wait());
        assert!(!f.crashed());
        assert_eq!(f.counters(), FaultCounters::default());
    }

    #[test]
    fn crash_after_appends_fires_once_on_the_nth() {
        let f = FaultInjector::with_plan(FaultPlan::crash_after_appends(3));
        for i in 1..=5u8 {
            f.on_wal_append(|| vec![i]);
        }
        assert_eq!(f.captured_image(), Some(vec![3]));
        assert_eq!(f.counters().wal_appends, 5);
    }

    #[test]
    fn first_capture_wins() {
        let f = FaultInjector::with_plan(FaultPlan {
            crash_after_appends: Some(1),
            crash_at_step_boundary: Some((0, BoundaryEdge::Before)),
            ..FaultPlan::default()
        });
        f.on_wal_append(|| vec![1]);
        f.on_step_boundary(BoundaryEdge::Before, || vec![2]);
        assert_eq!(f.captured_image(), Some(vec![1]));
    }

    #[test]
    fn boundary_edges_share_an_ordinal() {
        let before =
            FaultInjector::with_plan(FaultPlan::crash_at_step_boundary(1, BoundaryEdge::Before));
        let after =
            FaultInjector::with_plan(FaultPlan::crash_at_step_boundary(1, BoundaryEdge::After));
        for f in [&before, &after] {
            f.on_step_boundary(BoundaryEdge::Before, || vec![10]); // boundary 0
            f.on_step_boundary(BoundaryEdge::After, || vec![11]);
            f.on_step_boundary(BoundaryEdge::Before, || vec![20]); // boundary 1
            f.on_step_boundary(BoundaryEdge::After, || vec![21]);
        }
        assert_eq!(before.captured_image(), Some(vec![20]));
        assert_eq!(after.captured_image(), Some(vec![21]));
    }

    #[test]
    fn corruption_applies_at_capture() {
        let f = FaultInjector::with_plan(
            FaultPlan::crash_after_appends(1).with_corruption(Corruption::TornTail(2)),
        );
        f.on_wal_append(|| vec![1, 2, 3, 4, 5]);
        assert_eq!(f.captured_image(), Some(vec![1, 2, 3]));

        let mut img = vec![0u8; 4];
        Corruption::BitFlip(8 * 2 + 5).apply(&mut img);
        assert_eq!(img, vec![0, 0, 1 << 5, 0]);
        // Torn tail longer than the image leaves it empty, not panicking.
        let mut img = vec![1u8, 2];
        Corruption::TornTail(10).apply(&mut img);
        assert!(img.is_empty());
        // Bit flip on an empty image is a no-op.
        let mut img = Vec::new();
        Corruption::BitFlip(3).apply(&mut img);
        assert!(img.is_empty());
    }

    #[test]
    fn crash_after_fsyncs_fires_on_the_nth_boundary() {
        let f = FaultInjector::with_plan(FaultPlan::crash_after_fsyncs(2));
        for i in 1..=4u8 {
            f.on_wal_fsync(|| vec![i; i as usize]);
        }
        assert_eq!(f.captured_image(), Some(vec![2, 2]));
        assert_eq!(f.counters().wal_fsyncs, 4);
    }

    #[test]
    fn sector_tear_mangles_exactly_one_unit() {
        let mut img: Vec<u8> = (0..10u8).collect();
        Corruption::SectorTear {
            index: 1,
            sector_size: 4,
        }
        .apply(&mut img);
        let expect: Vec<u8> = (0..10u8)
            .map(|b| if (4..8).contains(&b) { b ^ 0x5a } else { b })
            .collect();
        assert_eq!(img, expect);
        // Index wraps; a short final sector is torn to the image end.
        let mut img: Vec<u8> = (0..10u8).collect();
        Corruption::SectorTear {
            index: 5, // 3 sectors of size 4 -> sector 2 (bytes 8..10)
            sector_size: 4,
        }
        .apply(&mut img);
        assert_eq!(img[..8], (0..8u8).collect::<Vec<u8>>()[..]);
        assert_eq!(&img[8..], &[8 ^ 0x5a, 9 ^ 0x5a]);
        // Empty image is a no-op.
        let mut img = Vec::new();
        Corruption::SectorTear {
            index: 0,
            sector_size: 512,
        }
        .apply(&mut img);
        assert!(img.is_empty());
    }

    #[test]
    fn crash_after_ships_fires_on_the_nth_ack() {
        let f = FaultInjector::with_plan(FaultPlan::crash_after_ships(2));
        for i in 1..=3u8 {
            f.on_ship(|| vec![i; i as usize]);
        }
        assert_eq!(f.captured_image(), Some(vec![2, 2]));
        assert_eq!(f.counters().ships, 3);
    }

    #[test]
    fn ship_tear_truncates_like_a_torn_tail() {
        let mut img = vec![1u8, 2, 3, 4, 5];
        Corruption::ShipTear(2).apply(&mut img);
        assert_eq!(img, vec![1, 2, 3]);
    }

    #[test]
    fn ship_plan_actions_are_deterministic_and_prioritised() {
        let plan = ShipPlan {
            drop_every: Some(6),
            duplicate_every: Some(2),
            delay_every: Some((3, 1)),
            tear_at: Some((5, Corruption::ShipTear(7))),
        };
        // Ordinal 6 hits all three periods: drop wins. Ordinal 3 hits
        // delay+duplicate: delay wins. Ordinal 2 duplicates, 1 delivers.
        assert_eq!(plan.action(6), ShipAction::Drop);
        assert_eq!(plan.action(3), ShipAction::Delay(1));
        assert_eq!(plan.action(2), ShipAction::Duplicate);
        assert_eq!(plan.action(1), ShipAction::Deliver);
        assert_eq!(plan.corruption(5), Corruption::ShipTear(7));
        assert_eq!(plan.corruption(4), Corruption::None);
        assert!(!plan.is_clean());
        assert!(ShipPlan::default().is_clean());
        // Same ordinal, same answer, forever.
        for i in 1..50 {
            assert_eq!(plan.action(i), plan.action(i));
        }
    }

    #[test]
    fn seeded_ship_plans_are_reproducible() {
        let a = ShipPlan::seeded(&mut crate::rng::SeededRng::new(99));
        let b = ShipPlan::seeded(&mut crate::rng::SeededRng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn conn_plan_actions_are_deterministic_and_prioritised() {
        let plan = ConnPlan {
            churn_every: Some(12),
            drop_mid_request_every: Some((4, 7)),
            partial_write_every: Some((3, 5)),
            slow_loris_every: Some(2),
            tear_at: Some((5, Corruption::TornTail(3))),
        };
        // Ordinal 12 hits everything: churn wins. 4 hits drop+loris: drop
        // wins. 3 hits partial+?: partial wins over loris at 6? (6 hits
        // partial(3) and loris(2): partial wins). 2 is loris, 1 delivers.
        assert_eq!(plan.action(12), ConnAction::Churn);
        assert_eq!(plan.action(4), ConnAction::DropMidRequest(7));
        assert_eq!(plan.action(6), ConnAction::PartialWrite(5));
        assert_eq!(plan.action(2), ConnAction::SlowLoris(1));
        assert_eq!(plan.action(1), ConnAction::Deliver);
        assert_eq!(plan.corruption(5), Corruption::TornTail(3));
        assert_eq!(plan.corruption(6), Corruption::None);
        assert!(!plan.is_clean());
        assert!(ConnPlan::default().is_clean());
        for i in 1..50 {
            assert_eq!(plan.action(i), plan.action(i));
        }
    }

    #[test]
    fn seeded_conn_plans_are_reproducible() {
        let a = ConnPlan::seeded(&mut crate::rng::SeededRng::new(7));
        let b = ConnPlan::seeded(&mut crate::rng::SeededRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn spurious_wakes_every_kth_slice() {
        let f = FaultInjector::with_plan(FaultPlan::spurious_wakes(3));
        let fired: Vec<bool> = (0..6).map(|_| f.on_lock_wait()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true]);
        assert_eq!(f.counters().spurious_wakes, 2);
        assert_eq!(f.counters().lock_waits, 6);
    }
}
