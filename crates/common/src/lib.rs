//! Shared kernel types for the assertional concurrency control (ACC) workspace.
//!
//! This crate has no knowledge of transactions or locking; it provides the
//! vocabulary every other crate speaks:
//!
//! * [`value`] — dynamically typed column values with a fixed-point
//!   [`value::Decimal`] suitable for money and tax rates,
//! * [`ids`] — strongly typed identifiers for transactions, steps, tables and
//!   lockable resources,
//! * [`error`] — the workspace-wide [`error::Error`] type,
//! * [`rng`] — seeded random generation, Zipf skew and the TPC-C `NURand`
//!   non-uniform distribution,
//! * [`clock`] — a clock abstraction shared by the real engine (wall clock)
//!   and the discrete-event simulator (virtual clock),
//! * [`events`] — the zero-cost-when-disabled observability sink (structured
//!   lock/step events, atomic counters, `lockstat` dumps),
//! * [`faults`] — seeded, deterministic fault injection (planned crash
//!   points, image corruption, spurious wakeups), disabled by default,
//! * [`frame`] — length-prefixed wire framing with chained checksums, shared
//!   by the replication transport and the network front-end.

pub mod clock;
pub mod error;
pub mod events;
pub mod faults;
pub mod frame;
pub mod ids;
pub mod rng;
pub mod value;

pub use error::{Error, Result};
pub use events::{
    AdmissionVerdict, CounterSnapshot, Event, EventLog, EventSink, KindRepr, TxnList,
};
pub use faults::{
    BoundaryEdge, ConnAction, ConnPlan, Corruption, FaultCounters, FaultInjector, FaultPlan,
};
pub use frame::{Decoded, Frame, FrameBuf, StreamChain};
pub use ids::{
    AssertionTemplateId, PageNo, ResourceId, Slot, StepTypeId, TableId, TxnId, TxnTypeId,
};
pub use rng::SeededRng;
pub use value::{Decimal, Value};
