//! Dynamically typed column values.
//!
//! The storage layer is schema-checked but rows are held as vectors of
//! [`Value`]. Money and rates use [`Decimal`], a scale-4 fixed-point integer
//! (1 unit = 10⁻⁴), which is exact for every amount TPC-C manipulates.

use std::cmp::Ordering;
use std::fmt;

/// Fixed-point decimal with four fractional digits.
///
/// `Decimal::from_units(12345)` is `1.2345`; `Decimal::from_int(3)` is `3.0000`.
/// Arithmetic is plain integer arithmetic on the underlying units and panics
/// on overflow in debug builds, exactly like Rust integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Decimal(i64);

impl Decimal {
    /// Number of fractional digits.
    pub const SCALE: u32 = 4;
    /// Multiplier between whole numbers and internal units.
    pub const UNIT: i64 = 10_000;
    /// Zero.
    pub const ZERO: Decimal = Decimal(0);

    /// Build from raw scale-4 units.
    #[inline]
    pub const fn from_units(units: i64) -> Self {
        Decimal(units)
    }

    /// Build from a whole number.
    #[inline]
    pub const fn from_int(n: i64) -> Self {
        Decimal(n * Self::UNIT)
    }

    /// Build from cents (two fractional digits), the granularity of most
    /// TPC-C money fields.
    #[inline]
    pub const fn from_cents(cents: i64) -> Self {
        Decimal(cents * 100)
    }

    /// Raw scale-4 units.
    #[inline]
    pub const fn units(self) -> i64 {
        self.0
    }

    /// Truncating conversion to a whole number.
    #[inline]
    pub const fn trunc(self) -> i64 {
        self.0 / Self::UNIT
    }

    /// Multiply by an integer quantity.
    #[inline]
    pub fn mul_int(self, n: i64) -> Decimal {
        Decimal(self.0 * n)
    }
}

impl std::ops::Mul for Decimal {
    type Output = Decimal;
    /// Multiply two decimals, truncating to scale 4. Intermediate math is
    /// done in `i128` so products of realistic money amounts never overflow.
    #[inline]
    fn mul(self, rhs: Decimal) -> Decimal {
        Decimal(((self.0 as i128 * rhs.0 as i128) / Self::UNIT as i128) as i64)
    }
}

impl std::ops::Add for Decimal {
    type Output = Decimal;
    #[inline]
    fn add(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Decimal {
    type Output = Decimal;
    #[inline]
    fn sub(self, rhs: Decimal) -> Decimal {
        Decimal(self.0 - rhs.0)
    }
}

impl std::ops::AddAssign for Decimal {
    #[inline]
    fn add_assign(&mut self, rhs: Decimal) {
        self.0 += rhs.0;
    }
}

impl std::ops::SubAssign for Decimal {
    #[inline]
    fn sub_assign(&mut self, rhs: Decimal) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Decimal {
    fn sum<I: Iterator<Item = Decimal>>(iter: I) -> Decimal {
        iter.fold(Decimal::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(
            f,
            "{sign}{}.{:04}",
            abs / Decimal::UNIT as u64,
            abs % Decimal::UNIT as u64
        )
    }
}

/// A single column value.
///
/// `Null` compares less than every non-null value so keys containing nulls
/// still have a total order; the storage layer forbids nulls in key columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Variable-length string.
    Str(String),
    /// Scale-4 fixed-point decimal.
    Decimal(Decimal),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Mnemonic constructor for strings.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The decimal inside, if this is a `Decimal`.
    pub fn as_decimal(&self) -> Option<Decimal> {
        match self {
            Value::Decimal(d) => Some(*d),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rank used to order values of different runtime types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Decimal(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Mixed types: order by type rank. Schema checking makes this
            // unreachable in practice but a total order keeps BTree keys sane.
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Decimal(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<Decimal> for Value {
    fn from(d: Decimal) -> Value {
        Value::Decimal(d)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_display() {
        assert_eq!(Decimal::from_units(12345).to_string(), "1.2345");
        assert_eq!(Decimal::from_units(-12345).to_string(), "-1.2345");
        assert_eq!(Decimal::from_int(7).to_string(), "7.0000");
        assert_eq!(Decimal::from_cents(1999).to_string(), "19.9900");
        assert_eq!(Decimal::ZERO.to_string(), "0.0000");
    }

    #[test]
    fn decimal_arithmetic() {
        let a = Decimal::from_cents(150); // 1.50
        let b = Decimal::from_cents(250); // 2.50
        assert_eq!(a + b, Decimal::from_cents(400));
        assert_eq!(b - a, Decimal::from_cents(100));
        assert_eq!(a.mul_int(3), Decimal::from_cents(450));
        // 1.5 * 2.5 = 3.75
        assert_eq!(a * b, Decimal::from_units(37_500));
        assert_eq!(Decimal::from_cents(450).trunc(), 4);
    }

    #[test]
    fn decimal_sum() {
        let total: Decimal = (1..=4).map(Decimal::from_int).sum();
        assert_eq!(total, Decimal::from_int(10));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(
            Value::from(Decimal::from_int(2)).as_decimal(),
            Some(Decimal::from_int(2))
        );
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Int(5).as_str(), None);
    }

    #[test]
    fn value_ordering_same_type() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::from(Decimal::from_int(1)) < Value::from(Decimal::from_int(2)));
    }

    #[test]
    fn value_ordering_null_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
    }
}
