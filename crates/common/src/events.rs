//! Cheap, allocation-light observability for the lock/step machinery.
//!
//! An [`EventSink`] combines a fixed-capacity ring buffer of structured
//! [`Event`]s with a set of relaxed atomic counters. Components that want to
//! be observable hold an `Arc<EventSink>` (the lock manager, the transaction
//! runner, the simulator) and call [`EventSink::emit`]; when the sink is
//! disabled — the default — `emit` is a single relaxed load and a branch, so
//! the instrumented hot paths cost essentially nothing.
//!
//! Three consumers sit on top:
//!
//! * counter snapshots ([`EventSink::counters`]) embedded in simulation and
//!   engine reports,
//! * the human-readable [`EventSink::lockstat_dump`] (top contended
//!   resources, wait-time histogram, deadlock cycle traces),
//! * the [`EventLog`] assertion API used by tests to check the paper's
//!   behavioural properties (DESIGN.md §5: a write never meets an
//!   interfering pinned assertion; compensating steps never wait on
//!   assertional locks and are never deadlock victims).

use crate::ids::{AssertionTemplateId, ResourceId, StepTypeId, TableId, TxnId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Compact, copyable image of a lock kind (the real `LockKind` lives in the
/// lock-manager crate, which depends on this one). Conventional modes are the
/// low values; assertional kinds set the high bit and carry the template id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KindRepr(pub u32);

const ASSERTIONAL_BIT: u32 = 0x8000_0000;

impl KindRepr {
    /// Intention-shared.
    pub const IS: KindRepr = KindRepr(0);
    /// Intention-exclusive.
    pub const IX: KindRepr = KindRepr(1);
    /// Shared.
    pub const S: KindRepr = KindRepr(2);
    /// Shared + intention-exclusive.
    pub const SIX: KindRepr = KindRepr(3);
    /// Exclusive.
    pub const X: KindRepr = KindRepr(4);

    /// The repr of an assertional lock on `template`.
    pub fn assertional(template: AssertionTemplateId) -> KindRepr {
        KindRepr(ASSERTIONAL_BIT | template.raw())
    }

    /// True for assertional kinds.
    pub fn is_assertional(self) -> bool {
        self.0 & ASSERTIONAL_BIT != 0
    }

    /// The template of an assertional kind.
    pub fn template(self) -> Option<AssertionTemplateId> {
        self.is_assertional()
            .then_some(AssertionTemplateId(self.0 & !ASSERTIONAL_BIT))
    }

    /// True for conventional write modes (IX/SIX/X).
    pub fn is_write_mode(self) -> bool {
        matches!(self, KindRepr::IX | KindRepr::SIX | KindRepr::X)
    }
}

impl fmt::Display for KindRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            KindRepr::IS => write!(f, "IS"),
            KindRepr::IX => write!(f, "IX"),
            KindRepr::S => write!(f, "S"),
            KindRepr::SIX => write!(f, "SIX"),
            KindRepr::X => write!(f, "X"),
            k => match k.template() {
                Some(t) => write!(f, "A({})", t.raw()),
                None => write!(f, "?({})", k.0),
            },
        }
    }
}

/// A fixed-capacity, copyable list of transaction ids (deadlock cycles are
/// short; anything longer is truncated rather than allocated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnList {
    ids: [TxnId; TxnList::CAP],
    len: u8,
}

impl TxnList {
    /// Maximum members kept per list.
    pub const CAP: usize = 8;

    /// Build from a slice, keeping at most [`TxnList::CAP`] entries.
    pub fn from_slice(ids: &[TxnId]) -> TxnList {
        let mut out = TxnList {
            ids: [TxnId(0); TxnList::CAP],
            len: ids.len().min(TxnList::CAP) as u8,
        };
        out.ids[..out.len as usize].copy_from_slice(&ids[..out.len as usize]);
        out
    }

    /// The kept members.
    pub fn as_slice(&self) -> &[TxnId] {
        &self.ids[..self.len as usize]
    }

    /// Membership test.
    pub fn contains(&self, txn: TxnId) -> bool {
        self.as_slice().contains(&txn)
    }
}

impl fmt::Display for TxnList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", t.0)?;
        }
        write!(f, "]")
    }
}

/// What the admission controller decided for one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Queued for a worker (within the bounded admission queue).
    Accepted,
    /// Bounced with a typed `Overloaded` before touching the engine.
    Shed,
    /// Expired its deadline — either while queued (rejected without touching
    /// the engine) or mid-run (aborted through the compensation path).
    TimedOut,
}

impl fmt::Display for AdmissionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionVerdict::Accepted => write!(f, "accepted"),
            AdmissionVerdict::Shed => write!(f, "shed"),
            AdmissionVerdict::TimedOut => write!(f, "timed_out"),
        }
    }
}

/// One structured observability event. All variants are `Copy` — recording
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A lock was requested.
    LockRequest {
        /// Requesting transaction.
        txn: TxnId,
        /// Requested resource.
        resource: ResourceId,
        /// Requested kind.
        kind: KindRepr,
        /// The requesting step's design-time type.
        step_type: StepTypeId,
        /// True if issued by a compensating step.
        compensating: bool,
    },
    /// A request was granted (immediately or after a wait).
    LockGranted {
        /// Holding transaction.
        txn: TxnId,
        /// Granted resource.
        resource: ResourceId,
        /// Granted kind (post-upgrade for conventional upgrades).
        kind: KindRepr,
        /// The step type that requested it.
        step_type: StepTypeId,
        /// True if the holder is compensating.
        compensating: bool,
    },
    /// A request could not be granted and was queued.
    LockWait {
        /// Waiting transaction.
        txn: TxnId,
        /// Contested resource.
        resource: ResourceId,
        /// Requested kind.
        kind: KindRepr,
        /// True if issued by a compensating step.
        compensating: bool,
        /// True if some blocking grant is an assertional lock the oracle
        /// says this request interferes with.
        blocked_by_assertion: bool,
        /// True if blocked *only* by FIFO queue position (no grant
        /// conflicts): the conservative denial the interference table is
        /// meant to minimise.
        conservative: bool,
    },
    /// A grant was released.
    LockReleased {
        /// Former holder.
        txn: TxnId,
        /// Released resource.
        resource: ResourceId,
        /// Released kind.
        kind: KindRepr,
    },
    /// An assertional lock (template pin) was granted.
    AssertionPinned {
        /// Pinning transaction.
        txn: TxnId,
        /// Pinned resource.
        resource: ResourceId,
        /// Pinned template.
        template: AssertionTemplateId,
    },
    /// The interference table reported a real step-vs-assertion conflict.
    InterferenceHit {
        /// The blocked requester.
        txn: TxnId,
        /// The requesting step's type.
        step_type: StepTypeId,
        /// The pinned template it interferes with.
        template: AssertionTemplateId,
        /// Where.
        resource: ResourceId,
    },
    /// A wait-for cycle was detected.
    Deadlock {
        /// The cycle members (truncated at [`TxnList::CAP`]).
        cycle: TxnList,
        /// The chosen victims.
        victims: TxnList,
        /// True if the requester that closed the cycle was compensating
        /// (then the victims are the *other* members, paper §3.4).
        compensating_requester: bool,
    },
    /// One transaction was chosen as a deadlock victim.
    DeadlockVictim {
        /// The victim.
        txn: TxnId,
        /// True if the victim had a compensating-step request queued (must
        /// never happen outside the degenerate comp-vs-comp retry).
        compensating: bool,
    },
    /// A rollback began compensating completed steps.
    CompensationStart {
        /// The rolling-back transaction.
        txn: TxnId,
        /// Steps completed and now being semantically undone.
        from_step: u32,
    },
    /// One forward step finished, with its observed latency.
    StepEnd {
        /// The transaction.
        txn: TxnId,
        /// The finished step's position.
        step_index: u32,
        /// Wall/sim time the step took, microseconds.
        micros: u64,
    },
    /// A lock wait ended in a grant, with the observed wait time.
    WaitEnd {
        /// The formerly waiting transaction.
        txn: TxnId,
        /// The resource it waited for.
        resource: ResourceId,
        /// How long it waited, microseconds.
        micros: u64,
    },
    /// One crash-recovery pass finished (torture harness, crash drills):
    /// how every transaction on the salvaged log was accounted for.
    RecoveryOutcome {
        /// Transactions fully replayed (committed or cleanly aborted).
        replayed: u32,
        /// In-flight transactions finished by compensating steps.
        compensated: u32,
        /// In-flight transactions with no durable step, discarded outright.
        discarded: u32,
        /// Log records rejected as torn or corrupt (beyond the clean
        /// prefix).
        rejected_records: u32,
    },
    /// One WAL group-commit flush (write + fsync) completed, making every
    /// record appended before it durable.
    WalFsync {
        /// Records newly made durable by this flush.
        records: u32,
        /// Encoded bytes newly made durable by this flush.
        bytes: u32,
    },
    /// An interference-table switchover completed: re-analyzed tables became
    /// current after every transaction pinned to the old epoch released its
    /// locks (immediate when nothing was pinned).
    EpochSwitch {
        /// The epoch that just became current.
        epoch: u64,
        /// Old-epoch pins the switch drained (0 = immediate).
        drained: u32,
        /// Admissions that parked while the drain was in progress.
        parked: u32,
    },
    /// A read was satisfied from the version chains without touching the
    /// lock manager (the coordination-free fast path).
    VersionRead {
        /// Reading transaction.
        txn: TxnId,
        /// Table read.
        table: TableId,
    },
    /// A version read could not be soundly reconstructed (tainted chain) and
    /// fell back to a conventional locked read.
    VersionFallback {
        /// Reading transaction.
        txn: TxnId,
        /// Table read.
        table: TableId,
    },
    /// One WAL ship batch was verified and acknowledged by the follower.
    ShipBatch {
        /// Log records carried by this batch.
        records: u32,
        /// Payload bytes carried by this batch.
        bytes: u32,
        /// Leader records the follower still lacked *after* applying this
        /// batch — the replication-lag backpressure signal.
        lag: u32,
    },
    /// A ship send failed transiently and is being retried with backoff.
    ShipRetry {
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// The follower refused a batch (torn payload, sequence gap, or broken
    /// chain); the shipper must resume from the last verified frame.
    ShipRefused {
        /// The refused batch's ship sequence number.
        seq: u64,
    },
    /// The shipper rewound to the follower's verified frontier after a
    /// refusal or a follower restart.
    ShipResume {
        /// Stream byte offset resumed from.
        offset: u64,
    },
    /// The admission controller ruled on one submitted request.
    Admission {
        /// The ruling.
        verdict: AdmissionVerdict,
        /// Admission-queue depth observed at the decision (after an accept,
        /// before a shed) — feeds the queue-depth high-water counter.
        queue_depth: u32,
    },
    /// A client connection opened or closed (churn tracking).
    ConnChurn {
        /// True on open, false on close.
        opened: bool,
    },
}

/// Number of wait-histogram buckets (power-of-two microsecond buckets:
/// bucket *i* counts waits in `[2^i, 2^(i+1))` µs, bucket 0 includes 0–1 µs).
pub const WAIT_BUCKETS: usize = 24;

#[derive(Default)]
struct Counters {
    lock_requests: AtomicU64,
    lock_grants: AtomicU64,
    lock_waits: AtomicU64,
    lock_releases: AtomicU64,
    assertion_pins: AtomicU64,
    interference_hits: AtomicU64,
    conservative_denials: AtomicU64,
    deadlocks: AtomicU64,
    deadlock_victims: AtomicU64,
    compensations: AtomicU64,
    steps: AtomicU64,
    step_micros: AtomicU64,
    wait_count: AtomicU64,
    wait_micros: AtomicU64,
    recoveries: AtomicU64,
    recovered_replayed: AtomicU64,
    recovered_compensated: AtomicU64,
    recovered_discarded: AtomicU64,
    rejected_records: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_fsynced_records: AtomicU64,
    wal_fsynced_bytes: AtomicU64,
    epoch_switches: AtomicU64,
    epoch_drained_pins: AtomicU64,
    epoch_parked_admissions: AtomicU64,
    version_reads: AtomicU64,
    version_fallbacks: AtomicU64,
    ship_batches: AtomicU64,
    ship_records: AtomicU64,
    ship_bytes: AtomicU64,
    ship_retries: AtomicU64,
    ship_refusals: AtomicU64,
    ship_resumes: AtomicU64,
    ship_lag_max: AtomicU64,
    admitted: AtomicU64,
    admission_sheds: AtomicU64,
    deadline_aborts: AtomicU64,
    admission_depth_max: AtomicU64,
    conn_churn: AtomicU64,
}

/// A point-in-time copy of the sink's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Lock requests observed.
    pub lock_requests: u64,
    /// Grants (immediate + after wait).
    pub lock_grants: u64,
    /// Requests that had to queue.
    pub lock_waits: u64,
    /// Grants released.
    pub lock_releases: u64,
    /// Assertional locks granted.
    pub assertion_pins: u64,
    /// Real interference-table conflicts (blocked by an interfering pin).
    pub interference_hits: u64,
    /// Waits caused only by FIFO queue position.
    pub conservative_denials: u64,
    /// Wait-for cycles detected.
    pub deadlocks: u64,
    /// Victims chosen across all cycles.
    pub deadlock_victims: u64,
    /// Compensation rollbacks started.
    pub compensations: u64,
    /// Forward steps completed.
    pub steps: u64,
    /// Total forward-step latency, µs.
    pub step_micros: u64,
    /// Completed lock waits with a recorded duration.
    pub wait_count: u64,
    /// Total recorded lock-wait time, µs.
    pub wait_micros: u64,
    /// Crash-recovery passes observed.
    pub recoveries: u64,
    /// Transactions fully replayed across all recovery passes.
    pub recovered_replayed: u64,
    /// In-flight transactions compensated across all recovery passes.
    pub recovered_compensated: u64,
    /// In-flight transactions discarded across all recovery passes.
    pub recovered_discarded: u64,
    /// Torn/corrupt log records rejected across all recovery passes.
    pub rejected_records: u64,
    /// WAL group-commit flushes (write + fsync) completed.
    pub wal_fsyncs: u64,
    /// Records made durable across all flushes.
    pub wal_fsynced_records: u64,
    /// Encoded bytes made durable across all flushes.
    pub wal_fsynced_bytes: u64,
    /// Interference-table switchovers completed (immediate + drained).
    pub epoch_switches: u64,
    /// Old-epoch pins drained across all switchovers.
    pub epoch_drained_pins: u64,
    /// Admissions parked waiting for a switchover across all drains.
    pub epoch_parked_admissions: u64,
    /// Reads satisfied from version chains, bypassing the lock manager.
    pub version_reads: u64,
    /// Version reads that tainted and fell back to a locked read.
    pub version_fallbacks: u64,
    /// Ship batches verified and acknowledged by the follower.
    pub ship_batches: u64,
    /// Log records shipped across all acknowledged batches.
    pub ship_records: u64,
    /// Payload bytes shipped across all acknowledged batches.
    pub ship_bytes: u64,
    /// Transient ship-send retries.
    pub ship_retries: u64,
    /// Batches the follower refused (torn, gapped, or chain-broken).
    pub ship_refusals: u64,
    /// Shipper rewinds to the follower's verified frontier.
    pub ship_resumes: u64,
    /// Worst follower lag (leader records minus replayed) observed at any
    /// batch acknowledgement — a high-water gauge, not a running total.
    pub ship_lag_max: u64,
    /// Requests the admission controller accepted into the bounded queue.
    pub admitted: u64,
    /// Requests shed with a typed `Overloaded` before touching the engine.
    pub admission_sheds: u64,
    /// Requests that expired their deadline — queued-and-expired rejections
    /// plus mid-run deadline aborts through the compensation path.
    pub deadline_aborts: u64,
    /// Deepest admission queue observed at any decision — a high-water
    /// gauge, not a running total.
    pub admission_depth_max: u64,
    /// Connection open/close events observed (churn).
    pub conn_churn: u64,
}

impl std::ops::Sub for CounterSnapshot {
    type Output = CounterSnapshot;

    /// Per-field saturating difference — turns two cumulative snapshots into
    /// the counts for the interval between them.
    fn sub(self, rhs: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            lock_requests: self.lock_requests.saturating_sub(rhs.lock_requests),
            lock_grants: self.lock_grants.saturating_sub(rhs.lock_grants),
            lock_waits: self.lock_waits.saturating_sub(rhs.lock_waits),
            lock_releases: self.lock_releases.saturating_sub(rhs.lock_releases),
            assertion_pins: self.assertion_pins.saturating_sub(rhs.assertion_pins),
            interference_hits: self.interference_hits.saturating_sub(rhs.interference_hits),
            conservative_denials: self
                .conservative_denials
                .saturating_sub(rhs.conservative_denials),
            deadlocks: self.deadlocks.saturating_sub(rhs.deadlocks),
            deadlock_victims: self.deadlock_victims.saturating_sub(rhs.deadlock_victims),
            compensations: self.compensations.saturating_sub(rhs.compensations),
            steps: self.steps.saturating_sub(rhs.steps),
            step_micros: self.step_micros.saturating_sub(rhs.step_micros),
            wait_count: self.wait_count.saturating_sub(rhs.wait_count),
            wait_micros: self.wait_micros.saturating_sub(rhs.wait_micros),
            recoveries: self.recoveries.saturating_sub(rhs.recoveries),
            recovered_replayed: self
                .recovered_replayed
                .saturating_sub(rhs.recovered_replayed),
            recovered_compensated: self
                .recovered_compensated
                .saturating_sub(rhs.recovered_compensated),
            recovered_discarded: self
                .recovered_discarded
                .saturating_sub(rhs.recovered_discarded),
            rejected_records: self.rejected_records.saturating_sub(rhs.rejected_records),
            wal_fsyncs: self.wal_fsyncs.saturating_sub(rhs.wal_fsyncs),
            wal_fsynced_records: self
                .wal_fsynced_records
                .saturating_sub(rhs.wal_fsynced_records),
            wal_fsynced_bytes: self.wal_fsynced_bytes.saturating_sub(rhs.wal_fsynced_bytes),
            epoch_switches: self.epoch_switches.saturating_sub(rhs.epoch_switches),
            epoch_drained_pins: self
                .epoch_drained_pins
                .saturating_sub(rhs.epoch_drained_pins),
            epoch_parked_admissions: self
                .epoch_parked_admissions
                .saturating_sub(rhs.epoch_parked_admissions),
            version_reads: self.version_reads.saturating_sub(rhs.version_reads),
            version_fallbacks: self.version_fallbacks.saturating_sub(rhs.version_fallbacks),
            ship_batches: self.ship_batches.saturating_sub(rhs.ship_batches),
            ship_records: self.ship_records.saturating_sub(rhs.ship_records),
            ship_bytes: self.ship_bytes.saturating_sub(rhs.ship_bytes),
            ship_retries: self.ship_retries.saturating_sub(rhs.ship_retries),
            ship_refusals: self.ship_refusals.saturating_sub(rhs.ship_refusals),
            ship_resumes: self.ship_resumes.saturating_sub(rhs.ship_resumes),
            // A high-water mark has no meaningful interval delta; keep the
            // later snapshot's value.
            ship_lag_max: self.ship_lag_max,
            admitted: self.admitted.saturating_sub(rhs.admitted),
            admission_sheds: self.admission_sheds.saturating_sub(rhs.admission_sheds),
            deadline_aborts: self.deadline_aborts.saturating_sub(rhs.deadline_aborts),
            admission_depth_max: self.admission_depth_max,
            conn_churn: self.conn_churn.saturating_sub(rhs.conn_churn),
        }
    }
}

impl CounterSnapshot {
    /// Mean recorded lock-wait time in milliseconds.
    pub fn mean_wait_ms(&self) -> f64 {
        if self.wait_count == 0 {
            0.0
        } else {
            self.wait_micros as f64 / self.wait_count as f64 / 1000.0
        }
    }

    /// Mean forward-step latency in milliseconds.
    pub fn mean_step_ms(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.step_micros as f64 / self.steps as f64 / 1000.0
        }
    }
}

struct Ring {
    buf: Vec<Event>,
    /// Next write position.
    head: usize,
    /// True once the buffer has wrapped.
    wrapped: bool,
}

/// The sink: enable flag + counters + ring buffer. Cheap to share
/// (`Arc<EventSink>`), cheap to ignore (disabled sinks cost one relaxed
/// atomic load per instrumented operation).
pub struct EventSink {
    enabled: AtomicBool,
    capacity: usize,
    counters: Counters,
    wait_hist: [AtomicU64; WAIT_BUCKETS],
    ring: Mutex<Ring>,
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventSink")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink {
            enabled: AtomicBool::new(false),
            capacity: 0,
            counters: Counters::default(),
            wait_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
                wrapped: false,
            }),
        }
    }
}

impl EventSink {
    /// An enabled sink keeping the last `capacity` events.
    pub fn enabled(capacity: usize) -> Arc<EventSink> {
        let sink = EventSink {
            enabled: AtomicBool::new(true),
            capacity,
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                head: 0,
                wrapped: false,
            }),
            ..EventSink::default()
        };
        Arc::new(sink)
    }

    /// A disabled, zero-capacity sink — the default everywhere.
    pub fn disabled() -> Arc<EventSink> {
        Arc::new(EventSink::default())
    }

    /// The hot-path guard: one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record one event: bump its counters and append it to the ring.
    /// No-op when disabled.
    pub fn emit(&self, ev: Event) {
        if !self.is_enabled() {
            return;
        }
        self.count(&ev);
        if self.capacity > 0 {
            let mut ring = self.ring.lock().unwrap();
            let head = ring.head;
            if ring.buf.len() < self.capacity {
                ring.buf.push(ev);
            } else {
                ring.buf[head] = ev;
                ring.wrapped = true;
            }
            ring.head = (head + 1) % self.capacity;
        }
    }

    fn count(&self, ev: &Event) {
        let c = &self.counters;
        let bump = |a: &AtomicU64| {
            a.fetch_add(1, Ordering::Relaxed);
        };
        match *ev {
            Event::LockRequest { .. } => bump(&c.lock_requests),
            Event::LockGranted { .. } => bump(&c.lock_grants),
            Event::LockWait {
                blocked_by_assertion,
                conservative,
                ..
            } => {
                bump(&c.lock_waits);
                // Interference hits are counted by their own event; here we
                // only classify the benign FIFO case.
                let _ = blocked_by_assertion;
                if conservative {
                    bump(&c.conservative_denials);
                }
            }
            Event::LockReleased { .. } => bump(&c.lock_releases),
            Event::AssertionPinned { .. } => bump(&c.assertion_pins),
            Event::InterferenceHit { .. } => bump(&c.interference_hits),
            Event::Deadlock { victims, .. } => {
                bump(&c.deadlocks);
                c.deadlock_victims
                    .fetch_add(victims.as_slice().len() as u64, Ordering::Relaxed);
            }
            Event::DeadlockVictim { .. } => {}
            Event::CompensationStart { .. } => bump(&c.compensations),
            Event::StepEnd { micros, .. } => {
                bump(&c.steps);
                c.step_micros.fetch_add(micros, Ordering::Relaxed);
            }
            Event::WaitEnd { micros, .. } => {
                bump(&c.wait_count);
                c.wait_micros.fetch_add(micros, Ordering::Relaxed);
                let bucket =
                    (64 - micros.max(1).leading_zeros() as usize - 1).min(WAIT_BUCKETS - 1);
                self.wait_hist[bucket].fetch_add(1, Ordering::Relaxed);
            }
            Event::RecoveryOutcome {
                replayed,
                compensated,
                discarded,
                rejected_records,
            } => {
                bump(&c.recoveries);
                let add = |a: &AtomicU64, n: u32| {
                    a.fetch_add(n as u64, Ordering::Relaxed);
                };
                add(&c.recovered_replayed, replayed);
                add(&c.recovered_compensated, compensated);
                add(&c.recovered_discarded, discarded);
                add(&c.rejected_records, rejected_records);
            }
            Event::WalFsync { records, bytes } => {
                bump(&c.wal_fsyncs);
                c.wal_fsynced_records
                    .fetch_add(records as u64, Ordering::Relaxed);
                c.wal_fsynced_bytes
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            }
            Event::EpochSwitch {
                drained, parked, ..
            } => {
                bump(&c.epoch_switches);
                c.epoch_drained_pins
                    .fetch_add(drained as u64, Ordering::Relaxed);
                c.epoch_parked_admissions
                    .fetch_add(parked as u64, Ordering::Relaxed);
            }
            Event::VersionRead { .. } => bump(&c.version_reads),
            Event::VersionFallback { .. } => bump(&c.version_fallbacks),
            Event::ShipBatch {
                records,
                bytes,
                lag,
            } => {
                bump(&c.ship_batches);
                c.ship_records.fetch_add(records as u64, Ordering::Relaxed);
                c.ship_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                c.ship_lag_max.fetch_max(lag as u64, Ordering::Relaxed);
            }
            Event::ShipRetry { .. } => bump(&c.ship_retries),
            Event::ShipRefused { .. } => bump(&c.ship_refusals),
            Event::ShipResume { .. } => bump(&c.ship_resumes),
            Event::Admission {
                verdict,
                queue_depth,
            } => {
                match verdict {
                    AdmissionVerdict::Accepted => bump(&c.admitted),
                    AdmissionVerdict::Shed => bump(&c.admission_sheds),
                    AdmissionVerdict::TimedOut => bump(&c.deadline_aborts),
                }
                c.admission_depth_max
                    .fetch_max(queue_depth as u64, Ordering::Relaxed);
            }
            Event::ConnChurn { .. } => bump(&c.conn_churn),
        }
    }

    /// Copy out the counters.
    pub fn counters(&self) -> CounterSnapshot {
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CounterSnapshot {
            lock_requests: get(&c.lock_requests),
            lock_grants: get(&c.lock_grants),
            lock_waits: get(&c.lock_waits),
            lock_releases: get(&c.lock_releases),
            assertion_pins: get(&c.assertion_pins),
            interference_hits: get(&c.interference_hits),
            conservative_denials: get(&c.conservative_denials),
            deadlocks: get(&c.deadlocks),
            deadlock_victims: get(&c.deadlock_victims),
            compensations: get(&c.compensations),
            steps: get(&c.steps),
            step_micros: get(&c.step_micros),
            wait_count: get(&c.wait_count),
            wait_micros: get(&c.wait_micros),
            recoveries: get(&c.recoveries),
            recovered_replayed: get(&c.recovered_replayed),
            recovered_compensated: get(&c.recovered_compensated),
            recovered_discarded: get(&c.recovered_discarded),
            rejected_records: get(&c.rejected_records),
            wal_fsyncs: get(&c.wal_fsyncs),
            wal_fsynced_records: get(&c.wal_fsynced_records),
            wal_fsynced_bytes: get(&c.wal_fsynced_bytes),
            epoch_switches: get(&c.epoch_switches),
            epoch_drained_pins: get(&c.epoch_drained_pins),
            epoch_parked_admissions: get(&c.epoch_parked_admissions),
            version_reads: get(&c.version_reads),
            version_fallbacks: get(&c.version_fallbacks),
            ship_batches: get(&c.ship_batches),
            ship_records: get(&c.ship_records),
            ship_bytes: get(&c.ship_bytes),
            ship_retries: get(&c.ship_retries),
            ship_refusals: get(&c.ship_refusals),
            ship_resumes: get(&c.ship_resumes),
            ship_lag_max: get(&c.ship_lag_max),
            admitted: get(&c.admitted),
            admission_sheds: get(&c.admission_sheds),
            deadline_aborts: get(&c.deadline_aborts),
            admission_depth_max: get(&c.admission_depth_max),
            conn_churn: get(&c.conn_churn),
        }
    }

    /// The wait-time histogram (power-of-two µs buckets).
    pub fn wait_histogram(&self) -> [u64; WAIT_BUCKETS] {
        std::array::from_fn(|i| self.wait_hist[i].load(Ordering::Relaxed))
    }

    /// The retained events, oldest first (ring order).
    pub fn events(&self) -> Vec<Event> {
        let ring = self.ring.lock().unwrap();
        if !ring.wrapped {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(ring.buf.len());
            out.extend_from_slice(&ring.buf[ring.head..]);
            out.extend_from_slice(&ring.buf[..ring.head]);
            out
        }
    }

    /// Human-readable contention report: counter summary, top contended
    /// resources, wait-time histogram, deadlock cycle traces. Built from the
    /// retained ring events plus the counters; suitable for printing on test
    /// failure or from the figures binary.
    pub fn lockstat_dump(&self) -> String {
        use std::fmt::Write as _;
        let c = self.counters();
        let events = self.events();
        let mut out = String::new();
        let _ = writeln!(out, "== lockstat ==");
        let _ = writeln!(
            out,
            "requests {}  grants {}  waits {}  releases {}  pins {}",
            c.lock_requests, c.lock_grants, c.lock_waits, c.lock_releases, c.assertion_pins
        );
        let _ = writeln!(
            out,
            "interference hits {}  conservative denials {}  deadlocks {} ({} victims)  compensations {}",
            c.interference_hits, c.conservative_denials, c.deadlocks, c.deadlock_victims,
            c.compensations
        );
        let _ = writeln!(
            out,
            "steps {} (mean {:.3} ms)  recorded waits {} (mean {:.3} ms)",
            c.steps,
            c.mean_step_ms(),
            c.wait_count,
            c.mean_wait_ms()
        );
        if c.wal_fsyncs > 0 {
            let _ = writeln!(
                out,
                "wal fsyncs {}: {} records, {} bytes ({:.1} records/fsync)",
                c.wal_fsyncs,
                c.wal_fsynced_records,
                c.wal_fsynced_bytes,
                c.wal_fsynced_records as f64 / c.wal_fsyncs as f64
            );
        }
        if c.version_reads > 0 || c.version_fallbacks > 0 {
            let _ = writeln!(
                out,
                "version reads {} (coordination-free)  fallbacks {}",
                c.version_reads, c.version_fallbacks
            );
        }
        if c.ship_batches > 0 || c.ship_refusals > 0 {
            let _ = writeln!(
                out,
                "ship batches {}: {} records, {} bytes; {} retries, {} refused, \
                 {} resumes, max lag {} records",
                c.ship_batches,
                c.ship_records,
                c.ship_bytes,
                c.ship_retries,
                c.ship_refusals,
                c.ship_resumes,
                c.ship_lag_max
            );
        }
        if c.admitted > 0 || c.admission_sheds > 0 || c.deadline_aborts > 0 || c.conn_churn > 0 {
            let _ = writeln!(
                out,
                "admission: {} accepted, {} shed, {} deadline aborts, \
                 queue depth high-water {}; conn churn {}",
                c.admitted,
                c.admission_sheds,
                c.deadline_aborts,
                c.admission_depth_max,
                c.conn_churn
            );
        }
        if c.epoch_switches > 0 {
            let _ = writeln!(
                out,
                "epoch switches {}: {} pins drained, {} admissions parked",
                c.epoch_switches, c.epoch_drained_pins, c.epoch_parked_admissions
            );
        }
        if c.recoveries > 0 {
            let _ = writeln!(
                out,
                "recoveries {}: {} replayed, {} compensated, {} discarded, {} records rejected",
                c.recoveries,
                c.recovered_replayed,
                c.recovered_compensated,
                c.recovered_discarded,
                c.rejected_records
            );
        }

        // Top contended resources by wait events in the ring.
        let mut per_resource: HashMap<ResourceId, (u64, u64)> = HashMap::new(); // (waits, hits)
        for ev in &events {
            match *ev {
                Event::LockWait { resource, .. } => {
                    per_resource.entry(resource).or_default().0 += 1;
                }
                Event::InterferenceHit { resource, .. } => {
                    per_resource.entry(resource).or_default().1 += 1;
                }
                _ => {}
            }
        }
        let mut ranked: Vec<(ResourceId, (u64, u64))> = per_resource.into_iter().collect();
        ranked.sort_by_key(|&(r, (w, h))| (std::cmp::Reverse(w + h), r));
        if !ranked.is_empty() {
            let _ = writeln!(out, "top contended resources (ring window):");
            for (r, (waits, hits)) in ranked.iter().take(10) {
                let _ = writeln!(out, "  {r}: {waits} waits, {hits} interference hits");
            }
        }

        // Wait-time histogram.
        let hist = self.wait_histogram();
        if hist.iter().any(|&n| n > 0) {
            let _ = writeln!(out, "wait-time histogram (µs, power-of-two buckets):");
            let last = hist.iter().rposition(|&n| n > 0).unwrap_or(0);
            for (i, &n) in hist.iter().enumerate().take(last + 1) {
                if n > 0 {
                    let lo = if i == 0 { 0 } else { 1u64 << i };
                    let _ = writeln!(out, "  [{lo:>9} ..): {n}");
                }
            }
        }

        // Deadlock traces.
        let cycles: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::Deadlock { .. }))
            .collect();
        if !cycles.is_empty() {
            let _ = writeln!(out, "deadlock cycles (ring window):");
            for ev in cycles.iter().take(20) {
                if let Event::Deadlock {
                    cycle,
                    victims,
                    compensating_requester,
                } = ev
                {
                    let _ = writeln!(
                        out,
                        "  cycle {cycle} -> victims {victims}{}",
                        if *compensating_requester {
                            "  (compensating requester)"
                        } else {
                            ""
                        }
                    );
                }
            }
        }
        out
    }
}

/// Test-facing assertion API over a captured event stream.
#[derive(Debug, Clone)]
pub struct EventLog(pub Vec<Event>);

impl EventLog {
    /// Snapshot a sink's retained events.
    pub fn capture(sink: &EventSink) -> EventLog {
        EventLog(sink.events())
    }

    /// The raw events.
    pub fn events(&self) -> &[Event] {
        &self.0
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.0.iter().filter(|e| pred(e)).count()
    }

    /// True if any event matches.
    pub fn any(&self, pred: impl Fn(&Event) -> bool) -> bool {
        self.0.iter().any(pred)
    }

    /// Paper §3.4 / DESIGN.md §5 property 6 (first half): a compensating
    /// step never waits on an assertional lock — compensation-protection
    /// locks were taken up front precisely so this cannot happen.
    /// Panics with the offending events otherwise.
    pub fn assert_compensation_never_waits_on_assertions(&self) {
        let bad: Vec<&Event> = self
            .0
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::LockWait {
                        compensating: true,
                        blocked_by_assertion: true,
                        ..
                    }
                )
            })
            .collect();
        assert!(
            bad.is_empty(),
            "compensating steps waited on assertional locks: {bad:?}"
        );
    }

    /// Paper §3.4 / DESIGN.md §5 property 6 (second half): a compensating
    /// step is never chosen as a deadlock victim. The degenerate
    /// compensating-vs-compensating retry is the one tolerated exception and
    /// is reported separately by [`Event::Deadlock`]'s
    /// `compensating_requester` flag; here every explicit victim must be
    /// non-compensating.
    pub fn assert_compensation_never_victimized(&self) {
        let bad: Vec<&Event> = self
            .0
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::DeadlockVictim {
                        compensating: true,
                        ..
                    }
                )
            })
            .collect();
        assert!(
            bad.is_empty(),
            "compensating steps chosen as victims: {bad:?}"
        );
    }

    /// DESIGN.md §5 property 3, checked from the event stream: replay
    /// grants/releases and verify no conventional *write* grant ever lands
    /// on a resource carrying another transaction's assertional pin whose
    /// template the writing step interferes with (per `interferes`).
    pub fn assert_writes_respect_assertions(
        &self,
        interferes: impl Fn(StepTypeId, AssertionTemplateId) -> bool,
    ) {
        // Live pins: resource -> [(txn, template)].
        let mut pins: HashMap<ResourceId, Vec<(TxnId, AssertionTemplateId)>> = HashMap::new();
        for ev in &self.0 {
            match *ev {
                Event::AssertionPinned {
                    txn,
                    resource,
                    template,
                } => pins.entry(resource).or_default().push((txn, template)),
                Event::LockReleased {
                    txn,
                    resource,
                    kind,
                } => {
                    if let Some(t) = kind.template() {
                        if let Some(v) = pins.get_mut(&resource) {
                            if let Some(i) = v.iter().position(|&(tx, tp)| tx == txn && tp == t) {
                                v.swap_remove(i);
                            }
                        }
                    }
                }
                Event::LockGranted {
                    txn,
                    resource,
                    kind,
                    step_type,
                    ..
                } if kind.is_write_mode() => {
                    if let Some(v) = pins.get(&resource) {
                        for &(holder, template) in v {
                            assert!(
                                holder == txn || !interferes(step_type, template),
                                "step {step_type:?} of {txn:?} granted a write on \
                                 {resource} carrying interfering pin {template:?} \
                                 held by {holder:?}"
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: ResourceId = ResourceId::Named(7);

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = EventSink::disabled();
        sink.emit(Event::LockRequest {
            txn: t(1),
            resource: R,
            kind: KindRepr::X,
            step_type: StepTypeId(0),
            compensating: false,
        });
        assert_eq!(sink.counters(), CounterSnapshot::default());
        assert!(sink.events().is_empty());
    }

    #[test]
    fn ring_keeps_newest_and_counters_accumulate() {
        let sink = EventSink::enabled(4);
        for i in 0..10u64 {
            sink.emit(Event::LockGranted {
                txn: t(i),
                resource: R,
                kind: KindRepr::S,
                step_type: StepTypeId(0),
                compensating: false,
            });
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        // Oldest-first ring order: the last four grants.
        let ids: Vec<u64> = events
            .iter()
            .map(|e| match e {
                Event::LockGranted { txn, .. } => txn.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(sink.counters().lock_grants, 10);
    }

    #[test]
    fn wait_histogram_buckets_by_log2() {
        let sink = EventSink::enabled(8);
        for &us in &[0u64, 1, 2, 3, 1000, 1500, 1 << 20] {
            sink.emit(Event::WaitEnd {
                txn: t(1),
                resource: R,
                micros: us,
            });
        }
        let h = sink.wait_histogram();
        assert_eq!(h[0], 2, "0 and 1 µs");
        assert_eq!(h[1], 2, "2 and 3 µs");
        assert_eq!(h[9], 1, "512–1023 µs bucket holds 1000");
        assert_eq!(h[10], 1, "1024–2047 µs bucket holds 1500");
        assert_eq!(h[20], 1);
        let c = sink.counters();
        assert_eq!(c.wait_count, 7);
    }

    #[test]
    fn kind_repr_round_trips_templates() {
        let k = KindRepr::assertional(AssertionTemplateId(42));
        assert!(k.is_assertional());
        assert_eq!(k.template(), Some(AssertionTemplateId(42)));
        assert!(!KindRepr::X.is_assertional());
        assert!(KindRepr::X.is_write_mode());
        assert!(!KindRepr::S.is_write_mode());
        assert_eq!(format!("{k}"), "A(42)");
        assert_eq!(format!("{}", KindRepr::SIX), "SIX");
    }

    #[test]
    fn event_log_property_checks() {
        let sink = EventSink::enabled(16);
        sink.emit(Event::AssertionPinned {
            txn: t(1),
            resource: R,
            template: AssertionTemplateId(3),
        });
        // Txn 1's own write on its pinned resource is fine.
        sink.emit(Event::LockGranted {
            txn: t(1),
            resource: R,
            kind: KindRepr::X,
            step_type: StepTypeId(9),
            compensating: false,
        });
        // A non-interfering foreign write is fine too.
        sink.emit(Event::LockGranted {
            txn: t(2),
            resource: R,
            kind: KindRepr::X,
            step_type: StepTypeId(5),
            compensating: false,
        });
        let log = EventLog::capture(&sink);
        log.assert_writes_respect_assertions(|s, _| s == StepTypeId(9));
        log.assert_compensation_never_waits_on_assertions();
        log.assert_compensation_never_victimized();
    }

    #[test]
    #[should_panic(expected = "interfering pin")]
    fn event_log_catches_violating_write() {
        let sink = EventSink::enabled(16);
        sink.emit(Event::AssertionPinned {
            txn: t(1),
            resource: R,
            template: AssertionTemplateId(3),
        });
        sink.emit(Event::LockGranted {
            txn: t(2),
            resource: R,
            kind: KindRepr::X,
            step_type: StepTypeId(9),
            compensating: false,
        });
        EventLog::capture(&sink).assert_writes_respect_assertions(|_, _| true);
    }

    #[test]
    fn lockstat_dump_mentions_contention() {
        let sink = EventSink::enabled(16);
        sink.emit(Event::LockWait {
            txn: t(2),
            resource: R,
            kind: KindRepr::X,
            compensating: false,
            blocked_by_assertion: true,
            conservative: false,
        });
        sink.emit(Event::InterferenceHit {
            txn: t(2),
            step_type: StepTypeId(1),
            template: AssertionTemplateId(0),
            resource: R,
        });
        sink.emit(Event::Deadlock {
            cycle: TxnList::from_slice(&[t(1), t(2)]),
            victims: TxnList::from_slice(&[t(2)]),
            compensating_requester: false,
        });
        sink.emit(Event::WaitEnd {
            txn: t(2),
            resource: R,
            micros: 777,
        });
        let dump = sink.lockstat_dump();
        assert!(dump.contains("top contended resources"));
        assert!(dump.contains("deadlock cycles"));
        assert!(dump.contains("interference hits 1"));
        assert!(dump.contains("wait-time histogram"));
    }
}
