//! Time, for both wall-clock execution and discrete-event simulation.
//!
//! The engine measures real elapsed time; the simulator advances a virtual
//! clock. Both speak [`SimTime`], an integer count of microseconds, so metrics
//! code is shared.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A point in time, in microseconds since an arbitrary origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Build from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    /// Build from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the origin.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A source of time.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> SimTime;
}

/// Wall-clock time relative to clock construction.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        SimTime(self.origin.elapsed().as_micros() as u64)
    }
}

/// A manually advanced clock, shared by reference between a simulator and the
/// components it drives.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the clock forward to `t`. Time never goes backwards; attempts to
    /// do so are ignored (concurrent observers may have raced past).
    pub fn advance_to(&self, t: SimTime) {
        self.now.fetch_max(t.0, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime(self.now.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_arithmetic() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_micros(500);
        assert_eq!((a + b).as_micros(), 3500);
        assert_eq!(a.since(b).as_micros(), 2500);
        assert_eq!(b.since(a), SimTime::ZERO);
        assert_eq!(a.as_millis_f64(), 3.0);
    }

    #[test]
    fn virtual_clock_monotone() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_millis(10));
        assert_eq!(c.now(), SimTime::from_millis(10));
        c.advance_to(SimTime::from_millis(5)); // ignored
        assert_eq!(c.now(), SimTime::from_millis(10));
    }

    #[test]
    fn real_clock_advances() {
        let c = RealClock::new();
        let t0 = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now() > t0);
    }

    #[test]
    fn sim_time_display() {
        assert_eq!(SimTime::from_micros(1500).to_string(), "1.500ms");
    }
}
