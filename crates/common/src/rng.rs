//! Seeded random generation and the skewed distributions the experiments need.
//!
//! Every experiment in this workspace is deterministic given a seed. The
//! hotspot experiments (paper Fig. 2) skew the district-selection distribution
//! with [`Zipf`]; the TPC-C input generator uses [`NuRand`], the benchmark's
//! non-uniform distribution (TPC-C spec clause 2.1.6).

/// A seedable RNG with the handful of helpers the workspace uses.
///
/// Self-contained xoshiro256++ generator (seeded through SplitMix64) so the
/// workspace has no external RNG dependency. Not `Clone` (deliberately):
/// derive independent streams with [`SeededRng::fork`] instead.
#[derive(Debug)]
pub struct SeededRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Deterministic RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SeededRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform `u64` in `[0, span)` via 128-bit multiply reduction.
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.bounded(span + 1) as i64)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.bounded(n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// sampling); used for think times in the closed-loop simulator.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Random alphanumeric string with length uniform in `[lo, hi]`.
    pub fn alnum_string(&mut self, lo: usize, hi: usize) -> String {
        const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        let len = lo + self.bounded((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| CHARS[self.index(CHARS.len())] as char)
            .collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Derive an independent RNG (e.g. one per simulated terminal).
    pub fn fork(&mut self) -> SeededRng {
        SeededRng::new(self.next_u64())
    }
}

/// Zipf-distributed sampler over `{0, 1, …, n-1}` with exponent `theta`.
///
/// `theta = 0` is uniform; larger `theta` concentrates probability on the low
/// indices, which is how the hotspot experiments skew district selection.
/// Sampling is O(log n) by binary search on the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with skew `theta ≥ 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(theta >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw an index in `[0, n)`.
    pub fn sample(&self, rng: &mut SeededRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is a single item.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// The TPC-C `NURand(A, x, y)` non-uniform distribution (clause 2.1.6):
/// `(((rand(0,A) | rand(x,y)) + C) % (y − x + 1)) + x`.
#[derive(Debug, Clone, Copy)]
pub struct NuRand {
    /// The `A` constant: 255 for customer last names, 1023 for customer ids,
    /// 8191 for item ids.
    pub a: i64,
    /// The per-field run-time constant `C`.
    pub c: i64,
}

impl NuRand {
    /// Build with an explicit `C` constant (tests use fixed values; the data
    /// generator draws `C` once per field at population time).
    pub fn new(a: i64, c: i64) -> Self {
        NuRand { a, c }
    }

    /// Draw a value in `[x, y]`.
    pub fn sample(&self, rng: &mut SeededRng, x: i64, y: i64) -> i64 {
        let lhs = rng.int_range(0, self.a);
        let rhs = rng.int_range(x, y);
        (((lhs | rhs) + self.c) % (y - x + 1)) + x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.int_range(0, 1000), b.int_range(0, 1000));
        }
    }

    #[test]
    fn int_range_inclusive_bounds() {
        let mut rng = SeededRng::new(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = rng.int_range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut rng = SeededRng::new(7);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(10.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SeededRng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_to_low_indices() {
        let z = Zipf::new(10, 1.5);
        let mut rng = SeededRng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] * 5, "counts {counts:?}");
        assert!(counts[0] > 6000, "counts {counts:?}");
    }

    #[test]
    fn zipf_samples_in_domain() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SeededRng::new(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn nurand_in_range() {
        let nr = NuRand::new(1023, 77);
        let mut rng = SeededRng::new(5);
        for _ in 0..5000 {
            let v = nr.sample(&mut rng, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        // The OR in NURand biases each of the low 8 bits toward one
        // (P(bit)=0.75), so values whose low byte is 0xFF occur with
        // probability ≈ 0.75^8 ≈ 0.1; a uniform draw over [0,999] would give
        // 3/1000 = 0.003.
        let nr = NuRand::new(255, 0);
        let mut rng = SeededRng::new(11);
        let n = 30_000;
        let all_ones = (0..n)
            .filter(|_| nr.sample(&mut rng, 0, 999) % 256 == 255)
            .count();
        let frac = all_ones as f64 / n as f64;
        assert!(frac > 0.05, "0xFF-low-byte fraction {frac}");
    }

    #[test]
    fn alnum_string_length() {
        let mut rng = SeededRng::new(2);
        for _ in 0..100 {
            let s = rng.alnum_string(8, 16);
            assert!((8..=16).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(4);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = SeededRng::new(6);
        let mut a = root.fork();
        let mut b = root.fork();
        let va: Vec<i64> = (0..10).map(|_| a.int_range(0, 1_000_000)).collect();
        let vb: Vec<i64> = (0..10).map(|_| b.int_range(0, 1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
