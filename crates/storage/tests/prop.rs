//! Model-based property tests: a `Table` must agree with a simple
//! `HashMap`-backed model under arbitrary operation sequences, and undo must
//! be a perfect inverse.

use acc_common::{Decimal, TableId, Value};
use acc_storage::{Key, Predicate, Row, Table, TableSchema, UndoRecord};
use acc_storage::ColumnType;
use proptest::prelude::*;
use std::collections::HashMap;

fn schema() -> TableSchema {
    let mut s = TableSchema::builder("t")
        .column("k", ColumnType::Int)
        .column("a", ColumnType::Int)
        .column("b", ColumnType::Int)
        .key(&["k"])
        .index(&["a"])
        .rows_per_page(3)
        .build();
    s.id = TableId(0);
    s
}

fn row(k: i64, a: i64, b: i64) -> Row {
    Row(vec![Value::Int(k), Value::Int(a), Value::Int(b)])
}

#[derive(Debug, Clone)]
enum Op {
    Insert { k: i64, a: i64, b: i64 },
    UpdateB { k: i64, b: i64 },
    Delete { k: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..12, 0i64..4, 0i64..100).prop_map(|(k, a, b)| Op::Insert { k, a, b }),
        (0i64..12, 0i64..100).prop_map(|(k, b)| Op::UpdateB { k, b }),
        (0i64..12).prop_map(|k| Op::Delete { k }),
    ]
}

fn assert_matches_model(t: &Table, model: &HashMap<i64, (i64, i64)>) {
    assert_eq!(t.len(), model.len());
    for (&k, &(a, b)) in model {
        let (_, r) = t
            .get(&Key::ints(&[k]))
            .unwrap_or_else(|| panic!("model has {k}, table does not"));
        assert_eq!((r.int(1), r.int(2)), (a, b), "row {k} diverged");
    }
    // Secondary index agrees: every a-value's slot set matches the model.
    for a in 0..4i64 {
        let via_index = t.lookup_secondary(0, &Key::ints(&[a])).len();
        let via_model = model.values().filter(|(ma, _)| *ma == a).count();
        assert_eq!(via_index, via_model, "secondary index diverged for a={a}");
    }
    // Full scans agree and are key-ordered.
    let keys: Vec<i64> = t.scan(&Predicate::True).map(|(_, r)| r.int(0)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "scan not in key order");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn table_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut t = Table::new(schema());
        let mut model: HashMap<i64, (i64, i64)> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { k, a, b } => {
                    let res = t.insert(row(k, a, b));
                    match model.entry(k) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert!(res.is_err(), "duplicate insert of {k} succeeded");
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            prop_assert!(res.is_ok());
                            e.insert((a, b));
                        }
                    }
                }
                Op::UpdateB { k, b } => {
                    match t.slot_of(&Key::ints(&[k])) {
                        Some(slot) => {
                            t.update_with(slot, |r| {
                                r.set(2, Value::Int(b));
                            })
                            .expect("update of live slot");
                            model.get_mut(&k).expect("model row").1 = b;
                        }
                        None => prop_assert!(!model.contains_key(&k)),
                    }
                }
                Op::Delete { k } => {
                    let res = t.delete_by_key(&Key::ints(&[k]));
                    prop_assert_eq!(res.is_ok(), model.remove(&k).is_some());
                }
            }
            assert_matches_model(&t, &model);
        }
    }

    #[test]
    fn undo_stack_is_perfect_inverse(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut t = Table::new(schema());
        // Seed some rows so updates/deletes bite.
        for k in 0..6 {
            t.insert(row(k, k % 4, 0)).expect("seed row");
        }
        let snapshot: Vec<(i64, i64, i64)> = t
            .iter()
            .map(|(_, r)| (r.int(0), r.int(1), r.int(2)))
            .collect();

        let mut undos: Vec<UndoRecord> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { k, a, b } => {
                    if let Ok((_, u)) = t.insert(row(k, a, b)) {
                        undos.push(u);
                    }
                }
                Op::UpdateB { k, b } => {
                    if let Some(slot) = t.slot_of(&Key::ints(&[k])) {
                        undos.push(
                            t.update_with(slot, |r| {
                                r.set(2, Value::Int(b));
                            })
                            .expect("update live slot"),
                        );
                    }
                }
                Op::Delete { k } => {
                    if let Ok((_, u)) = t.delete_by_key(&Key::ints(&[k])) {
                        undos.push(u);
                    }
                }
            }
        }
        for u in undos.iter().rev() {
            t.apply_undo(u).expect("undo applies");
        }
        let restored: Vec<(i64, i64, i64)> = t
            .iter()
            .map(|(_, r)| (r.int(0), r.int(1), r.int(2)))
            .collect();
        prop_assert_eq!(restored, snapshot);
    }
}

/// The B-tree prefix scan relies on a lexicographic-contiguity invariant:
/// every key ≥ the prefix that does not extend it sorts after every key
/// that does. Verify `scan_prefix` against a brute-force filter over random
/// mixed-type compound keys.
mod prefix_contiguity {
    use super::*;

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            (-3i64..3).prop_map(Value::Int),
            "[ab]{0,2}".prop_map(Value::Str),
            (-2i64..2).prop_map(|u| Value::Decimal(Decimal::from_units(u))),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    fn key_strategy() -> impl Strategy<Value = Vec<Value>> {
        proptest::collection::vec(value_strategy(), 2..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn scan_prefix_equals_brute_force(
            keys in proptest::collection::vec(key_strategy(), 1..40),
            prefix in proptest::collection::vec(value_strategy(), 1..3),
        ) {
            // A table keyed on two "any-type" columns: widen the schema to
            // the max arity and pad keys with Int(0).
            let mut schema = TableSchema::builder("k")
                .column("k0", ColumnType::Int)
                .column("k1", ColumnType::Int)
                .column("k2", ColumnType::Int)
                .key(&["k0", "k1", "k2"])
                .build();
            schema.id = TableId(0);
            // Type checking would reject mixed types in Int columns; build
            // the pure key set instead and test Key ordering directly via a
            // BTreeMap, which is exactly what Table::scan_prefix walks.
            use std::collections::BTreeMap;
            let mut tree: BTreeMap<Key, usize> = BTreeMap::new();
            for (i, k) in keys.iter().enumerate() {
                tree.insert(Key(k.clone()), i);
            }
            let p = Key(prefix);
            let via_range: Vec<&Key> = tree
                .range(p.clone()..)
                .take_while(|(k, _)| k.starts_with(&p))
                .map(|(k, _)| k)
                .collect();
            let via_filter: Vec<&Key> =
                tree.keys().filter(|k| k.starts_with(&p)).collect();
            prop_assert_eq!(via_range, via_filter);
            let _ = schema;
        }
    }
}
