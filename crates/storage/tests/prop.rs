//! Model-based randomized tests (seeded, dependency-free): a `Table` must
//! agree with a simple `HashMap`-backed model under arbitrary operation
//! sequences, and undo must be a perfect inverse.

use acc_common::{Decimal, SeededRng, TableId, Value};
use acc_storage::ColumnType;
use acc_storage::{Key, Predicate, Row, Table, TableSchema, UndoRecord};
use std::collections::HashMap;

fn schema() -> TableSchema {
    let mut s = TableSchema::builder("t")
        .column("k", ColumnType::Int)
        .column("a", ColumnType::Int)
        .column("b", ColumnType::Int)
        .key(&["k"])
        .index(&["a"])
        .rows_per_page(3)
        .build();
    s.id = TableId(0);
    s
}

fn row(k: i64, a: i64, b: i64) -> Row {
    Row(vec![Value::Int(k), Value::Int(a), Value::Int(b)])
}

#[derive(Debug, Clone)]
enum Op {
    Insert { k: i64, a: i64, b: i64 },
    UpdateB { k: i64, b: i64 },
    Delete { k: i64 },
}

fn random_op(rng: &mut SeededRng) -> Op {
    match rng.index(3) {
        0 => Op::Insert {
            k: rng.int_range(0, 11),
            a: rng.int_range(0, 3),
            b: rng.int_range(0, 99),
        },
        1 => Op::UpdateB {
            k: rng.int_range(0, 11),
            b: rng.int_range(0, 99),
        },
        _ => Op::Delete {
            k: rng.int_range(0, 11),
        },
    }
}

fn random_ops(rng: &mut SeededRng, lo: usize, hi: usize) -> Vec<Op> {
    let n = lo + rng.index(hi - lo + 1);
    (0..n).map(|_| random_op(rng)).collect()
}

fn assert_matches_model(t: &Table, model: &HashMap<i64, (i64, i64)>) {
    assert_eq!(t.len(), model.len());
    for (&k, &(a, b)) in model {
        let (_, r) = t
            .get(&Key::ints(&[k]))
            .unwrap_or_else(|| panic!("model has {k}, table does not"));
        assert_eq!((r.int(1), r.int(2)), (a, b), "row {k} diverged");
    }
    // Secondary index agrees: every a-value's slot set matches the model.
    for a in 0..4i64 {
        let via_index = t.lookup_secondary(0, &Key::ints(&[a])).len();
        let via_model = model.values().filter(|(ma, _)| *ma == a).count();
        assert_eq!(via_index, via_model, "secondary index diverged for a={a}");
    }
    // Full scans agree and are key-ordered.
    let keys: Vec<i64> = t.scan(&Predicate::True).map(|(_, r)| r.int(0)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "scan not in key order");
}

#[test]
fn table_matches_model() {
    let mut rng = SeededRng::new(0x7ab1e);
    for _case in 0..256 {
        let ops = random_ops(&mut rng, 1, 79);
        let t = Table::new(schema());
        let mut model: HashMap<i64, (i64, i64)> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { k, a, b } => {
                    let res = t.insert(row(k, a, b));
                    match model.entry(k) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            assert!(res.is_err(), "duplicate insert of {k} succeeded");
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            assert!(res.is_ok());
                            e.insert((a, b));
                        }
                    }
                }
                Op::UpdateB { k, b } => match t.slot_of(&Key::ints(&[k])) {
                    Some(slot) => {
                        t.update_with(slot, |r| {
                            r.set(2, Value::Int(b));
                        })
                        .expect("update of live slot");
                        model.get_mut(&k).expect("model row").1 = b;
                    }
                    None => assert!(!model.contains_key(&k)),
                },
                Op::Delete { k } => {
                    let res = t.delete_by_key(&Key::ints(&[k]));
                    assert_eq!(res.is_ok(), model.remove(&k).is_some());
                }
            }
            assert_matches_model(&t, &model);
        }
    }
}

#[test]
fn undo_stack_is_perfect_inverse() {
    let mut rng = SeededRng::new(0x0d0);
    for _case in 0..256 {
        let ops = random_ops(&mut rng, 1, 59);
        let t = Table::new(schema());
        // Seed some rows so updates/deletes bite.
        for k in 0..6 {
            t.insert(row(k, k % 4, 0)).expect("seed row");
        }
        let snapshot: Vec<(i64, i64, i64)> = t
            .iter()
            .map(|(_, r)| (r.int(0), r.int(1), r.int(2)))
            .collect();

        let mut undos: Vec<UndoRecord> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { k, a, b } => {
                    if let Ok((_, u)) = t.insert(row(k, a, b)) {
                        undos.push(u);
                    }
                }
                Op::UpdateB { k, b } => {
                    if let Some(slot) = t.slot_of(&Key::ints(&[k])) {
                        undos.push(
                            t.update_with(slot, |r| {
                                r.set(2, Value::Int(b));
                            })
                            .expect("update live slot"),
                        );
                    }
                }
                Op::Delete { k } => {
                    if let Ok((_, u)) = t.delete_by_key(&Key::ints(&[k])) {
                        undos.push(u);
                    }
                }
            }
        }
        for u in undos.iter().rev() {
            t.apply_undo(u).expect("undo applies");
        }
        let restored: Vec<(i64, i64, i64)> = t
            .iter()
            .map(|(_, r)| (r.int(0), r.int(1), r.int(2)))
            .collect();
        assert_eq!(restored, snapshot);
    }
}

/// The B-tree prefix scan relies on a lexicographic-contiguity invariant:
/// every key ≥ the prefix that does not extend it sorts after every key
/// that does. Verify `scan_prefix` against a brute-force filter over random
/// mixed-type compound keys.
mod prefix_contiguity {
    use super::*;
    use std::collections::BTreeMap;

    fn random_value(rng: &mut SeededRng) -> Value {
        match rng.index(4) {
            0 => Value::Int(rng.int_range(-3, 2)),
            1 => {
                let n = rng.index(3);
                Value::Str(
                    (0..n)
                        .map(|_| if rng.chance(0.5) { 'a' } else { 'b' })
                        .collect(),
                )
            }
            2 => Value::Decimal(Decimal::from_units(rng.int_range(-2, 1))),
            _ => Value::Bool(rng.chance(0.5)),
        }
    }

    fn random_key(rng: &mut SeededRng, lo: usize, hi: usize) -> Vec<Value> {
        let n = lo + rng.index(hi - lo + 1);
        (0..n).map(|_| random_value(rng)).collect()
    }

    #[test]
    fn scan_prefix_equals_brute_force() {
        let mut rng = SeededRng::new(0xbee);
        for _case in 0..512 {
            let n_keys = 1 + rng.index(39);
            let keys: Vec<Vec<Value>> = (0..n_keys).map(|_| random_key(&mut rng, 2, 3)).collect();
            let prefix = random_key(&mut rng, 1, 2);
            // Key ordering is what Table::scan_prefix walks; test it directly
            // via a BTreeMap of pure keys (type checking would reject mixed
            // types in Int columns of a real table).
            let mut tree: BTreeMap<Key, usize> = BTreeMap::new();
            for (i, k) in keys.iter().enumerate() {
                tree.insert(Key(k.clone()), i);
            }
            let p = Key(prefix);
            let via_range: Vec<&Key> = tree
                .range(p.clone()..)
                .take_while(|(k, _)| k.starts_with(&p))
                .map(|(k, _)| k)
                .collect();
            let via_filter: Vec<&Key> = tree.keys().filter(|k| k.starts_with(&p)).collect();
            assert_eq!(via_range, via_filter);
        }
    }
}
