//! Model-based property tests for the paged B-tree storage (seeded,
//! dependency-free): a `Table` driven through random operation sequences
//! must agree with a `BTreeMap` oracle — including phases sized to force
//! page splits and merges — and version chains must survive the page
//! relocations those structure changes cause.

use acc_common::{SeededRng, TableId, TxnId, Value};
use acc_storage::{
    ColumnType, Key, NoCommits, Row, Table, TableSchema, VersionedUpdate, Visibility,
};
use std::collections::BTreeMap;

fn schema() -> TableSchema {
    let mut s = TableSchema::builder("t")
        .column("k", ColumnType::Int)
        .column("a", ColumnType::Int)
        .column("b", ColumnType::Int)
        .key(&["k"])
        .rows_per_page(2) // leaf capacity 2: splits and merges constantly
        .build();
    s.id = TableId(0);
    s
}

fn row(k: i64, a: i64, b: i64) -> Row {
    Row(vec![Value::Int(k), Value::Int(a), Value::Int(b)])
}

fn assert_matches_oracle(t: &Table, oracle: &BTreeMap<i64, (i64, i64)>, rng: &mut SeededRng) {
    assert_eq!(t.len(), oracle.len());
    // Full iteration agrees, in key order.
    let got: Vec<(i64, i64, i64)> = t
        .iter()
        .map(|(_, r)| (r.int(0), r.int(1), r.int(2)))
        .collect();
    let want: Vec<(i64, i64, i64)> = oracle.iter().map(|(&k, &(a, b))| (k, a, b)).collect();
    assert_eq!(got, want, "iter() diverged from oracle");
    // Random point reads.
    for _ in 0..4 {
        let k = rng.int_range(0, 59);
        assert_eq!(
            t.get(&Key::ints(&[k])).map(|(_, r)| (r.int(1), r.int(2))),
            oracle.get(&k).copied(),
            "get({k}) diverged"
        );
    }
    // Random range scan vs the oracle's range.
    let lo = rng.int_range(0, 59);
    let hi = lo + rng.int_range(0, 19);
    let got: Vec<i64> = t
        .scan_range(&Key::ints(&[lo]), &Key::ints(&[hi]))
        .into_iter()
        .map(|(_, r)| r.int(0))
        .collect();
    let want: Vec<i64> = oracle.range(lo..hi).map(|(&k, _)| k).collect();
    assert_eq!(got, want, "scan_range({lo}..{hi}) diverged");
    // first_in_prefix is the tree's early-terminating "min in range".
    assert_eq!(
        t.first_in_prefix(&Key(Vec::new())).map(|(_, r)| r.int(0)),
        oracle.keys().next().copied(),
        "first_in_prefix diverged"
    );
}

#[test]
fn paged_table_matches_btreemap_oracle() {
    let mut rng = SeededRng::new(0x9a9ed);
    for case in 0..48 {
        let t = Table::new(schema());
        let mut oracle: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        // Alternating grow-heavy and shrink-heavy phases so the tree both
        // deepens (splits) and collapses back (borrows/merges/frees).
        for phase in 0..4 {
            let p_insert = if phase % 2 == 0 { 0.8 } else { 0.15 };
            for _ in 0..60 {
                let k = rng.int_range(0, 59);
                if rng.chance(p_insert) {
                    let (a, b) = (rng.int_range(0, 9), rng.int_range(0, 99));
                    let res = t.insert(row(k, a, b));
                    if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(k) {
                        res.expect("fresh insert");
                        e.insert((a, b));
                    } else {
                        assert!(res.is_err(), "duplicate insert of {k} succeeded");
                    }
                } else if rng.chance(0.5) {
                    let res = t.delete_by_key(&Key::ints(&[k]));
                    assert_eq!(res.is_ok(), oracle.remove(&k).is_some());
                } else if let Some(slot) = t.slot_of(&Key::ints(&[k])) {
                    let b = rng.int_range(0, 99);
                    t.update_with(slot, |r| {
                        r.set(2, Value::Int(b));
                    })
                    .expect("update live slot");
                    oracle.get_mut(&k).expect("oracle row").1 = b;
                }
            }
            assert_matches_oracle(&t, &oracle, &mut rng);
        }
        let c = t.pager_counters();
        assert!(c.splits > 0, "case {case}: no splits forced");
        if case == 0 {
            // At least the first (deterministic) case must also exercise
            // the shrink paths end to end.
            assert!(c.merges > 0, "no merges forced");
            assert!(c.page_frees > 0, "no pages freed");
        }
    }
}

/// Drive versioned mutations (the transaction layer's combined ops) while
/// churning *other* keys hard enough to split and merge the leaves the
/// chains live on. Chains are keyed by primary key, so every relocation
/// must carry them along: `read_at` at historical views must keep
/// reproducing the exact committed history recorded by the oracle.
#[test]
fn version_chains_survive_page_relocation() {
    let mut rng = SeededRng::new(0xc4a1);
    for _case in 0..24 {
        let t = Table::new(schema());
        // Committed history per key: (commit_lsn, state after the commit).
        type History = BTreeMap<i64, Vec<(u64, Option<(i64, i64)>)>>;
        let mut history: History = BTreeMap::new();
        let mut lsn = 0u64;
        for next_txn in 1u64..=240 {
            // Physical churn in a disjoint key range (no chains): these
            // entries come and go for real, so the leaves holding the
            // chained keys keep splitting and merging underneath them.
            for _ in 0..2 {
                let c = rng.int_range(100, 159);
                if t.slot_of(&Key::ints(&[c])).is_some() {
                    t.delete_by_key(&Key::ints(&[c])).expect("churn delete");
                } else {
                    t.insert(row(c, 0, 0)).expect("churn insert");
                }
            }
            let k = rng.int_range(0, 23);
            let txn = TxnId(next_txn);
            lsn += 1;
            let slot = t.slot_of(&Key::ints(&[k]));
            let applied = match slot {
                None => {
                    let (a, b) = (rng.int_range(0, 9), rng.int_range(0, 99));
                    t.insert_versioned(row(k, a, b), txn, t.peek_next_slot())
                        .expect("insert")
                        .expect("predicted slot is current");
                    Some(Some((a, b)))
                }
                Some(slot) if rng.chance(0.4) => {
                    let (_, before) = t
                        .delete_versioned(&Key::ints(&[k]), slot, txn)
                        .expect("delete")
                        .expect("slot is current");
                    assert_eq!(before.int(0), k);
                    Some(None)
                }
                Some(slot) => {
                    let b = rng.int_range(0, 99);
                    match t
                        .update_versioned(&Key::ints(&[k]), slot, txn, |r| {
                            r.set(2, Value::Int(b));
                        })
                        .expect("update")
                    {
                        VersionedUpdate::Applied { after, .. } => {
                            Some(Some((after.int(1), after.int(2))))
                        }
                        VersionedUpdate::Retry => panic!("single-threaded retry"),
                    }
                }
            };
            if let Some(state) = applied {
                assert_eq!(t.finalize_versions(txn, lsn), 1);
                history.entry(k).or_default().push((lsn, state));
            }
        }
        assert!(
            t.pager_counters().splits > 0 && t.pager_counters().merges > 0,
            "chains never relocated: splits={} merges={}",
            t.pager_counters().splits,
            t.pager_counters().merges
        );
        // Every key's committed history must reconstruct at every view —
        // before its first commit, at each commit, and between them.
        let reader = TxnId(u64::MAX);
        for (&k, commits) in &history {
            let key = Key::ints(&[k]);
            for view in 0..=lsn {
                let expect = commits
                    .iter()
                    .rev()
                    .find(|(c, _)| *c <= view)
                    .and_then(|(_, s)| *s)
                    .map(|(a, b)| row(k, a, b));
                assert_eq!(
                    t.read_at(&key, view, reader, &NoCommits),
                    Visibility::Visible(expect),
                    "key {k} view {view} diverged from history"
                );
            }
        }
        // Pruning at the frontier retires every chain and settled
        // tombstone, and the current state still reads back.
        t.prune_versions(lsn);
        assert_eq!(t.n_version_chains(), 0);
        for (&k, commits) in &history {
            let expect = commits
                .last()
                .and_then(|(_, s)| *s)
                .map(|(a, b)| row(k, a, b));
            assert_eq!(
                t.read_at(&Key::ints(&[k]), lsn, reader, &NoCommits),
                Visibility::Visible(expect),
                "key {k} diverged after prune"
            );
        }
    }
}
