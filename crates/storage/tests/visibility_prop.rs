//! Model-based randomized tests for the MVCC-lite visibility rule
//! (`crate::version`): under random interleavings of versioned transactions,
//! a coordination-free read at view `L` must equal the committed state after
//! replaying exactly the commits with LSN <= L — and pruning at a low
//! watermark must never change any read at or after it.
//!
//! The harness mirrors what the transaction layer does (`step.rs` /
//! `runner.rs`): mutate the table, push a pending version alongside, then
//! finalize every pending entry at the commit (or abort) LSN. Aborts apply
//! physical undo first, exactly like the live rollback path. A key-level
//! lock map stands in for the lock manager so two live transactions never
//! write the same row.
//!
//! Commits randomly defer their physical finalization behind a published
//! commit LSN (the runner's commit-publication window between the `Commit`
//! append and `finalize_versions`): reads through the publication resolver
//! must be indistinguishable from reads over finalized chains.

use acc_common::{SeededRng, TableId, TxnId, Value};
use acc_storage::{
    ColumnType, CommitResolver, Key, NoCommits, Row, Table, TableSchema, UndoRecord, Visibility,
};
use std::collections::HashMap;

fn schema() -> TableSchema {
    let mut s = TableSchema::builder("t")
        .column("k", ColumnType::Int)
        .column("a", ColumnType::Int)
        .column("b", ColumnType::Int)
        .key(&["k"])
        .index(&["a"])
        .rows_per_page(3)
        .build();
    s.id = TableId(0);
    s
}

fn row(k: i64, a: i64, b: i64) -> Row {
    Row(vec![Value::Int(k), Value::Int(a), Value::Int(b)])
}

const KEYS: i64 = 10;
/// A fresh reader id no writer ever uses.
const READER: TxnId = TxnId(999_999);

/// Committed state: key -> (a, b).
type Model = HashMap<i64, (i64, i64)>;

/// The model state visible at `view`: the last snapshot with LSN <= view.
fn model_at(snapshots: &[(u64, Model)], view: u64) -> &Model {
    &snapshots
        .iter()
        .rev()
        .find(|(lsn, _)| *lsn <= view)
        .expect("snapshot 0 always present")
        .1
}

/// One live transaction and everything needed to finish it.
struct Active {
    id: TxnId,
    will_abort: bool,
    /// Own writes: key -> Some(new value) or None (deleted).
    overlay: HashMap<i64, Option<(i64, i64)>>,
    undos: Vec<UndoRecord>,
}

impl Active {
    /// Apply one random op, mirroring the step layer's mutate-then-push
    /// convention. Keys locked by another live transaction are skipped.
    fn apply_random_op(
        &mut self,
        t: &Table,
        committed: &Model,
        locks: &mut HashMap<i64, TxnId>,
        rng: &mut SeededRng,
    ) {
        let k = rng.int_range(0, KEYS - 1);
        if locks.get(&k).is_some_and(|&owner| owner != self.id) {
            return;
        }
        let key = Key::ints(&[k]);
        let current = match self.overlay.get(&k) {
            Some(v) => *v,
            None => committed.get(&k).copied(),
        };
        match rng.index(3) {
            0 => {
                // Insert (possibly reviving a deleted key).
                if current.is_some() {
                    return;
                }
                let (a, b) = (rng.int_range(0, 2), rng.int_range(0, 99));
                let (slot, undo) = t.insert(row(k, a, b)).expect("insert of absent key");
                t.push_version(slot, self.id, None);
                self.undos.push(undo);
                self.overlay.insert(k, Some((a, b)));
                locks.insert(k, self.id);
            }
            1 => {
                // Update b in place.
                let Some((a, _)) = current else { return };
                let slot = t.slot_of(&key).expect("model row is live");
                let before = t.row(slot);
                let b = rng.int_range(0, 99);
                let undo = t
                    .update_with(slot, |r| {
                        r.set(2, Value::Int(b));
                    })
                    .expect("update of live slot");
                t.push_version(slot, self.id, before);
                self.undos.push(undo);
                self.overlay.insert(k, Some((a, b)));
                locks.insert(k, self.id);
            }
            _ => {
                // Delete. Restricted to committing transactions: an aborted
                // delete's freed slot could be reused by a concurrent insert
                // before the undo re-inserts it, which the real engine's
                // lock protocol prevents but this key-level harness cannot.
                if current.is_none() || self.will_abort {
                    return;
                }
                let before = t.get(&key).map(|(_, r)| r).expect("live row");
                let (slot, undo) = t.delete_by_key(&key).expect("delete of live key");
                t.push_delete_version(key, slot, self.id, before);
                self.undos.push(undo);
                self.overlay.insert(k, None);
                locks.insert(k, self.id);
            }
        }
    }

    /// Commit or abort at the next LSN, exactly as `runner.rs` does:
    /// physical undo (abort only) leaves the chain alone, then every pending
    /// entry finalizes at the end record's LSN. When `defer_into` is `Some`,
    /// a committing transaction instead *defers* the physical finalization,
    /// leaving its entries Pending behind a commit LSN published there —
    /// the runner's state between the `Commit` append and
    /// `finalize_versions`.
    fn finish(
        self,
        t: &Table,
        committed: &mut Model,
        snapshots: &mut Vec<(u64, Model)>,
        locks: &mut HashMap<i64, TxnId>,
        next_lsn: &mut u64,
        defer_into: Option<&mut HashMap<TxnId, u64>>,
    ) {
        let lsn = *next_lsn;
        *next_lsn += 1;
        if self.will_abort {
            for undo in self.undos.iter().rev() {
                t.apply_undo(undo).expect("undo applies");
            }
        } else {
            for (k, v) in &self.overlay {
                match v {
                    Some(ab) => committed.insert(*k, *ab),
                    None => committed.remove(k),
                };
            }
        }
        match defer_into {
            Some(published) if !self.will_abort => {
                published.insert(self.id, lsn);
            }
            _ => {
                t.finalize_versions(self.id, lsn);
            }
        }
        snapshots.push((lsn, committed.clone()));
        locks.retain(|_, owner| *owner != self.id);
    }
}

/// Every view from `lo` to the newest snapshot reads exactly its replay
/// prefix, through all three coordination-free read paths.
fn assert_all_views(
    t: &Table,
    snapshots: &[(u64, Model)],
    lo: u64,
    commits: &dyn CommitResolver,
) -> usize {
    let max_lsn = snapshots.last().expect("snapshots nonempty").0;
    let mut secondary_hits = 0;
    for view in lo..=max_lsn {
        let model = model_at(snapshots, view);
        // Point reads, including keys currently absent.
        for k in 0..KEYS {
            let got = match t.read_at(&Key::ints(&[k]), view, READER, commits) {
                Visibility::Visible(img) => img.map(|r| (r.int(1), r.int(2))),
                Visibility::Tainted => panic!("foreign reader tainted on k={k} view={view}"),
            };
            assert_eq!(got, model.get(&k).copied(), "read_at k={k} view={view}");
        }
        // Full prefix scan: complete, in key order, nothing extra.
        let scanned: Vec<(i64, i64, i64)> = t
            .scan_prefix_at(&Key(Vec::new()), view, READER, commits)
            .expect("foreign scan never taints here")
            .iter()
            .map(|r| (r.int(0), r.int(1), r.int(2)))
            .collect();
        let mut want: Vec<(i64, i64, i64)> = model.iter().map(|(&k, &(a, b))| (k, a, b)).collect();
        want.sort_unstable();
        assert_eq!(scanned, want, "scan_prefix_at view={view}");
        // Secondary lookups may fall back (None) when a revived key changed
        // its indexed column; when they answer, they must answer exactly.
        for a in 0..3i64 {
            if let Some(rows) = t.lookup_secondary_at(0, &Key::ints(&[a]), view, READER, commits) {
                secondary_hits += 1;
                let mut got: Vec<(i64, i64)> = rows.iter().map(|r| (r.int(0), r.int(2))).collect();
                got.sort_unstable();
                let mut want: Vec<(i64, i64)> = model
                    .iter()
                    .filter(|(_, (ma, _))| *ma == a)
                    .map(|(&k, &(_, b))| (k, b))
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "lookup_secondary_at a={a} view={view}");
            }
        }
    }
    secondary_hits
}

#[test]
fn read_at_lsn_equals_replayed_prefix() {
    let mut rng = SeededRng::new(0x5ee_a11);
    let mut total_secondary_hits = 0;
    for _case in 0..48 {
        let t = Table::new(schema());
        let mut committed: Model = HashMap::new();
        let mut snapshots: Vec<(u64, Model)> = vec![(0, committed.clone())];
        let mut locks: HashMap<i64, TxnId> = HashMap::new();
        let mut active: Vec<Active> = Vec::new();
        // Commits with a published LSN whose chains are still Pending.
        let mut published: HashMap<TxnId, u64> = HashMap::new();
        let mut next_txn = 1u64;
        let mut next_lsn = 1u64;

        for _event in 0..60 {
            let roll = rng.index(10);
            if active.is_empty() || (roll < 3 && active.len() < 3) {
                active.push(Active {
                    id: TxnId(next_txn),
                    will_abort: rng.chance(0.25),
                    overlay: HashMap::new(),
                    undos: Vec::new(),
                });
                next_txn += 1;
            } else if roll < 8 {
                let i = rng.index(active.len());
                active[i].apply_random_op(&t, &committed, &mut locks, &mut rng);
            } else {
                let i = rng.index(active.len());
                let a = active.swap_remove(i);
                let defer = rng.chance(0.5);
                a.finish(
                    &t,
                    &mut committed,
                    &mut snapshots,
                    &mut locks,
                    &mut next_lsn,
                    defer.then_some(&mut published),
                );
                // Reads stay exact even while other transactions are still
                // pending: unpublished entries unwind to before-images, and
                // published-but-unfinalized ones resolve at their LSN.
                total_secondary_hits += assert_all_views(&t, &snapshots, 0, &published);
                // A transaction always reads its own writes through the
                // lock path, never through versions: own pending taints.
                for live in &active {
                    for &k in live.overlay.keys() {
                        assert_eq!(
                            t.read_at(&Key::ints(&[k]), next_lsn, live.id, &published),
                            Visibility::Tainted,
                            "own pending write must taint k={k}"
                        );
                    }
                }
                // Randomly retire some deferred finalizations — an invisible
                // physical rewrite: all views answer identically after it.
                if !published.is_empty() && rng.chance(0.5) {
                    let ids: Vec<TxnId> = published.keys().copied().collect();
                    let id = ids[rng.index(ids.len())];
                    let lsn = published.remove(&id).expect("just listed");
                    t.finalize_versions(id, lsn);
                    total_secondary_hits += assert_all_views(&t, &snapshots, 0, &published);
                }
            }
        }
        for a in active.drain(..) {
            a.finish(
                &t,
                &mut committed,
                &mut snapshots,
                &mut locks,
                &mut next_lsn,
                None,
            );
        }
        total_secondary_hits += assert_all_views(&t, &snapshots, 0, &published);
        // Draining the publication map must change nothing either.
        for (id, lsn) in published.drain() {
            t.finalize_versions(id, lsn);
        }
        total_secondary_hits += assert_all_views(&t, &snapshots, 0, &NoCommits);

        // Pruning at a random watermark is invisible to every view >= it...
        let max_lsn = next_lsn - 1;
        let w = rng.int_range(0, max_lsn as i64) as u64;
        let before_chains = t.n_version_chains();
        t.prune_versions(w);
        assert!(t.n_version_chains() <= before_chains);
        assert_all_views(&t, &snapshots, w, &NoCommits);
        // ...and a full prune still answers the newest view exactly.
        t.prune_versions(max_lsn);
        assert_all_views(&t, &snapshots, max_lsn, &NoCommits);
    }
    assert!(
        total_secondary_hits > 0,
        "secondary fast path never answered — precheck is vacuously conservative"
    );
}

/// Re-inserting a deleted key must revive its tombstone chain: a reader at
/// a view older than the delete sees the pre-delete image, one between the
/// delete and the re-insert sees nothing, and a current reader sees the new
/// row — all through the slot's chain.
#[test]
fn reinsert_revives_tombstone_history() {
    let t = Table::new(schema());
    let key = Key::ints(&[7]);

    let (slot, _) = t.insert(row(7, 1, 10)).expect("insert");
    t.push_version(slot, TxnId(1), None);
    t.finalize_versions(TxnId(1), 5);

    let before = t.get(&key).map(|(_, r)| r).expect("live row");
    let (slot, _) = t.delete_by_key(&key).expect("delete");
    t.push_delete_version(key.clone(), slot, TxnId(2), before);
    t.finalize_versions(TxnId(2), 10);

    let (slot, _) = t.insert(row(7, 2, 20)).expect("reinsert");
    t.push_version(slot, TxnId(3), None);
    t.finalize_versions(TxnId(3), 15);

    fn img(t: &Table, key: &Key, view: u64) -> Option<(i64, i64)> {
        match t.read_at(key, view, READER, &NoCommits) {
            Visibility::Visible(img) => img.map(|r| (r.int(1), r.int(2))),
            Visibility::Tainted => panic!("tainted at view {view}"),
        }
    }
    assert_eq!(img(&t, &key, 4), None, "before the first insert");
    assert_eq!(
        img(&t, &key, 5),
        Some((1, 10)),
        "pre-delete image survives revival"
    );
    assert_eq!(img(&t, &key, 12), None, "between delete and re-insert");
    assert_eq!(img(&t, &key, 15), Some((2, 20)), "current image");

    // The revived chain changed the indexed column, so the secondary fast
    // path must refuse rather than answer from the current index alone.
    assert_eq!(
        t.lookup_secondary_at(0, &Key::ints(&[1]), 5, READER, &NoCommits),
        None
    );

    // Pruning below the delete keeps history; pruning past it drops it.
    t.prune_versions(9);
    assert_eq!(img(&t, &key, 9), Some((1, 10)));
    t.prune_versions(15);
    assert_eq!(img(&t, &key, 15), Some((2, 20)));
    assert_eq!(t.n_version_chains(), 0, "fully pruned");
}
