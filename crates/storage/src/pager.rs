//! A page directory with per-page latches — the physical layer under the
//! paged B-tree ([`crate::btree`]).
//!
//! The pager owns a directory of fixed-capacity pages (capacity is enforced
//! by the tree's split/merge thresholds; the pager just hands out page
//! frames). Each page carries its node payload behind an `RwLock` — the
//! *page latch* — plus a version counter with the classic OLC *locked*
//! encoding: the counter is bumped to **odd** when a write latch is
//! acquired and back to **even** when it is released (free bumps it odd
//! again until reuse). Optimistic readers descend without holding two
//! latches at once and use the version counter to detect that a pointer
//! they followed went stale, restarting from the root instead of blocking
//! writers. The odd-while-held half is load-bearing: a structure-changing
//! writer (split, merge, borrow, root collapse) may release a modified
//! child's latch while still holding the parent, and a reader that routed
//! through the pre-change parent must fail its parent validation *during*
//! that window, not only after the parent's latch is released.
//!
//! Page latches are *physical* and short: they are held only across a single
//! node visit (plus the parent during crabbing) and never across a logical
//! lock wait, a WAL append, or a step boundary. Logical ACC locks order
//! transactions; page latches only keep individual node reads/writes atomic.
//! See DESIGN.md §10 for the full no-deadlock argument.
//!
//! In debug builds every latch acquisition is tracked in a thread-local
//! registry that asserts the crabbing discipline: no re-latching a page the
//! thread already holds (self-deadlock), never more than three latches at
//! once (parent + child + sibling is the crabbing maximum), and — via
//! [`latch_debug_assert_none_held`], called at step boundaries by the
//! transaction layer and by the stress gate — no latch leaks across a step.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// Index into the pager's page directory. Stable for the life of the page;
/// reuse after [`Pager::free_page`] is detected by readers via the version
/// counter.
pub(crate) type PageId = u32;

/// One page frame: the node payload behind its latch, plus the optimistic
/// readers' version counter.
pub(crate) struct Page<N> {
    /// OLC locked-version counter: even at rest, odd while a write latch
    /// is held (and from free until reuse). Readers capture it while
    /// holding the read latch — so a captured version of a live page is
    /// always even — and re-check it after latching the next node down; a
    /// mismatch (the writer is still in there, or came and went) means the
    /// pointer they followed may no longer be valid and the descent
    /// restarts.
    version: AtomicU64,
    node: RwLock<N>,
}

impl<N> Page<N> {
    /// Current version (valid to sample any time; only stable while this
    /// thread holds the page's latch).
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Relaxed)
    }
}

/// Read latch on one page. Dropping releases the latch (and pops the debug
/// registry entry).
pub(crate) struct ReadLatch<'a, N> {
    guard: RwLockReadGuard<'a, N>,
    #[cfg(debug_assertions)]
    _held: debug::Held,
}

impl<N> std::ops::Deref for ReadLatch<'_, N> {
    type Target = N;
    fn deref(&self) -> &N {
        &self.guard
    }
}

/// Write latch on one page. Acquiring bumps the page version to odd
/// (writer in progress) and dropping bumps it back to even, so a reader
/// validating against a version captured before this latch was taken
/// restarts whether it validates mid-hold or after release.
pub(crate) struct WriteLatch<'a, N> {
    guard: Option<RwLockWriteGuard<'a, N>>,
    version: &'a AtomicU64,
    #[cfg(debug_assertions)]
    _held: Option<debug::Held>,
}

impl<N> std::ops::Deref for WriteLatch<'_, N> {
    type Target = N;
    fn deref(&self) -> &N {
        self.guard.as_ref().expect("write latch live")
    }
}

impl<N> std::ops::DerefMut for WriteLatch<'_, N> {
    fn deref_mut(&mut self) -> &mut N {
        self.guard.as_mut().expect("write latch live")
    }
}

impl<N> Drop for WriteLatch<'_, N> {
    fn drop(&mut self) {
        // Back to even while still holding the latch: the RwLock release
        // that follows publishes the new version to the next latcher.
        self.version.fetch_add(1, Relaxed);
        drop(self.guard.take());
        #[cfg(debug_assertions)]
        drop(self._held.take());
    }
}

/// Live counters, all relaxed atomics — cheap enough to leave on in release
/// builds. Snapshot with [`Pager::counters`].
#[derive(Default)]
pub(crate) struct PagerStats {
    reads: AtomicU64,
    writes: AtomicU64,
    latch_waits: AtomicU64,
    restarts: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

/// A point-in-time snapshot of one pager's counters (or a sum over many —
/// see [`std::ops::Add`] below). Surfaced by `figures -- lockstat`,
/// `figures -- pagebench`, and the mtbench read-mostly cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerCounters {
    /// Read-latch acquisitions (one per node visited on a read descent).
    pub page_reads: u64,
    /// Write-latch acquisitions (one per node visited on a write descent).
    pub page_writes: u64,
    /// Latch acquisitions that found the page latched and had to block.
    pub latch_waits: u64,
    /// Optimistic read descents that failed version validation and
    /// restarted from the root.
    pub read_restarts: u64,
    /// Leaf/internal node splits.
    pub splits: u64,
    /// Leaf/internal node merges (borrows are not counted).
    pub merges: u64,
    /// Pages allocated (fresh or reused from the free list).
    pub page_allocs: u64,
    /// Pages returned to the free list.
    pub page_frees: u64,
    /// Pages currently in the directory (allocated + free-listed).
    pub pages: u64,
}

impl std::ops::Add for PagerCounters {
    type Output = PagerCounters;
    fn add(self, o: PagerCounters) -> PagerCounters {
        PagerCounters {
            page_reads: self.page_reads + o.page_reads,
            page_writes: self.page_writes + o.page_writes,
            latch_waits: self.latch_waits + o.latch_waits,
            read_restarts: self.read_restarts + o.read_restarts,
            splits: self.splits + o.splits,
            merges: self.merges + o.merges,
            page_allocs: self.page_allocs + o.page_allocs,
            page_frees: self.page_frees + o.page_frees,
            pages: self.pages + o.pages,
        }
    }
}

/// Delta between two snapshots of the same pager (benchmark phases).
/// Saturating: `pages` is a level, not a monotone count, so a shrinking
/// directory must not wrap.
impl std::ops::Sub for PagerCounters {
    type Output = PagerCounters;
    fn sub(self, o: PagerCounters) -> PagerCounters {
        PagerCounters {
            page_reads: self.page_reads.saturating_sub(o.page_reads),
            page_writes: self.page_writes.saturating_sub(o.page_writes),
            latch_waits: self.latch_waits.saturating_sub(o.latch_waits),
            read_restarts: self.read_restarts.saturating_sub(o.read_restarts),
            splits: self.splits.saturating_sub(o.splits),
            merges: self.merges.saturating_sub(o.merges),
            page_allocs: self.page_allocs.saturating_sub(o.page_allocs),
            page_frees: self.page_frees.saturating_sub(o.page_frees),
            pages: self.pages.saturating_sub(o.pages),
        }
    }
}

/// The page directory: `Arc`ed page frames plus a LIFO free list. Growing
/// the directory takes the directory write lock; every other access is a
/// shared read of the `Arc` slot.
pub(crate) struct Pager<N> {
    pages: RwLock<Vec<Arc<Page<N>>>>,
    free: Mutex<Vec<PageId>>,
    stats: PagerStats,
}

fn lock_read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn lock_write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

impl<N> Pager<N> {
    /// A pager whose page 0 (the tree root — its id never changes) holds
    /// `root`.
    pub(crate) fn new(root: N) -> Pager<N> {
        Pager {
            pages: RwLock::new(vec![Arc::new(Page {
                version: AtomicU64::new(0),
                node: RwLock::new(root),
            })]),
            free: Mutex::new(Vec::new()),
            stats: PagerStats::default(),
        }
    }

    /// The `Arc` handle for a page. Callers keep the handle alive across the
    /// latch they take on it.
    pub(crate) fn page(&self, id: PageId) -> Arc<Page<N>> {
        Arc::clone(&lock_read(&self.pages)[id as usize])
    }

    /// Acquire the read latch on `page`, counting a latch wait if it blocks.
    pub(crate) fn read_latch<'a>(&self, page: &'a Arc<Page<N>>) -> ReadLatch<'a, N> {
        self.stats.reads.fetch_add(1, Relaxed);
        #[cfg(debug_assertions)]
        let _held = debug::acquire(Arc::as_ptr(page) as usize, false);
        let guard = match page.node.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.stats.latch_waits.fetch_add(1, Relaxed);
                page.node.read().unwrap_or_else(PoisonError::into_inner)
            }
        };
        ReadLatch {
            guard,
            #[cfg(debug_assertions)]
            _held,
        }
    }

    /// Acquire the write latch on `page`, counting a latch wait if it
    /// blocks. The returned latch bumps the page version to odd now (after
    /// the lock is held, so no concurrent reader can capture the odd value
    /// under its read latch) and back to even when dropped.
    pub(crate) fn write_latch<'a>(&self, page: &'a Arc<Page<N>>) -> WriteLatch<'a, N> {
        self.stats.writes.fetch_add(1, Relaxed);
        #[cfg(debug_assertions)]
        let _held = debug::acquire(Arc::as_ptr(page) as usize, true);
        let guard = match page.node.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.stats.latch_waits.fetch_add(1, Relaxed);
                page.node.write().unwrap_or_else(PoisonError::into_inner)
            }
        };
        page.version.fetch_add(1, Relaxed);
        WriteLatch {
            guard: Some(guard),
            version: &page.version,
            #[cfg(debug_assertions)]
            _held: Some(_held),
        }
    }

    /// Allocate a page holding `node`: reuse the most recently freed frame
    /// or grow the directory. Reuse bumps the frame's version so readers
    /// holding a stale pointer to the old tenant restart.
    pub(crate) fn alloc(&self, node: N) -> PageId {
        self.stats.allocs.fetch_add(1, Relaxed);
        let reused = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        if let Some(id) = reused {
            let page = self.page(id);
            // A straggling reader may still hold the old tenant's latch;
            // waiting here is fine (it validates and restarts on release).
            let mut guard = page.node.write().unwrap_or_else(PoisonError::into_inner);
            *guard = node;
            // Back to even (free left it odd) *before* the lock release
            // publishes the new tenant.
            page.version.fetch_add(1, Relaxed);
            drop(guard);
            return id;
        }
        let mut pages = lock_write(&self.pages);
        let id = pages.len() as PageId;
        pages.push(Arc::new(Page {
            version: AtomicU64::new(0),
            node: RwLock::new(node),
        }));
        id
    }

    /// Return a page to the free list. The caller must have unlinked it from
    /// the tree (under the parent's write latch) and dropped its own latch
    /// on it first. The version bump leaves the page *odd* — "in progress"
    /// until `alloc` reuses it and restores even.
    pub(crate) fn free_page(&self, id: PageId) {
        self.stats.frees.fetch_add(1, Relaxed);
        self.page(id).version.fetch_add(1, Relaxed);
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(id);
    }

    /// Count an optimistic-read restart (bumped by the tree layer).
    pub(crate) fn count_restart(&self) {
        self.stats.restarts.fetch_add(1, Relaxed);
    }

    /// Count a split (bumped by the tree layer).
    pub(crate) fn count_split(&self) {
        self.stats.splits.fetch_add(1, Relaxed);
    }

    /// Count a merge (bumped by the tree layer).
    pub(crate) fn count_merge(&self) {
        self.stats.merges.fetch_add(1, Relaxed);
    }

    /// Snapshot the counters.
    pub(crate) fn counters(&self) -> PagerCounters {
        PagerCounters {
            page_reads: self.stats.reads.load(Relaxed),
            page_writes: self.stats.writes.load(Relaxed),
            latch_waits: self.stats.latch_waits.load(Relaxed),
            read_restarts: self.stats.restarts.load(Relaxed),
            splits: self.stats.splits.load(Relaxed),
            merges: self.stats.merges.load(Relaxed),
            page_allocs: self.stats.allocs.load(Relaxed),
            page_frees: self.stats.frees.load(Relaxed),
            pages: lock_read(&self.pages).len() as u64,
        }
    }

    /// Pages currently on the free list (tests).
    #[cfg(test)]
    pub(crate) fn n_free(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// Debug-build latch-discipline checker: a thread-local registry of held
/// page latches. See the module docs for the asserted invariants.
#[cfg(debug_assertions)]
mod debug {
    use std::cell::RefCell;

    /// Crabbing holds at most parent + child + one sibling.
    const MAX_HELD: usize = 3;

    thread_local! {
        static HELD: RefCell<Vec<(usize, bool)>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII registry entry; dropping it releases the registration.
    pub(super) struct Held {
        page: usize,
    }

    pub(super) fn acquire(page: usize, write: bool) -> Held {
        HELD.with_borrow_mut(|h| {
            assert!(
                !h.iter().any(|&(p, _)| p == page),
                "page latch re-acquired by the holding thread \
                 (crabbing violation; would self-deadlock)"
            );
            h.push((page, write));
            assert!(
                h.len() <= MAX_HELD,
                "{} page latches held at once — latch crabbing holds at most \
                 parent + child + sibling ({MAX_HELD})",
                h.len()
            );
        });
        Held { page }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with_borrow_mut(|h| {
                let at = h
                    .iter()
                    .rposition(|&(p, _)| p == self.page)
                    .expect("released latch was registered");
                h.remove(at);
            });
        }
    }

    pub(super) fn assert_none_held(ctx: &str) {
        HELD.with_borrow(|h| {
            assert!(
                h.is_empty(),
                "{ctx}: {} page latch(es) leaked across a latch-free boundary \
                 (write={:?})",
                h.len(),
                h.iter().map(|&(_, w)| w).collect::<Vec<_>>()
            );
        });
    }
}

/// Assert (debug builds only) that the calling thread holds no page latch.
/// The transaction runner calls this at every step boundary and the stress
/// gate calls it per terminal iteration; a failure means a latch leaked out
/// of a tree operation.
pub fn latch_debug_assert_none_held(ctx: &str) {
    #[cfg(debug_assertions)]
    debug::assert_none_held(ctx);
    #[cfg(not(debug_assertions))]
    let _ = ctx;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_freed_pages_lifo() {
        let p: Pager<i32> = Pager::new(0);
        let a = p.alloc(1);
        let b = p.alloc(2);
        assert_eq!((a, b), (1, 2));
        p.free_page(a);
        p.free_page(b);
        assert_eq!(p.n_free(), 2);
        assert_eq!(p.alloc(3), b, "LIFO reuse");
        assert_eq!(p.alloc(4), a);
        assert_eq!(p.alloc(5), 3, "then grow");
        let c = p.counters();
        assert_eq!(c.page_allocs, 5);
        assert_eq!(c.page_frees, 2);
        assert_eq!(c.pages, 4);
    }

    #[test]
    fn write_latch_version_is_odd_while_held() {
        let p: Pager<i32> = Pager::new(7);
        let page = p.page(0);
        let v0 = page.version();
        assert_eq!(v0 % 2, 0, "a page at rest is even");
        {
            let mut w = p.write_latch(&page);
            *w = 8;
            assert_eq!(
                page.version(),
                v0 + 1,
                "odd while write-latched: a reader validating a version \
                 captured before this latch must fail mid-hold"
            );
        }
        assert_eq!(page.version(), v0 + 2, "back to even at release");
        assert_eq!(*p.read_latch(&page), 8);
        p.free_page(0);
        assert_eq!(page.version(), v0 + 3, "free leaves the page odd");
    }

    #[test]
    fn alloc_reuse_restores_even_version() {
        let p: Pager<i32> = Pager::new(0);
        let a = p.alloc(1);
        let page = p.page(a);
        let v0 = page.version();
        p.free_page(a);
        assert_eq!(page.version() % 2, 1, "freed page reads as in-progress");
        assert_eq!(p.alloc(2), a, "LIFO reuse of the freed frame");
        assert_eq!(page.version(), v0 + 2, "reuse restores an even version");
        assert_eq!(*p.read_latch(&page), 2);
    }

    #[test]
    fn latch_checker_is_clean_after_guard_drop() {
        let p: Pager<i32> = Pager::new(0);
        let page = p.page(0);
        {
            let _r = p.read_latch(&page);
        }
        latch_debug_assert_none_held("pager unit test");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "re-acquired")]
    fn latch_checker_catches_self_relatch() {
        let p: Pager<i32> = Pager::new(0);
        let page = p.page(0);
        let _a = p.read_latch(&page);
        let _b = p.read_latch(&page); // would self-deadlock on a write latch
    }

    #[test]
    fn latch_wait_is_counted() {
        let p: std::sync::Arc<Pager<i32>> = std::sync::Arc::new(Pager::new(0));
        let page = p.page(0);
        let w = p.write_latch(&page);
        let p2 = std::sync::Arc::clone(&p);
        let t = std::thread::spawn(move || {
            let page = p2.page(0);
            let _r = p2.read_latch(&page); // blocks until the writer drops
        });
        while p.counters().latch_waits == 0 {
            std::thread::yield_now();
        }
        drop(w);
        t.join().unwrap();
        assert!(p.counters().latch_waits >= 1);
    }
}
