//! The paged primary B-tree: leaf/internal nodes over [`crate::pager`]
//! pages, written with latch crabbing and read with optimistic
//! version-validated descents.
//!
//! Leaves hold [`LeafEntry`]s keyed by primary key; each entry carries the
//! row image *and* the key's MVCC-lite version chain, so chains relocate
//! with their entry across splits and merges for free — version history is
//! keyed by primary key, never by page. An entry whose `row` is `None` is a
//! tombstone kept alive only by its chain (deleted key with reconstructable
//! history); the tree removes entries only when a caller explicitly asks
//! ([`BTree::remove_if`]) and the chain is gone.
//!
//! ## Write path — latch crabbing
//!
//! Writers descend with hand-over-hand write latches: latch the child,
//! *then* release the parent. Structure changes are preemptive: an insert
//! descent splits any full child while the parent is still held, a remove
//! descent tops up any minimal child (borrow from a sibling, else merge)
//! while the parent is still held. A node we descend into is therefore
//! always safe for the operation, so splits/merges never propagate upward
//! and at most three latches (parent + child + sibling) are ever held.
//! The root's page id never changes: a root split rewrites page 0 in place
//! as an internal node over two fresh pages, and a root collapse copies the
//! last child back into page 0.
//!
//! ## Read path — optimistic descent
//!
//! Readers hold at most one latch at a time: read-latch a node, capture its
//! version, pick the child, release, latch the child, then check that the
//! parent's version did not change in between. A mismatch means the pointer
//! they followed may have been split, merged, or freed underneath them —
//! the descent restarts from the root (counted in
//! [`crate::pager::PagerCounters::read_restarts`]). Range scans hop the
//! leaf `next` chain with the same validation. Readers never block writers
//! and never deadlock with them (one latch at a time ⇒ no cycles).
//!
//! Validation is sound against in-progress structure changes because page
//! versions use the OLC locked encoding (odd while write-latched — see
//! [`crate::pager`]): every structure change mutates the child *and* the
//! parent while holding the parent's write latch, so even where a modified
//! or freed child becomes latch-free before the parent is released (the
//! split fast path below, merges, borrows, root collapse), a reader that
//! routed through the pre-change parent sees an odd or advanced parent
//! version at validation time and restarts — it never trusts the stale
//! child. Content-only leaf writes need no such care: they mutate nothing
//! but the leaf, under the leaf's own latch.

use crate::pager::{Page, PageId, Pager, PagerCounters, WriteLatch};
use crate::row::{Key, Row};
use crate::version::ChainEntry;
use acc_common::Slot;
use std::sync::Arc;

/// The root lives at page 0 forever.
const ROOT: PageId = 0;

/// One key's worth of state: the live row image (`None` = tombstone) plus
/// its version chain. The slot is the stable heap address the WAL and the
/// lock manager key off; it travels with the entry across page moves.
#[derive(Debug, Clone)]
pub(crate) struct LeafEntry {
    pub key: Key,
    pub slot: Slot,
    pub row: Option<Row>,
    pub chain: Vec<ChainEntry>,
}

/// A tree node — the payload of one page.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// `children[i]` covers keys `< keys[i]`; `children[i+1]` covers
    /// `>= keys[i]`. Separators are copies (routing only) and need not
    /// exist as live leaf keys.
    Internal {
        keys: Vec<Key>,
        children: Vec<PageId>,
    },
    /// Sorted entries plus the right-sibling link for range scans.
    Leaf {
        entries: Vec<LeafEntry>,
        next: Option<PageId>,
    },
}

/// The paged B-tree. Leaf capacity tracks the schema's `rows_per_page`
/// (clamped), so the hot TPC-C district/warehouse tables get one row per
/// leaf — page latches there are per-row latches.
pub(crate) struct BTree {
    pager: Pager<Node>,
    /// Max entries per leaf.
    leaf_cap: usize,
    /// Rebalance a leaf we descend into (for remove) at `<= min_leaf`.
    min_leaf: usize,
    /// Max children per internal node.
    max_children: usize,
    /// Rebalance an internal node we descend into at `<= min_children`.
    min_children: usize,
}

impl BTree {
    pub(crate) fn new(rows_per_page: u32) -> BTree {
        let leaf_cap = (rows_per_page as usize).clamp(2, 256);
        BTree {
            pager: Pager::new(Node::Leaf {
                entries: Vec::new(),
                next: None,
            }),
            leaf_cap,
            min_leaf: leaf_cap / 2,
            max_children: 8,
            min_children: 4,
        }
    }

    pub(crate) fn counters(&self) -> PagerCounters {
        self.pager.counters()
    }

    /// Route: index of the child covering `key`.
    fn route(keys: &[Key], key: &Key) -> usize {
        keys.partition_point(|k| k <= key)
    }

    fn is_full(&self, node: &Node) -> bool {
        match node {
            Node::Leaf { entries, .. } => entries.len() >= self.leaf_cap,
            Node::Internal { children, .. } => children.len() >= self.max_children,
        }
    }

    fn at_min(&self, node: &Node) -> bool {
        match node {
            Node::Leaf { entries, .. } => entries.len() <= self.min_leaf,
            Node::Internal { children, .. } => children.len() <= self.min_children,
        }
    }

    // ------------------------------------------------------------------
    // Point reads (optimistic descent)
    // ------------------------------------------------------------------

    /// Run `f` on the entry for `key` (or `None`) under the leaf's read
    /// latch. `f` may run more than once if the descent restarts — it must
    /// be effect-free apart from its return value.
    pub(crate) fn read_entry<R>(&self, key: &Key, f: impl Fn(Option<&LeafEntry>) -> R) -> R {
        'restart: loop {
            let mut cur = self.pager.page(ROOT);
            let mut parent: Option<(Arc<Page<Node>>, u64)> = None;
            loop {
                let g = self.pager.read_latch(&cur);
                if let Some((p, v)) = &parent {
                    if p.version() != *v {
                        drop(g);
                        self.pager.count_restart();
                        continue 'restart;
                    }
                }
                let ver = cur.version();
                match &*g {
                    Node::Leaf { entries, .. } => {
                        let idx = entries.partition_point(|e| e.key < *key);
                        return f(entries.get(idx).filter(|e| e.key == *key));
                    }
                    Node::Internal { keys, children } => {
                        let cid = children[Self::route(keys, key)];
                        drop(g);
                        parent = Some((cur, ver));
                        cur = self.pager.page(cid);
                    }
                }
            }
        }
    }

    /// Range scan from `lo`: visit entries with key `>= lo` in order while
    /// `take(key)` holds, collecting up to `limit` values `emit` produces.
    /// Hops the leaf `next` chain with version validation; on a validation
    /// failure the whole scan restarts (partial output is discarded), so
    /// `emit` must be effect-free apart from its return value.
    pub(crate) fn scan_collect<T>(
        &self,
        lo: &Key,
        take: impl Fn(&Key) -> bool,
        mut emit: impl FnMut(&LeafEntry) -> Option<T>,
        limit: usize,
    ) -> Vec<T> {
        'restart: loop {
            let mut out: Vec<T> = Vec::new();
            let mut cur = self.pager.page(ROOT);
            let mut parent: Option<(Arc<Page<Node>>, u64)> = None;
            let mut first_leaf = true;
            loop {
                let g = self.pager.read_latch(&cur);
                if let Some((p, v)) = &parent {
                    if p.version() != *v {
                        drop(g);
                        self.pager.count_restart();
                        continue 'restart;
                    }
                }
                let ver = cur.version();
                let next_page = match &*g {
                    Node::Internal { keys, children } => children[Self::route(keys, lo)],
                    Node::Leaf { entries, next } => {
                        let from = if first_leaf {
                            entries.partition_point(|e| e.key < *lo)
                        } else {
                            0
                        };
                        for e in &entries[from..] {
                            if !take(&e.key) {
                                return out;
                            }
                            if let Some(t) = emit(e) {
                                out.push(t);
                                if out.len() >= limit {
                                    return out;
                                }
                            }
                        }
                        match next {
                            None => return out,
                            Some(n) => {
                                first_leaf = false;
                                *n
                            }
                        }
                    }
                };
                drop(g);
                parent = Some((cur, ver));
                cur = self.pager.page(next_page);
            }
        }
    }

    // ------------------------------------------------------------------
    // Write paths (latch crabbing)
    // ------------------------------------------------------------------

    /// Mutate the entry for `key` in place (no entry is added or removed):
    /// hand-over-hand write descent, `f` runs under the leaf's write latch
    /// with `None` if the key has no entry.
    pub(crate) fn with_entry<R>(
        &self,
        key: &Key,
        f: impl FnOnce(Option<&mut LeafEntry>) -> R,
    ) -> R {
        let root = self.pager.page(ROOT);
        let g = self.pager.write_latch(&root);
        self.with_entry_rec(&root, g, key, f)
    }

    fn with_entry_rec<'a, R>(
        &self,
        _page: &'a Arc<Page<Node>>,
        mut g: WriteLatch<'a, Node>,
        key: &Key,
        f: impl FnOnce(Option<&mut LeafEntry>) -> R,
    ) -> R {
        let cid = match &mut *g {
            Node::Leaf { entries, .. } => {
                let idx = entries.partition_point(|e| e.key < *key);
                let ent = match entries.get_mut(idx) {
                    Some(e) if e.key == *key => Some(e),
                    _ => None,
                };
                return f(ent);
            }
            Node::Internal { keys, children } => children[Self::route(keys, key)],
        };
        let child = self.pager.page(cid);
        let cg = self.pager.write_latch(&child);
        drop(g);
        self.with_entry_rec(&child, cg, key, f)
    }

    /// Insert-or-mutate: descend with preemptive splits so the target leaf
    /// always has room, then run `f(entries, idx, exists)` under the leaf's
    /// write latch — `idx` is where `key` lives (`exists`) or belongs, and
    /// `f` may `entries.insert(idx, ..)` exactly one entry.
    pub(crate) fn upsert<R>(
        &self,
        key: &Key,
        f: impl FnOnce(&mut Vec<LeafEntry>, usize, bool) -> R,
    ) -> R {
        let root = self.pager.page(ROOT);
        let mut g = self.pager.write_latch(&root);
        if self.is_full(&g) {
            self.split_root(&mut g);
        }
        self.upsert_rec(&root, g, key, f)
    }

    fn upsert_rec<'a, R>(
        &self,
        _page: &'a Arc<Page<Node>>,
        mut g: WriteLatch<'a, Node>,
        key: &Key,
        f: impl FnOnce(&mut Vec<LeafEntry>, usize, bool) -> R,
    ) -> R {
        let (cid, child_idx) = match &mut *g {
            Node::Leaf { entries, .. } => {
                let idx = entries.partition_point(|e| e.key < *key);
                let exists = entries.get(idx).is_some_and(|e| e.key == *key);
                return f(entries, idx, exists);
            }
            Node::Internal { keys, children } => {
                let i = Self::route(keys, key);
                (children[i], i)
            }
        };
        let child = self.pager.page(cid);
        let mut cg = self.pager.write_latch(&child);
        if self.is_full(&cg) {
            let (sep, right_id) = self.split_child(&mut g, child_idx, &mut cg);
            if *key >= sep {
                // The key now belongs in the fresh right sibling. No one
                // can route to it until we release the parent (at worst a
                // stale reader holds its recycled frame briefly before
                // restarting), so its latch is (nearly) free. Dropping cg
                // while g is held is safe: the parent's version is odd
                // until g drops, so readers routed to the truncated child
                // fail validation.
                drop(cg);
                let right = self.pager.page(right_id);
                let rg = self.pager.write_latch(&right);
                drop(g);
                return self.upsert_rec(&right, rg, key, f);
            }
        }
        drop(g);
        self.upsert_rec(&child, cg, key, f)
    }

    /// Remove-or-mutate: descend with preemptive rebalancing (borrow or
    /// merge any minimal child while its parent is held), then run `f` on
    /// the entry under the leaf's write latch; if `f` returns `remove =
    /// true` (and the entry exists) the entry is removed from the leaf.
    pub(crate) fn remove_if<R>(
        &self,
        key: &Key,
        f: impl FnOnce(Option<&mut LeafEntry>) -> (R, bool),
    ) -> R {
        loop {
            let root = self.pager.page(ROOT);
            let mut g = self.pager.write_latch(&root);
            // Collapse a trivial root (internal, one child) before
            // descending: copy the child up into page 0 so the root's page
            // id never changes.
            if let Node::Internal { children, .. } = &*g {
                if children.len() == 1 {
                    let cid = children[0];
                    let child = self.pager.page(cid);
                    let mut cg = self.pager.write_latch(&child);
                    *g = std::mem::replace(
                        &mut *cg,
                        Node::Leaf {
                            entries: Vec::new(),
                            next: None,
                        },
                    );
                    drop(cg);
                    self.pager.free_page(cid);
                    drop(g);
                    continue;
                }
            }
            return self.remove_rec(&root, g, key, f);
        }
    }

    fn remove_rec<'a, R>(
        &self,
        _page: &'a Arc<Page<Node>>,
        mut g: WriteLatch<'a, Node>,
        key: &Key,
        f: impl FnOnce(Option<&mut LeafEntry>) -> (R, bool),
    ) -> R {
        let (cid, ci, n_children) = match &mut *g {
            Node::Leaf { entries, .. } => {
                let idx = entries.partition_point(|e| e.key < *key);
                let exists = entries.get(idx).is_some_and(|e| e.key == *key);
                let (r, remove) = if exists {
                    f(Some(&mut entries[idx]))
                } else {
                    f(None)
                };
                if remove && exists {
                    entries.remove(idx);
                }
                return r;
            }
            Node::Internal { keys, children } => {
                let i = Self::route(keys, key);
                (children[i], i, children.len())
            }
        };
        let child = self.pager.page(cid);
        let mut cg = self.pager.write_latch(&child);
        if self.at_min(&cg) {
            if ci + 1 < n_children {
                // Prefer the right sibling: borrow its first, else merge it
                // into the child. Sibling latching happens strictly under
                // the parent's write latch, so no two writers ever contend
                // for the same sibling pair in opposite orders.
                let sid = match &*g {
                    Node::Internal { children, .. } => children[ci + 1],
                    _ => unreachable!("parent is internal"),
                };
                let sib = self.pager.page(sid);
                let mut sg = self.pager.write_latch(&sib);
                if !self.at_min(&sg) {
                    Self::borrow_from_right(&mut g, ci, &mut cg, &mut sg);
                } else {
                    Self::merge_right_into_left(&mut g, ci, &mut cg, &mut sg);
                    self.pager.count_merge();
                    drop(sg);
                    self.pager.free_page(sid);
                }
            } else {
                // Child is the last: use the left sibling.
                let sid = match &*g {
                    Node::Internal { children, .. } => children[ci - 1],
                    _ => unreachable!("parent is internal"),
                };
                let sib = self.pager.page(sid);
                let mut sg = self.pager.write_latch(&sib);
                if !self.at_min(&sg) {
                    Self::borrow_from_left(&mut g, ci, &mut sg, &mut cg);
                } else {
                    Self::merge_right_into_left(&mut g, ci - 1, &mut sg, &mut cg);
                    self.pager.count_merge();
                    drop(cg);
                    self.pager.free_page(cid);
                    drop(g);
                    // Descend into the left sibling, which now covers the
                    // merged range.
                    return self.remove_rec(&sib, sg, key, f);
                }
            }
        }
        drop(g);
        self.remove_rec(&child, cg, key, f)
    }

    // ------------------------------------------------------------------
    // Structure changes (always under the parent's write latch)
    // ------------------------------------------------------------------

    /// Split page 0 in place: its halves move to two fresh pages and the
    /// root becomes an internal node over them.
    fn split_root(&self, g: &mut WriteLatch<'_, Node>) {
        self.pager.count_split();
        match &mut **g {
            Node::Leaf { entries, next } => {
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].key.clone();
                let left_entries = std::mem::take(entries);
                let right_id = self.pager.alloc(Node::Leaf {
                    entries: right_entries,
                    next: *next,
                });
                let left_id = self.pager.alloc(Node::Leaf {
                    entries: left_entries,
                    next: Some(right_id),
                });
                **g = Node::Internal {
                    keys: vec![sep],
                    children: vec![left_id, right_id],
                };
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid + 1);
                let sep = keys.pop().expect("internal root has keys");
                let right_children = children.split_off(mid + 1);
                let right_id = self.pager.alloc(Node::Internal {
                    keys: right_keys,
                    children: right_children,
                });
                let left_id = self.pager.alloc(Node::Internal {
                    keys: std::mem::take(keys),
                    children: std::mem::take(children),
                });
                **g = Node::Internal {
                    keys: vec![sep],
                    children: vec![left_id, right_id],
                };
            }
        }
    }

    /// Split the full child at `child_idx` (held in `cg`) under its parent
    /// (`g`): upper half moves to a fresh right sibling, the separator goes
    /// into the parent. Returns `(separator, right_page)`.
    fn split_child(
        &self,
        g: &mut WriteLatch<'_, Node>,
        child_idx: usize,
        cg: &mut WriteLatch<'_, Node>,
    ) -> (Key, PageId) {
        self.pager.count_split();
        let (sep, right_id) = match &mut **cg {
            Node::Leaf { entries, next } => {
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].key.clone();
                let right_id = self.pager.alloc(Node::Leaf {
                    entries: right_entries,
                    next: *next,
                });
                *next = Some(right_id);
                (sep, right_id)
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid + 1);
                let sep = keys.pop().expect("internal node has keys");
                let right_children = children.split_off(mid + 1);
                let right_id = self.pager.alloc(Node::Internal {
                    keys: right_keys,
                    children: right_children,
                });
                (sep, right_id)
            }
        };
        match &mut **g {
            Node::Internal { keys, children } => {
                keys.insert(child_idx, sep.clone());
                children.insert(child_idx + 1, right_id);
            }
            _ => unreachable!("split parent is internal"),
        }
        (sep, right_id)
    }

    /// Rotate the right sibling's first entry/child into the child.
    fn borrow_from_right(
        g: &mut WriteLatch<'_, Node>,
        ci: usize,
        cg: &mut WriteLatch<'_, Node>,
        sg: &mut WriteLatch<'_, Node>,
    ) {
        let new_sep = match (&mut **cg, &mut **sg) {
            (Node::Leaf { entries: ce, .. }, Node::Leaf { entries: se, .. }) => {
                ce.push(se.remove(0));
                se[0].key.clone()
            }
            (
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
                Node::Internal {
                    keys: sk,
                    children: sc,
                },
            ) => {
                let Node::Internal { keys, .. } = &**g else {
                    unreachable!("parent is internal")
                };
                ck.push(keys[ci].clone());
                cc.push(sc.remove(0));
                sk.remove(0)
            }
            _ => unreachable!("siblings are the same kind"),
        };
        match &mut **g {
            Node::Internal { keys, .. } => keys[ci] = new_sep,
            _ => unreachable!("parent is internal"),
        }
    }

    /// Rotate the left sibling's last entry/child into the child.
    fn borrow_from_left(
        g: &mut WriteLatch<'_, Node>,
        ci: usize,
        sg: &mut WriteLatch<'_, Node>,
        cg: &mut WriteLatch<'_, Node>,
    ) {
        let new_sep = match (&mut **sg, &mut **cg) {
            (Node::Leaf { entries: se, .. }, Node::Leaf { entries: ce, .. }) => {
                let moved = se.pop().expect("left sibling has spare");
                let sep = moved.key.clone();
                ce.insert(0, moved);
                sep
            }
            (
                Node::Internal {
                    keys: sk,
                    children: sc,
                },
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
            ) => {
                let Node::Internal { keys, .. } = &**g else {
                    unreachable!("parent is internal")
                };
                ck.insert(0, keys[ci - 1].clone());
                cc.insert(0, sc.pop().expect("left sibling has spare"));
                sk.pop().expect("left sibling has keys")
            }
            _ => unreachable!("siblings are the same kind"),
        };
        match &mut **g {
            Node::Internal { keys, .. } => keys[ci - 1] = new_sep,
            _ => unreachable!("parent is internal"),
        }
    }

    /// Merge `children[left_idx + 1]` (in `rg`) into `children[left_idx]`
    /// (in `lg`) and drop the separator. The caller frees the right page.
    fn merge_right_into_left(
        g: &mut WriteLatch<'_, Node>,
        left_idx: usize,
        lg: &mut WriteLatch<'_, Node>,
        rg: &mut WriteLatch<'_, Node>,
    ) {
        match (&mut **lg, &mut **rg) {
            (
                Node::Leaf {
                    entries: le,
                    next: ln,
                },
                Node::Leaf {
                    entries: re,
                    next: rn,
                },
            ) => {
                le.append(re);
                *ln = *rn;
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                let Node::Internal { keys, .. } = &**g else {
                    unreachable!("parent is internal")
                };
                lk.push(keys[left_idx].clone());
                lk.append(rk);
                lc.append(rc);
            }
            _ => unreachable!("siblings are the same kind"),
        }
        match &mut **g {
            Node::Internal { keys, children } => {
                keys.remove(left_idx);
                children.remove(left_idx + 1);
            }
            _ => unreachable!("parent is internal"),
        }
    }

    // ------------------------------------------------------------------
    // Introspection (tests, cloning)
    // ------------------------------------------------------------------

    /// Tree depth (root = 1). Takes read latches one level at a time.
    #[cfg(test)]
    pub(crate) fn depth(&self) -> usize {
        let mut d = 1;
        let mut cur = self.pager.page(ROOT);
        loop {
            let g = self.pager.read_latch(&cur);
            match &*g {
                Node::Leaf { .. } => return d,
                Node::Internal { children, .. } => {
                    let cid = children[0];
                    drop(g);
                    cur = self.pager.page(cid);
                    d += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::latch_debug_assert_none_held;

    fn entry(k: i64) -> LeafEntry {
        LeafEntry {
            key: Key::ints(&[k]),
            slot: k as Slot,
            row: Some(Row(vec![acc_common::Value::Int(k)])),
            chain: Vec::new(),
        }
    }

    fn insert(t: &BTree, k: i64) {
        t.upsert(&Key::ints(&[k]), |entries, idx, exists| {
            assert!(!exists, "fresh key");
            entries.insert(idx, entry(k));
        });
    }

    fn remove(t: &BTree, k: i64) -> bool {
        t.remove_if(&Key::ints(&[k]), |e| (e.is_some(), true))
    }

    fn keys_in_order(t: &BTree) -> Vec<i64> {
        t.scan_collect(
            &Key(Vec::new()),
            |_| true,
            |e| {
                Some(match e.key.0[0] {
                    acc_common::Value::Int(i) => i,
                    _ => panic!("int key"),
                })
            },
            usize::MAX,
        )
    }

    #[test]
    fn splits_keep_order_and_point_reads() {
        let t = BTree::new(2); // tiny leaves: split constantly
        let mut expect: Vec<i64> = Vec::new();
        for k in [5, 1, 9, 3, 7, 2, 8, 4, 6, 0, 15, 12, 11, 14, 13, 10] {
            insert(&t, k);
            expect.push(k);
            expect.sort_unstable();
            assert_eq!(keys_in_order(&t), expect, "after inserting {k}");
        }
        assert!(t.depth() > 2, "tiny leaves must have split more than once");
        for k in 0..16 {
            let found = t.read_entry(&Key::ints(&[k]), |e| e.map(|e| e.slot));
            assert_eq!(found, Some(k as Slot));
        }
        assert!(
            !t.read_entry(&Key::ints(&[99]), |e| e.is_some()),
            "absent key"
        );
        assert!(t.counters().splits > 2);
        latch_debug_assert_none_held("btree unit test");
    }

    #[test]
    fn merges_shrink_the_tree_back() {
        let t = BTree::new(2);
        for k in 0..64 {
            insert(&t, k);
        }
        let deep = t.depth();
        assert!(deep >= 3);
        for k in 0..63 {
            assert!(remove(&t, k), "key {k} was present");
            let mut expect: Vec<i64> = (k + 1..64).collect();
            expect.sort_unstable();
            assert_eq!(keys_in_order(&t), expect, "after removing {k}");
        }
        assert_eq!(keys_in_order(&t), vec![63]);
        assert!(t.counters().merges > 0, "shrinking must have merged");
        // Root collapse happens lazily on the next remove-descent.
        assert!(remove(&t, 63));
        assert!(!remove(&t, 63), "second remove finds nothing");
        assert_eq!(t.depth(), 1, "tree collapsed back to a root leaf");
        assert!(
            t.counters().page_frees > 0,
            "merged pages went back to the free list"
        );
        latch_debug_assert_none_held("btree unit test");
    }

    #[test]
    fn scan_collect_ranges_and_limits() {
        let t = BTree::new(3);
        for k in 0..30 {
            insert(&t, k);
        }
        let lo = Key::ints(&[10]);
        let hi = Key::ints(&[20]);
        let mid: Vec<i64> = t.scan_collect(
            &lo,
            |k| *k < hi,
            |e| match e.key.0[0] {
                acc_common::Value::Int(i) => Some(i),
                _ => None,
            },
            usize::MAX,
        );
        assert_eq!(mid, (10..20).collect::<Vec<_>>());
        let first: Vec<i64> = t.scan_collect(
            &lo,
            |k| *k < hi,
            |e| match e.key.0[0] {
                acc_common::Value::Int(i) => Some(i),
                _ => None,
            },
            1,
        );
        assert_eq!(first, vec![10], "limit=1 early-terminates");
    }

    /// Regression for the structure-change/optimistic-reader race: splits,
    /// merges, borrows, and root collapses release a modified (or freed)
    /// child's latch while the parent is still write-latched, and only the
    /// odd-while-held locked-version encoding makes a stale reader restart
    /// in that window. Anchor keys are inserted up front and never removed;
    /// churn threads force constant structure changes around them while
    /// reader threads assert no anchor ever reads as absent and no scan
    /// ever drops one.
    #[test]
    fn concurrent_readers_never_miss_committed_keys() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let t = BTree::new(2); // tiny leaves: constant splits and merges
        let anchors: Vec<i64> = (0..100).map(|k| k * 2).collect();
        for &k in &anchors {
            insert(&t, k);
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let churners: Vec<_> = (0..2)
                .map(|w| {
                    let t = &t;
                    s.spawn(move || {
                        // Disjoint odd key ranges per churner, interleaved
                        // between the anchors to move them around.
                        let odds: Vec<i64> = (0..50).map(|i| 1 + 4 * i + 2 * w).collect();
                        for _ in 0..200 {
                            for &k in &odds {
                                insert(t, k);
                            }
                            for &k in &odds {
                                assert!(remove(t, k));
                            }
                            latch_debug_assert_none_held("churner round");
                        }
                    })
                })
                .collect();
            for _ in 0..2 {
                let (t, anchors, stop) = (&t, &anchors, &stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for &k in anchors {
                            let found = t.read_entry(&Key::ints(&[k]), |e| e.map(|e| e.slot));
                            assert_eq!(found, Some(k as Slot), "anchor {k} vanished");
                        }
                        let seen: Vec<i64> = keys_in_order(t);
                        for &k in anchors {
                            assert!(seen.binary_search(&k).is_ok(), "scan dropped anchor {k}");
                        }
                        latch_debug_assert_none_held("reader round");
                    }
                });
            }
            for c in churners {
                c.join().expect("churner panicked");
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(keys_in_order(&t), anchors, "only the anchors remain");
        assert!(t.counters().splits > 0 && t.counters().merges > 0);
    }

    #[test]
    fn chains_survive_relocation() {
        use acc_common::TxnId;
        let t = BTree::new(2);
        insert(&t, 1);
        t.with_entry(&Key::ints(&[1]), |e| {
            e.expect("present").chain.push(ChainEntry::Committed {
                commit_lsn: 7,
                before: None,
            });
        });
        // Force the entry to relocate through many splits.
        for k in 2..40 {
            insert(&t, k);
        }
        let chain = t.read_entry(&Key::ints(&[1]), |e| e.map(|e| e.chain.clone()));
        assert_eq!(
            chain.expect("entry survived").len(),
            1,
            "chain rode along through splits"
        );
        // And back through merges.
        for k in 2..40 {
            remove(&t, k);
        }
        let chain = t.read_entry(&Key::ints(&[1]), |e| e.map(|e| e.chain.clone()));
        assert_eq!(chain.expect("entry survived").len(), 1);
        let _ = TxnId(0);
    }
}
