//! In-memory relational storage.
//!
//! A [`Database`] is a catalog of heap [`table::Table`]s. Each table keeps its
//! rows in slots, a primary-key B-tree, optional secondary indices, and maps
//! slots to pages so the lock manager can lock at page granularity (the
//! default granularity in the paper's Open Ingres substrate).
//!
//! Every mutating operation returns an [`undo::UndoRecord`] so the transaction
//! layer can roll back an incomplete step and the WAL can log before/after
//! images.

pub(crate) mod btree;
pub mod pager;
pub mod predicate;
pub mod row;
pub mod schema;
pub mod striped;
pub mod table;
pub mod undo;
pub mod version;

pub use pager::{latch_debug_assert_none_held, PagerCounters};
pub use predicate::{CmpOp, Predicate};
pub use row::{Key, Row};
pub use schema::{Catalog, ColumnDef, ColumnType, TableSchema};
pub use striped::StripedDb;
pub use table::{Table, VersionedUpdate};
pub use undo::UndoRecord;
pub use version::{ChainEntry, CommitResolver, NoCommits, Visibility};

use acc_common::{Error, Result, TableId};

/// A catalog plus one heap table per schema entry.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
}

impl Database {
    /// Build an empty database containing one empty table per catalog entry.
    pub fn new(catalog: &Catalog) -> Self {
        Database {
            tables: catalog.tables().map(|s| Table::new(s.clone())).collect(),
        }
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.raw() as usize)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))
    }

    /// Mutable access to the table with the given id.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(id.raw() as usize)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))
    }

    /// All tables, in id order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// Deconstruct into the table vector (striping hand-off).
    pub fn into_tables(self) -> Vec<Table> {
        self.tables
    }

    /// Reassemble from a table vector (inverse of
    /// [`Database::into_tables`]).
    pub fn from_tables(tables: Vec<Table>) -> Self {
        Database { tables }
    }

    /// Undo a previously returned [`UndoRecord`].
    pub fn apply_undo(&mut self, undo: &UndoRecord) -> Result<()> {
        self.table_mut(undo.table())?.apply_undo(undo)
    }

    /// Total row count across all tables (test/diagnostic helper).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::Value;

    fn demo_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            TableSchema::builder("accounts")
                .column("id", ColumnType::Int)
                .column("balance", ColumnType::Decimal)
                .key(&["id"])
                .build(),
        );
        c
    }

    #[test]
    fn database_from_catalog() {
        let cat = demo_catalog();
        let db = Database::new(&cat);
        assert_eq!(db.tables().count(), 1);
        assert_eq!(db.total_rows(), 0);
        assert!(db.table(TableId(0)).is_ok());
        assert!(db.table(TableId(9)).is_err());
    }

    #[test]
    fn undo_round_trip_through_database() {
        let cat = demo_catalog();
        let mut db = Database::new(&cat);
        let t = TableId(0);
        let row = Row::from(vec![
            Value::Int(1),
            Value::from(acc_common::Decimal::from_int(10)),
        ]);
        let (_, undo) = db.table_mut(t).unwrap().insert(row).unwrap();
        assert_eq!(db.total_rows(), 1);
        db.apply_undo(&undo).unwrap();
        assert_eq!(db.total_rows(), 0);
    }
}
