//! Undo records: the inverse of each mutating table operation.
//!
//! Steps are atomic: a partially executed step (deadlock victim, mid-step
//! block in the deterministic scheduler, explicit abort) is rolled back by
//! applying its undo records in reverse order. The WAL stores the same
//! before/after images for crash recovery.

use crate::row::Row;
use acc_common::{Slot, TableId};

/// The inverse of one table mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoRecord {
    /// An insert happened at `slot`; undo by deleting it.
    Insert {
        /// Table mutated.
        table: TableId,
        /// Slot the row went into.
        slot: Slot,
    },
    /// An update happened at `slot`; undo by restoring `before`.
    Update {
        /// Table mutated.
        table: TableId,
        /// Slot updated.
        slot: Slot,
        /// Full before-image.
        before: Row,
    },
    /// A delete happened at `slot`; undo by re-inserting `before` at the same
    /// slot.
    Delete {
        /// Table mutated.
        table: TableId,
        /// Slot vacated.
        slot: Slot,
        /// Full before-image.
        before: Row,
    },
}

impl UndoRecord {
    /// The table this record mutates.
    pub fn table(&self) -> TableId {
        match self {
            UndoRecord::Insert { table, .. }
            | UndoRecord::Update { table, .. }
            | UndoRecord::Delete { table, .. } => *table,
        }
    }

    /// The slot this record touches.
    pub fn slot(&self) -> Slot {
        match self {
            UndoRecord::Insert { slot, .. }
            | UndoRecord::Update { slot, .. }
            | UndoRecord::Delete { slot, .. } => *slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::Value;

    #[test]
    fn accessors() {
        let u = UndoRecord::Update {
            table: TableId(3),
            slot: 9,
            before: Row::from(vec![Value::Int(1)]),
        };
        assert_eq!(u.table(), TableId(3));
        assert_eq!(u.slot(), 9);
    }
}
