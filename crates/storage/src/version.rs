//! MVCC-lite version chains: per-slot undo chains keyed by commit LSN.
//!
//! Each chain entry records the full row image *before* one mutation, in
//! append (time) order. The current slot value plus the chain therefore
//! reconstructs every physical image the row ever had: unwinding the newest
//! entry yields the image before that mutation, and so on down the chain.
//!
//! # Visibility rule
//!
//! A reader holds a *read view* `B` — the durable WAL frontier at the moment
//! its transaction began, so `c <= B` holds exactly for the commits that
//! were durable when the view was minted. Walking newest-to-oldest, an
//! entry is *visible* iff its **effective** commit LSN is `<= B`, where the
//! effective LSN is the physical one for `Committed` entries and the
//! *published* one (see [`CommitResolver`]) for `Pending` entries whose
//! writer has appended its commit record but not yet rewritten its chains.
//! Unresolved `Pending` entries and commits newer than `B` are unwound to
//! their before-image. The walk stops at the first visible entry and
//! returns the image reconstructed so far — but only if **every deeper
//! entry is also visible**. Images are physical composites: the image after
//! mutation *i* includes the effects of all mutations below it, so stopping
//! above an uncommitted (or too-new) deeper write would expose data the
//! reader must not see. That case is [`Visibility::Tainted`]: the caller
//! falls back to a conventional locked read.
//!
//! A reader also taints on its own `Pending` entries — a transaction reads
//! its own writes through the lock path, never through versions.
//!
//! # Commit publication
//!
//! The transaction layer publishes a committing transaction's commit LSN
//! (atomically with the `Commit` record's append — see `runner::commit`)
//! and only later rewrites its `Pending` entries to `Committed`, table by
//! table, after the group-commit fsync. Resolving `Pending` entries through
//! the publication makes that rewrite invisible: at every instant the
//! entry's visibility is the pure predicate `effective_lsn <= B`, so a
//! reader can never observe the writer's effects at one moment and not the
//! next within a single view — the fractured-snapshot window between the
//! fsync wait and per-table finalization is closed by construction.
//!
//! # Pruning
//!
//! Chains are pruned by a low-watermark `W = min(active read views,
//! durable frontier)`: the longest *prefix* (oldest entries) consisting
//! entirely of `Committed { lsn <= W }` entries may be dropped. Every
//! current or future reader has `B >= W`, so its walk either stops above the
//! prefix or stops at the prefix's top entry with all deeper entries visible
//! — and an exhausted chain returns the same image the dropped stop-entry
//! would have. Pruning therefore never changes a read result, only memory.
//! `Pending` entries are never pruned — deliberately including published
//! ones, whose imminent physical finalization makes them prunable the
//! ordinary way (and can in fact never sit below a prunable commit: the
//! overwriting commit's LSN necessarily exceeds the durable frontier at the
//! pending owner's begin, which bounds `W` from above).

use crate::row::Row;
use acc_common::TxnId;
use std::collections::HashMap;

/// Resolves `Pending` chain entries of committed-but-unfinalized
/// transactions to their published commit LSN (see the module docs on
/// commit publication). `None` means the writer is genuinely still in
/// flight (or aborted / failed its commit fsync): unwind past its entries.
pub trait CommitResolver {
    /// The published commit LSN of `txn`, if its commit record has been
    /// appended and its chains may not be physically finalized yet.
    fn commit_lsn(&self, txn: TxnId) -> Option<u64>;
}

/// A resolver for contexts with no commit publication (recovery replay,
/// population, unit tests over physically finalized chains): every
/// `Pending` entry is simply pending.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCommits;

impl CommitResolver for NoCommits {
    fn commit_lsn(&self, _txn: TxnId) -> Option<u64> {
        None
    }
}

/// A plain map is a resolver (model-based tests mirror the transaction
/// layer's publication with one).
impl CommitResolver for HashMap<TxnId, u64> {
    fn commit_lsn(&self, txn: TxnId) -> Option<u64> {
        self.get(&txn).copied()
    }
}

/// One link of a version chain: the row image before one mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainEntry {
    /// The mutating transaction has not finished; visible to nobody else.
    Pending {
        /// The writer.
        txn: TxnId,
        /// Image before the write (`None` = the row did not exist).
        before: Option<Row>,
    },
    /// The mutation is finalized: visible to views at or after `commit_lsn`.
    /// Rolled-back transactions finalize with their `Abort` record's LSN —
    /// their compensating writes stack above the forward writes, so the
    /// composite is the pre-transaction image either way.
    Committed {
        /// LSN of the finalizing `Commit`/`Abort` record.
        commit_lsn: u64,
        /// Image before the write (`None` = the row did not exist).
        before: Option<Row>,
    },
}

impl ChainEntry {
    /// The before-image, if the row existed before this mutation.
    pub fn before(&self) -> Option<&Row> {
        match self {
            ChainEntry::Pending { before, .. } | ChainEntry::Committed { before, .. } => {
                before.as_ref()
            }
        }
    }

    /// True if this entry's writer has not yet finalized.
    pub fn is_pending(&self) -> bool {
        matches!(self, ChainEntry::Pending { .. })
    }

    /// True if this entry is committed at or before `view`.
    pub fn visible_at(&self, view: u64) -> bool {
        matches!(self, ChainEntry::Committed { commit_lsn, .. } if *commit_lsn <= view)
    }
}

/// The outcome of a version-chain walk.
#[derive(Debug, Clone, PartialEq)]
pub enum Visibility {
    /// The row image at the read view (`None` = row absent at that view).
    Visible(Option<Row>),
    /// No physical image equals the logical snapshot (an uncommitted or
    /// too-new write is buried under a visible one, or the reader wrote the
    /// row itself). Fall back to a locked read.
    Tainted,
}

/// Reconstruct the image visible at `view` from the current slot value and
/// its chain (oldest first), resolving `Pending` entries of published
/// committers through `commits`. See the module docs for the rule.
pub fn reconstruct(
    current: Option<&Row>,
    chain: &[ChainEntry],
    view: u64,
    reader: TxnId,
    commits: &dyn CommitResolver,
) -> Visibility {
    // The effective commit LSN: physical for finalized entries, published
    // for `Pending` entries of a committed-but-unfinalized writer. Both
    // evaluate identically, which is what makes the lazy physical rewrite
    // invisible to every view.
    let lsn_of = |e: &ChainEntry| match e {
        ChainEntry::Committed { commit_lsn, .. } => Some(*commit_lsn),
        ChainEntry::Pending { txn, .. } => commits.commit_lsn(*txn),
    };
    let mut cur = current.cloned();
    for i in (0..chain.len()).rev() {
        let e = &chain[i];
        if matches!(e, ChainEntry::Pending { txn, .. } if *txn == reader) {
            // Own writes go through the lock path, never through versions.
            return Visibility::Tainted;
        }
        match lsn_of(e) {
            Some(c) if c <= view => {
                return if chain[..i]
                    .iter()
                    .all(|d| lsn_of(d).is_some_and(|c| c <= view))
                {
                    Visibility::Visible(cur)
                } else {
                    Visibility::Tainted
                };
            }
            _ => cur = e.before().cloned(),
        }
    }
    Visibility::Visible(cur)
}

/// Drop the longest all-visible-at-`watermark` prefix of `chain`; returns
/// true if the chain is now empty. See the module docs for why this is
/// invisible to every reader with a view at or after the watermark.
pub fn prune_chain(chain: &mut Vec<ChainEntry>, watermark: u64) -> bool {
    let keep_from = chain
        .iter()
        .position(|e| !e.visible_at(watermark))
        .unwrap_or(chain.len());
    chain.drain(..keep_from);
    chain.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::Value;

    fn row(n: i64) -> Row {
        Row::from(vec![Value::Int(n)])
    }

    const R: TxnId = TxnId(99);

    #[test]
    fn empty_chain_returns_current() {
        assert_eq!(
            reconstruct(Some(&row(7)), &[], 0, R, &NoCommits),
            Visibility::Visible(Some(row(7)))
        );
        assert_eq!(
            reconstruct(None, &[], 0, R, &NoCommits),
            Visibility::Visible(None)
        );
    }

    #[test]
    fn pending_unwinds_to_before_image() {
        let chain = vec![ChainEntry::Pending {
            txn: TxnId(1),
            before: Some(row(1)),
        }];
        assert_eq!(
            reconstruct(Some(&row(2)), &chain, 10, R, &NoCommits),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn own_pending_write_taints() {
        let chain = vec![ChainEntry::Pending {
            txn: R,
            before: Some(row(1)),
        }];
        assert_eq!(
            reconstruct(Some(&row(2)), &chain, 10, R, &NoCommits),
            Visibility::Tainted
        );
    }

    #[test]
    fn stops_at_first_visible_commit() {
        let chain = vec![
            ChainEntry::Committed {
                commit_lsn: 3,
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 8,
                before: Some(row(2)),
            },
        ];
        // View 5: the lsn-8 commit is too new, the lsn-3 one is visible.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 5, R, &NoCommits),
            Visibility::Visible(Some(row(2)))
        );
        // View 10: everything visible — current row.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 10, R, &NoCommits),
            Visibility::Visible(Some(row(3)))
        );
        // View 1: nothing visible — unwind to the oldest before-image.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 1, R, &NoCommits),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn buried_pending_taints() {
        // T1 wrote (still pending), T2 overwrote and committed: the image
        // after T2's write physically contains T1's uncommitted data.
        let chain = vec![
            ChainEntry::Pending {
                txn: TxnId(1),
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 5,
                before: Some(row(2)),
            },
        ];
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 9, R, &NoCommits),
            Visibility::Tainted
        );
        // A view older than the commit unwinds both and is fine.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 4, R, &NoCommits),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn buried_too_new_commit_taints() {
        // Non-monotone commit order: the deeper write committed *later*.
        let chain = vec![
            ChainEntry::Committed {
                commit_lsn: 20,
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 10,
                before: Some(row(2)),
            },
        ];
        // View 15 sees the lsn-10 commit but not the buried lsn-20 one.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 15, R, &NoCommits),
            Visibility::Tainted
        );
        // View 25 sees both; view 5 sees neither.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 25, R, &NoCommits),
            Visibility::Visible(Some(row(3)))
        );
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 5, R, &NoCommits),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn insert_unwinds_to_absent() {
        let chain = vec![ChainEntry::Committed {
            commit_lsn: 7,
            before: None,
        }];
        assert_eq!(
            reconstruct(Some(&row(1)), &chain, 3, R, &NoCommits),
            Visibility::Visible(None)
        );
        assert_eq!(
            reconstruct(Some(&row(1)), &chain, 7, R, &NoCommits),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn prune_drops_only_visible_prefix() {
        let mut chain = vec![
            ChainEntry::Committed {
                commit_lsn: 2,
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 4,
                before: Some(row(2)),
            },
            ChainEntry::Committed {
                commit_lsn: 9,
                before: Some(row(3)),
            },
        ];
        assert!(!prune_chain(&mut chain, 5));
        assert_eq!(chain.len(), 1);
        assert!(chain[0].visible_at(9));
        assert!(prune_chain(&mut chain, 9));
    }

    #[test]
    fn prune_never_drops_pending_or_suffix() {
        let mut chain = vec![
            ChainEntry::Pending {
                txn: TxnId(1),
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 1,
                before: Some(row(2)),
            },
        ];
        // The pending head blocks the whole prefix.
        assert!(!prune_chain(&mut chain, 100));
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn published_pending_resolves_as_committed() {
        // A writer whose commit LSN is published but whose chain is not yet
        // physically finalized must read exactly like the finalized form:
        // visible at views >= the published LSN, unwound below it.
        let pending = vec![ChainEntry::Pending {
            txn: TxnId(1),
            before: Some(row(1)),
        }];
        let finalized = vec![ChainEntry::Committed {
            commit_lsn: 7,
            before: Some(row(1)),
        }];
        let mut published = HashMap::new();
        published.insert(TxnId(1), 7u64);
        for view in [0, 6, 7, 8, 100] {
            assert_eq!(
                reconstruct(Some(&row(2)), &pending, view, R, &published),
                reconstruct(Some(&row(2)), &finalized, view, R, &NoCommits),
                "published-pending diverged from finalized at view {view}"
            );
        }
        // An unpublished writer still unwinds at every view.
        assert_eq!(
            reconstruct(Some(&row(2)), &pending, 100, R, &NoCommits),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn published_pending_counts_in_deeper_visibility_check() {
        // Buried published-pending write under a visible commit: once the
        // publication makes the deeper entry visible at the view, the walk
        // may stop above it; without the publication it must taint.
        let chain = vec![
            ChainEntry::Pending {
                txn: TxnId(1),
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 9,
                before: Some(row(2)),
            },
        ];
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 10, R, &NoCommits),
            Visibility::Tainted
        );
        let mut published = HashMap::new();
        published.insert(TxnId(1), 5u64);
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 10, R, &published),
            Visibility::Visible(Some(row(3)))
        );
        // A view between the two commits stops at the published entry.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 6, R, &published),
            Visibility::Visible(Some(row(2)))
        );
    }

    #[test]
    fn own_published_write_still_taints() {
        // Publication never overrides the own-write rule: a transaction
        // reads its own writes through the lock path.
        let chain = vec![ChainEntry::Pending {
            txn: R,
            before: Some(row(1)),
        }];
        let mut published = HashMap::new();
        published.insert(R, 3u64);
        assert_eq!(
            reconstruct(Some(&row(2)), &chain, 10, R, &published),
            Visibility::Tainted
        );
    }
}
