//! MVCC-lite version chains: per-slot undo chains keyed by commit LSN.
//!
//! Each chain entry records the full row image *before* one mutation, in
//! append (time) order. The current slot value plus the chain therefore
//! reconstructs every physical image the row ever had: unwinding the newest
//! entry yields the image before that mutation, and so on down the chain.
//!
//! # Visibility rule
//!
//! A reader holds a *read view* `B` — the LSN of its `Begin` record. Walking
//! newest-to-oldest, an entry is *visible* iff it is `Committed { lsn <= B }`;
//! `Pending` entries and commits newer than `B` are unwound to their
//! before-image. The walk stops at the first visible entry and returns the
//! image reconstructed so far — but only if **every deeper entry is also
//! visible**. Images are physical composites: the image after mutation *i*
//! includes the effects of all mutations below it, so stopping above an
//! uncommitted (or too-new) deeper write would expose data the reader must
//! not see. That case is [`Visibility::Tainted`]: the caller falls back to a
//! conventional locked read.
//!
//! A reader also taints on its own `Pending` entries — a transaction reads
//! its own writes through the lock path, never through versions.
//!
//! # Pruning
//!
//! Chains are pruned by a low-watermark `W = min(active begin LSNs,
//! durable frontier)`: the longest *prefix* (oldest entries) consisting
//! entirely of `Committed { lsn <= W }` entries may be dropped. Every
//! current or future reader has `B >= W`, so its walk either stops above the
//! prefix or stops at the prefix's top entry with all deeper entries visible
//! — and an exhausted chain returns the same image the dropped stop-entry
//! would have. Pruning therefore never changes a read result, only memory.
//! `Pending` entries are never pruned (and can in fact never sit below a
//! prunable commit: the overwriting commit's LSN necessarily exceeds the
//! pending owner's begin LSN, which bounds `W` from above).

use crate::row::Row;
use acc_common::TxnId;

/// One link of a version chain: the row image before one mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainEntry {
    /// The mutating transaction has not finished; visible to nobody else.
    Pending {
        /// The writer.
        txn: TxnId,
        /// Image before the write (`None` = the row did not exist).
        before: Option<Row>,
    },
    /// The mutation is finalized: visible to views at or after `commit_lsn`.
    /// Rolled-back transactions finalize with their `Abort` record's LSN —
    /// their compensating writes stack above the forward writes, so the
    /// composite is the pre-transaction image either way.
    Committed {
        /// LSN of the finalizing `Commit`/`Abort` record.
        commit_lsn: u64,
        /// Image before the write (`None` = the row did not exist).
        before: Option<Row>,
    },
}

impl ChainEntry {
    /// The before-image, if the row existed before this mutation.
    pub fn before(&self) -> Option<&Row> {
        match self {
            ChainEntry::Pending { before, .. } | ChainEntry::Committed { before, .. } => {
                before.as_ref()
            }
        }
    }

    /// True if this entry's writer has not yet finalized.
    pub fn is_pending(&self) -> bool {
        matches!(self, ChainEntry::Pending { .. })
    }

    /// True if this entry is committed at or before `view`.
    pub fn visible_at(&self, view: u64) -> bool {
        matches!(self, ChainEntry::Committed { commit_lsn, .. } if *commit_lsn <= view)
    }
}

/// The outcome of a version-chain walk.
#[derive(Debug, Clone, PartialEq)]
pub enum Visibility {
    /// The row image at the read view (`None` = row absent at that view).
    Visible(Option<Row>),
    /// No physical image equals the logical snapshot (an uncommitted or
    /// too-new write is buried under a visible one, or the reader wrote the
    /// row itself). Fall back to a locked read.
    Tainted,
}

/// Reconstruct the image visible at `view` from the current slot value and
/// its chain (oldest first). See the module docs for the rule.
pub fn reconstruct(
    current: Option<&Row>,
    chain: &[ChainEntry],
    view: u64,
    reader: TxnId,
) -> Visibility {
    let mut cur = current.cloned();
    for i in (0..chain.len()).rev() {
        match &chain[i] {
            ChainEntry::Pending { txn, before } => {
                if *txn == reader {
                    return Visibility::Tainted;
                }
                cur = before.clone();
            }
            ChainEntry::Committed { commit_lsn, before } => {
                if *commit_lsn > view {
                    cur = before.clone();
                } else if chain[..i].iter().all(|e| e.visible_at(view)) {
                    return Visibility::Visible(cur);
                } else {
                    return Visibility::Tainted;
                }
            }
        }
    }
    Visibility::Visible(cur)
}

/// Drop the longest all-visible-at-`watermark` prefix of `chain`; returns
/// true if the chain is now empty. See the module docs for why this is
/// invisible to every reader with a view at or after the watermark.
pub fn prune_chain(chain: &mut Vec<ChainEntry>, watermark: u64) -> bool {
    let keep_from = chain
        .iter()
        .position(|e| !e.visible_at(watermark))
        .unwrap_or(chain.len());
    chain.drain(..keep_from);
    chain.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::Value;

    fn row(n: i64) -> Row {
        Row::from(vec![Value::Int(n)])
    }

    const R: TxnId = TxnId(99);

    #[test]
    fn empty_chain_returns_current() {
        assert_eq!(
            reconstruct(Some(&row(7)), &[], 0, R),
            Visibility::Visible(Some(row(7)))
        );
        assert_eq!(reconstruct(None, &[], 0, R), Visibility::Visible(None));
    }

    #[test]
    fn pending_unwinds_to_before_image() {
        let chain = vec![ChainEntry::Pending {
            txn: TxnId(1),
            before: Some(row(1)),
        }];
        assert_eq!(
            reconstruct(Some(&row(2)), &chain, 10, R),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn own_pending_write_taints() {
        let chain = vec![ChainEntry::Pending {
            txn: R,
            before: Some(row(1)),
        }];
        assert_eq!(
            reconstruct(Some(&row(2)), &chain, 10, R),
            Visibility::Tainted
        );
    }

    #[test]
    fn stops_at_first_visible_commit() {
        let chain = vec![
            ChainEntry::Committed {
                commit_lsn: 3,
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 8,
                before: Some(row(2)),
            },
        ];
        // View 5: the lsn-8 commit is too new, the lsn-3 one is visible.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 5, R),
            Visibility::Visible(Some(row(2)))
        );
        // View 10: everything visible — current row.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 10, R),
            Visibility::Visible(Some(row(3)))
        );
        // View 1: nothing visible — unwind to the oldest before-image.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 1, R),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn buried_pending_taints() {
        // T1 wrote (still pending), T2 overwrote and committed: the image
        // after T2's write physically contains T1's uncommitted data.
        let chain = vec![
            ChainEntry::Pending {
                txn: TxnId(1),
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 5,
                before: Some(row(2)),
            },
        ];
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 9, R),
            Visibility::Tainted
        );
        // A view older than the commit unwinds both and is fine.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 4, R),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn buried_too_new_commit_taints() {
        // Non-monotone commit order: the deeper write committed *later*.
        let chain = vec![
            ChainEntry::Committed {
                commit_lsn: 20,
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 10,
                before: Some(row(2)),
            },
        ];
        // View 15 sees the lsn-10 commit but not the buried lsn-20 one.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 15, R),
            Visibility::Tainted
        );
        // View 25 sees both; view 5 sees neither.
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 25, R),
            Visibility::Visible(Some(row(3)))
        );
        assert_eq!(
            reconstruct(Some(&row(3)), &chain, 5, R),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn insert_unwinds_to_absent() {
        let chain = vec![ChainEntry::Committed {
            commit_lsn: 7,
            before: None,
        }];
        assert_eq!(
            reconstruct(Some(&row(1)), &chain, 3, R),
            Visibility::Visible(None)
        );
        assert_eq!(
            reconstruct(Some(&row(1)), &chain, 7, R),
            Visibility::Visible(Some(row(1)))
        );
    }

    #[test]
    fn prune_drops_only_visible_prefix() {
        let mut chain = vec![
            ChainEntry::Committed {
                commit_lsn: 2,
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 4,
                before: Some(row(2)),
            },
            ChainEntry::Committed {
                commit_lsn: 9,
                before: Some(row(3)),
            },
        ];
        assert!(!prune_chain(&mut chain, 5));
        assert_eq!(chain.len(), 1);
        assert!(chain[0].visible_at(9));
        assert!(prune_chain(&mut chain, 9));
    }

    #[test]
    fn prune_never_drops_pending_or_suffix() {
        let mut chain = vec![
            ChainEntry::Pending {
                txn: TxnId(1),
                before: Some(row(1)),
            },
            ChainEntry::Committed {
                commit_lsn: 1,
                before: Some(row(2)),
            },
        ];
        // The pending head blocks the whole prefix.
        assert!(!prune_chain(&mut chain, 100));
        assert_eq!(chain.len(), 2);
    }
}
