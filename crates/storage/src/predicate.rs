//! Scan predicates: a small, evaluable boolean expression language over rows.
//!
//! The same AST is reused by the ACC's assertion layer (crate `acc-core`) to
//! give interstep assertions an *evaluable* form, so tests can verify that a
//! precondition really holds whenever a step starts — stronger checking than
//! the paper's system, which only ever does interference-table lookups.

use crate::row::Row;
use acc_common::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator. Any comparison against NULL is false (SQL-ish
    /// three-valued logic collapsed to two values).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A boolean expression over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Compare column `col` with a constant.
    Cmp {
        /// Column position.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Constant operand.
        value: Value,
    },
    /// Column is NULL.
    IsNull(usize),
    /// Column is not NULL.
    IsNotNull(usize),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col = value`.
    pub fn eq(col: usize, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            col,
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `col op value`.
    pub fn cmp(col: usize, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            col,
            op,
            value: value.into(),
        }
    }

    /// Conjunction of two predicates (flattens nested `And`s).
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, value } => op.eval(row.get(*col), value),
            Predicate::IsNull(c) => row.is_null(*c),
            Predicate::IsNotNull(c) => !row.is_null(*c),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(row)),
            Predicate::Not(p) => !p.eval(row),
        }
    }

    /// The set of columns the predicate reads (sorted, deduplicated). The
    /// assertion layer uses this as part of interference footprints.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp { col, .. } | Predicate::IsNull(col) | Predicate::IsNotNull(col) => {
                out.push(*col)
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::from(vec![Value::Int(5), Value::str("x"), Value::Null])
    }

    #[test]
    fn cmp_ops() {
        let r = row();
        assert!(Predicate::eq(0, 5i64).eval(&r));
        assert!(Predicate::cmp(0, CmpOp::Lt, 6i64).eval(&r));
        assert!(Predicate::cmp(0, CmpOp::Ge, 5i64).eval(&r));
        assert!(Predicate::cmp(0, CmpOp::Ne, 4i64).eval(&r));
        assert!(!Predicate::cmp(0, CmpOp::Gt, 5i64).eval(&r));
        assert!(Predicate::eq(1, "x").eval(&r));
    }

    #[test]
    fn null_comparisons_false() {
        let r = row();
        assert!(!Predicate::eq(2, 1i64).eval(&r));
        assert!(!Predicate::cmp(2, CmpOp::Ne, 1i64).eval(&r));
        assert!(Predicate::IsNull(2).eval(&r));
        assert!(Predicate::IsNotNull(0).eval(&r));
        assert!(!Predicate::IsNotNull(2).eval(&r));
    }

    #[test]
    fn boolean_connectives() {
        let r = row();
        let p = Predicate::eq(0, 5i64).and(Predicate::eq(1, "x"));
        assert!(p.eval(&r));
        let q = Predicate::Or(vec![Predicate::eq(0, 9i64), Predicate::eq(1, "x")]);
        assert!(q.eval(&r));
        assert!(!Predicate::Not(Box::new(Predicate::True)).eval(&r));
        assert!(Predicate::True.eval(&r));
    }

    #[test]
    fn and_flattens() {
        let p = Predicate::eq(0, 1i64)
            .and(Predicate::eq(1, 2i64))
            .and(Predicate::eq(2, 3i64));
        match p {
            Predicate::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
        assert_eq!(
            Predicate::True.and(Predicate::eq(0, 1i64)),
            Predicate::eq(0, 1i64)
        );
    }

    #[test]
    fn column_footprint() {
        let p = Predicate::Or(vec![
            Predicate::eq(3, 1i64),
            Predicate::Not(Box::new(Predicate::eq(1, 2i64))),
            Predicate::IsNull(3),
        ]);
        assert_eq!(p.columns(), vec![1, 3]);
        assert!(Predicate::True.columns().is_empty());
    }
}
