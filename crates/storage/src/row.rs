//! Rows and keys.

use acc_common::{Decimal, Value};
use std::fmt;

/// One tuple: a vector of [`Value`]s, positionally matching a table schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// The value in column `i`; panics on out-of-range (schema-checked code
    /// never passes a bad index).
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Integer in column `i`; panics if the column is not an `Int`.
    #[inline]
    pub fn int(&self, i: usize) -> i64 {
        self.0[i].as_int().expect("column is not Int")
    }

    /// String in column `i`; panics if the column is not a `Str`.
    #[inline]
    pub fn str(&self, i: usize) -> &str {
        self.0[i].as_str().expect("column is not Str")
    }

    /// Decimal in column `i`; panics if the column is not a `Decimal`.
    #[inline]
    pub fn decimal(&self, i: usize) -> Decimal {
        self.0[i].as_decimal().expect("column is not Decimal")
    }

    /// True if column `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.0[i].is_null()
    }

    /// Replace the value in column `i`, returning the old value.
    pub fn set(&mut self, i: usize, v: Value) -> Value {
        std::mem::replace(&mut self.0[i], v)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Project the given columns into a [`Key`].
    pub fn project(&self, cols: &[usize]) -> Key {
        Key(cols.iter().map(|&c| self.0[c].clone()).collect())
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Row {
        Row(v)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// An index key: an ordered tuple of values.
///
/// Keys order lexicographically, which makes prefix range scans natural: all
/// keys beginning with prefix `p` form a contiguous B-tree range.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub Vec<Value>);

impl Key {
    /// A key from a list of values.
    pub fn new(vals: Vec<Value>) -> Key {
        Key(vals)
    }

    /// Convenience constructor for all-integer keys (the common case in
    /// TPC-C).
    pub fn ints(vals: &[i64]) -> Key {
        Key(vals.iter().map(|&n| Value::Int(n)).collect())
    }

    /// True if `self` begins with `prefix`.
    pub fn starts_with(&self, prefix: &Key) -> bool {
        self.0.len() >= prefix.0.len() && self.0[..prefix.0.len()] == prefix.0[..]
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let r = Row::from(vec![
            Value::Int(7),
            Value::str("abc"),
            Value::from(Decimal::from_int(3)),
            Value::Null,
        ]);
        assert_eq!(r.int(0), 7);
        assert_eq!(r.str(1), "abc");
        assert_eq!(r.decimal(2), Decimal::from_int(3));
        assert!(r.is_null(3));
        assert_eq!(r.arity(), 4);
    }

    #[test]
    #[should_panic(expected = "column is not Int")]
    fn wrong_type_panics() {
        Row::from(vec![Value::str("x")]).int(0);
    }

    #[test]
    fn set_returns_old() {
        let mut r = Row::from(vec![Value::Int(1)]);
        let old = r.set(0, Value::Int(2));
        assert_eq!(old, Value::Int(1));
        assert_eq!(r.int(0), 2);
    }

    #[test]
    fn project_builds_key() {
        let r = Row::from(vec![Value::Int(1), Value::str("x"), Value::Int(3)]);
        assert_eq!(
            r.project(&[2, 0]),
            Key::new(vec![Value::Int(3), Value::Int(1)])
        );
    }

    #[test]
    fn key_ordering_lexicographic() {
        assert!(Key::ints(&[1, 2]) < Key::ints(&[1, 3]));
        assert!(Key::ints(&[1, 2]) < Key::ints(&[2, 0]));
        // A strict prefix orders before its extensions.
        assert!(Key::ints(&[1]) < Key::ints(&[1, 0]));
    }

    #[test]
    fn key_prefix() {
        let k = Key::ints(&[4, 5, 6]);
        assert!(k.starts_with(&Key::ints(&[4, 5])));
        assert!(k.starts_with(&Key::ints(&[4])));
        assert!(!k.starts_with(&Key::ints(&[5])));
        assert!(!k.starts_with(&Key::ints(&[4, 5, 6, 7])));
    }

    #[test]
    fn display() {
        assert_eq!(Key::ints(&[1, 2]).to_string(), "[1, 2]");
        assert_eq!(
            Row::from(vec![Value::Int(1), Value::str("a")]).to_string(),
            "(1, 'a')"
        );
    }
}
