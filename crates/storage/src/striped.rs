//! Concurrent façade over a [`Database`].
//!
//! Historically each table sat behind its own `RwLock` stripe; since the
//! paged-storage refactor every [`Table`] method takes `&self` and does its
//! own page-granularity latching, so [`StripedDb`] is now a thin façade: it
//! owns the table vector and hands out `&Table`. The `with_table` /
//! `with_table_mut` closure API survives for the callers' sake — both run the
//! closure on a shared reference, and neither can block behind a whole-table
//! writer anymore. The lock manager still provides the *logical* isolation
//! (page/table locks); page latches only make individual node reads and
//! writes of the in-memory image safe, and are never held across a lock wait
//! or a WAL append.

use crate::table::Table;
use crate::undo::UndoRecord;
use crate::{Database, PagerCounters};
use acc_common::{Error, Result, TableId};

/// A [`Database`] opened for concurrent engines: per-page latching inside
/// each table, no whole-table locks.
#[derive(Debug)]
pub struct StripedDb {
    tables: Vec<Table>,
}

impl StripedDb {
    /// Take ownership of a database image.
    pub fn new(db: Database) -> Self {
        StripedDb {
            tables: db.into_tables(),
        }
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.raw() as usize)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))
    }

    /// Run `f` with access to one table.
    pub fn with_table<R>(&self, id: TableId, f: impl FnOnce(&Table) -> R) -> Result<R> {
        Ok(f(self.table(id)?))
    }

    /// Run `f` with access to one table. Mutation no longer needs an
    /// exclusive stripe — this is the same as [`StripedDb::with_table`] and
    /// remains only so mutating call sites read as such.
    pub fn with_table_mut<R>(&self, id: TableId, f: impl FnOnce(&Table) -> R) -> Result<R> {
        Ok(f(self.table(id)?))
    }

    /// Undo a previously returned [`UndoRecord`].
    pub fn apply_undo(&self, undo: &UndoRecord) -> Result<()> {
        self.table(undo.table())?.apply_undo(undo)
    }

    /// Clone the whole image back into a plain [`Database`] (tests,
    /// consistency checks, recovery hand-off). Each table clones via tree
    /// walks under short leaf latches, so concurrent writers may be
    /// interleaved — call it only at quiescent points when a
    /// transactionally consistent image is required.
    pub fn snapshot(&self) -> Database {
        Database::from_tables(self.tables.iter().map(Table::clone).collect())
    }

    /// Total row count across all tables (test/diagnostic helper).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Aggregate pager counters across all tables (page latch traffic,
    /// splits/merges, restarts) — the physical-latching analogue of the
    /// lock manager's `lockstat`.
    pub fn pager_counters(&self) -> PagerCounters {
        self.tables
            .iter()
            .map(Table::pager_counters)
            .fold(PagerCounters::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::{Catalog, ColumnType, TableSchema};
    use acc_common::Value;

    fn demo() -> StripedDb {
        let mut c = Catalog::new();
        c.add_table(
            TableSchema::builder("accounts")
                .column("id", ColumnType::Int)
                .column("balance", ColumnType::Int)
                .key(&["id"])
                .build(),
        );
        StripedDb::new(Database::new(&c))
    }

    #[test]
    fn stripes_round_trip() {
        let db = demo();
        let t = TableId(0);
        let undo = db
            .with_table_mut(t, |tbl| {
                tbl.insert(Row::from(vec![Value::Int(1), Value::Int(10)]))
            })
            .unwrap()
            .unwrap()
            .1;
        assert_eq!(db.total_rows(), 1);
        assert_eq!(db.snapshot().total_rows(), 1);
        db.apply_undo(&undo).unwrap();
        assert_eq!(db.total_rows(), 0);
        assert!(db.with_table(TableId(9), |_| ()).is_err());
    }

    #[test]
    fn panicking_closure_leaves_table_usable() {
        // The old stripe locks turned a panicking closure into a poisoned
        // stripe; with per-page latching (which recovers poison internally)
        // the table stays fully usable afterwards.
        let db = demo();
        let t = TableId(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = db.with_table_mut(t, |_| panic!("boom"));
        }));
        db.with_table_mut(t, |tbl| {
            tbl.insert(Row::from(vec![Value::Int(1), Value::Int(10)]))
        })
        .unwrap()
        .unwrap();
        assert_eq!(db.total_rows(), 1);
        assert_eq!(db.snapshot().total_rows(), 1);
    }

    #[test]
    fn concurrent_disjoint_tables_do_not_conflict() {
        let mut c = Catalog::new();
        for name in ["a", "b"] {
            c.add_table(
                TableSchema::builder(name)
                    .column("id", ColumnType::Int)
                    .key(&["id"])
                    .build(),
            );
        }
        let db = std::sync::Arc::new(StripedDb::new(Database::new(&c)));
        let handles: Vec<_> = (0..2u32)
            .map(|i| {
                let db = std::sync::Arc::clone(&db);
                std::thread::spawn(move || {
                    for k in 0..100 {
                        db.with_table_mut(TableId(i), |t| {
                            t.insert(Row::from(vec![Value::Int(k)])).unwrap();
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.total_rows(), 200);
    }

    #[test]
    fn concurrent_writers_same_table_hit_different_pages() {
        // Two writers inserting disjoint keys into ONE table — impossible
        // under the old whole-table stripe without serializing; now they
        // only contend on individual leaf latches.
        let db = std::sync::Arc::new(demo());
        let handles: Vec<_> = (0..2i64)
            .map(|w| {
                let db = std::sync::Arc::clone(&db);
                std::thread::spawn(move || {
                    for k in 0..200 {
                        db.with_table_mut(TableId(0), |t| {
                            t.insert(Row::from(vec![Value::Int(w * 1000 + k), Value::Int(0)]))
                                .unwrap();
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.total_rows(), 400);
        let snap = db.snapshot();
        assert_eq!(snap.total_rows(), 400);
        assert!(db.pager_counters().page_writes > 0);
    }
}
