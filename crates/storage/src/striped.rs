//! Per-table striping of a [`Database`] for concurrent engines.
//!
//! A [`StripedDb`] wraps each table of a [`Database`] in its own `RwLock`, so
//! steps touching disjoint tables never contend on the database image. The
//! lock manager still provides the *logical* isolation (page/table locks);
//! the stripe locks only make the physical reads and writes of the in-memory
//! image safe, and are held for the duration of one closure — never across a
//! lock wait or a WAL append by another transaction.

use crate::table::Table;
use crate::undo::UndoRecord;
use crate::Database;
use acc_common::{Error, Result, TableId};
use std::sync::RwLock;

/// A [`Database`] split into independently-locked table stripes.
#[derive(Debug)]
pub struct StripedDb {
    tables: Vec<RwLock<Table>>,
}

impl StripedDb {
    /// Take ownership of a database image, striping it per table.
    pub fn new(db: Database) -> Self {
        StripedDb {
            tables: db.into_tables().into_iter().map(RwLock::new).collect(),
        }
    }

    /// Number of table stripes.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    fn stripe(&self, id: TableId) -> Result<&RwLock<Table>> {
        self.tables
            .get(id.raw() as usize)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))
    }

    /// Run `f` with shared access to one table.
    ///
    /// A stripe whose lock was poisoned by a panicking closure yields a
    /// recoverable [`Error::Internal`] instead of propagating the panic:
    /// the caller sees one failed step, not a process-wide abort cascade.
    pub fn with_table<R>(&self, id: TableId, f: impl FnOnce(&Table) -> R) -> Result<R> {
        let guard = self
            .stripe(id)?
            .read()
            .map_err(|_| Error::Internal(format!("table {id} stripe poisoned")))?;
        Ok(f(&guard))
    }

    /// Run `f` with exclusive access to one table. Poisoned stripes error
    /// recoverably (see [`StripedDb::with_table`]).
    pub fn with_table_mut<R>(&self, id: TableId, f: impl FnOnce(&mut Table) -> R) -> Result<R> {
        let mut guard = self
            .stripe(id)?
            .write()
            .map_err(|_| Error::Internal(format!("table {id} stripe poisoned")))?;
        Ok(f(&mut guard))
    }

    /// Undo a previously returned [`UndoRecord`].
    pub fn apply_undo(&self, undo: &UndoRecord) -> Result<()> {
        self.with_table_mut(undo.table(), |t| t.apply_undo(undo))?
    }

    /// Clone the whole image back into a plain [`Database`] (tests,
    /// consistency checks, recovery hand-off). Locks the stripes one at a
    /// time in table order, so concurrent writers may be interleaved — call
    /// it only at quiescent points when a transactionally consistent image
    /// is required.
    pub fn snapshot(&self) -> Database {
        // Explicit poison-recovery: the snapshot is a diagnostic read of
        // whatever image exists, so a stripe poisoned by a panicking writer
        // is still readable (the panic already surfaced elsewhere).
        Database::from_tables(
            self.tables
                .iter()
                .map(|t| t.read().unwrap_or_else(|e| e.into_inner()).clone())
                .collect(),
        )
    }

    /// Total row count across all tables (test/diagnostic helper).
    pub fn total_rows(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::{Catalog, ColumnType, TableSchema};
    use acc_common::Value;

    fn demo() -> StripedDb {
        let mut c = Catalog::new();
        c.add_table(
            TableSchema::builder("accounts")
                .column("id", ColumnType::Int)
                .column("balance", ColumnType::Int)
                .key(&["id"])
                .build(),
        );
        StripedDb::new(Database::new(&c))
    }

    #[test]
    fn stripes_round_trip() {
        let db = demo();
        let t = TableId(0);
        let undo = db
            .with_table_mut(t, |tbl| {
                tbl.insert(Row::from(vec![Value::Int(1), Value::Int(10)]))
            })
            .unwrap()
            .unwrap()
            .1;
        assert_eq!(db.total_rows(), 1);
        assert_eq!(db.snapshot().total_rows(), 1);
        db.apply_undo(&undo).unwrap();
        assert_eq!(db.total_rows(), 0);
        assert!(db.with_table(TableId(9), |_| ()).is_err());
    }

    #[test]
    fn poisoned_stripe_errors_recoverably() {
        let db = demo();
        let t = TableId(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = db.with_table_mut(t, |_| panic!("boom"));
        }));
        // Later accesses see one failed operation, not a panic cascade…
        assert!(matches!(db.with_table(t, |_| ()), Err(Error::Internal(_))));
        assert!(matches!(
            db.with_table_mut(t, |_| ()),
            Err(Error::Internal(_))
        ));
        // …and the diagnostic snapshot still reads the surviving image.
        assert_eq!(db.snapshot().total_rows(), 0);
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn concurrent_disjoint_tables_do_not_conflict() {
        let mut c = Catalog::new();
        for name in ["a", "b"] {
            c.add_table(
                TableSchema::builder(name)
                    .column("id", ColumnType::Int)
                    .key(&["id"])
                    .build(),
            );
        }
        let db = std::sync::Arc::new(StripedDb::new(Database::new(&c)));
        let handles: Vec<_> = (0..2u32)
            .map(|i| {
                let db = std::sync::Arc::clone(&db);
                std::thread::spawn(move || {
                    for k in 0..100 {
                        db.with_table_mut(TableId(i), |t| {
                            t.insert(Row::from(vec![Value::Int(k)])).unwrap();
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.total_rows(), 200);
    }
}
