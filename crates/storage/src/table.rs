//! Heap tables with a primary B-tree and optional secondary indices.
//!
//! Rows live in *slots*; a freed slot is reused by the next insert, so slot
//! numbers (and therefore page assignments and lock resources) stay dense and
//! stable. `slot / rows_per_page` is the page number the lock manager locks.

use crate::predicate::Predicate;
use crate::row::{Key, Row};
use crate::schema::TableSchema;
use crate::undo::UndoRecord;
use crate::version::{prune_chain, reconstruct, ChainEntry, CommitResolver, Visibility};
use acc_common::{Error, PageNo, ResourceId, Result, Slot, TxnId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One heap table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    slots: Vec<Option<Row>>,
    free: Vec<Slot>,
    primary: BTreeMap<Key, Slot>,
    secondary: Vec<BTreeMap<Key, BTreeSet<Slot>>>,
    /// MVCC-lite version chains for slots with recent mutations (sparse —
    /// pruned by the low-watermark, see [`crate::version`]). Entries are
    /// pushed explicitly by the transaction layer alongside its undo
    /// records; the physical mutators below never *add* entries, so
    /// populate and recovery replay stay chain-free. `apply_undo` does move
    /// existing chains between here and the tombstone store so a rollback
    /// leaves each key's history where readers look for it.
    versions: HashMap<Slot, Vec<ChainEntry>>,
    /// Chains of deleted keys. A slot may be reused by an unrelated key, so
    /// a versioned delete moves the slot's chain here (plus the delete
    /// entry); re-inserting the key — forward insert (`push_version` with
    /// no before-image) or undo of the delete — splices it back.
    tombstones: BTreeMap<Key, Vec<ChainEntry>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        let secondary = schema.secondary.iter().map(|_| BTreeMap::new()).collect();
        Table {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            primary: BTreeMap::new(),
            secondary,
            versions: HashMap::new(),
            tombstones: BTreeMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// The page a slot lives on.
    pub fn page_of(&self, slot: Slot) -> PageNo {
        (slot / self.schema.rows_per_page as Slot) as PageNo
    }

    /// The page-granularity lock resource covering `slot`.
    pub fn page_resource(&self, slot: Slot) -> ResourceId {
        ResourceId::Page(self.schema.id, self.page_of(slot))
    }

    /// The slot the next [`Table::insert`] will use (assuming no intervening
    /// mutation). Callers that must lock the target page *before* inserting
    /// peek, lock, then re-peek to confirm.
    pub fn peek_next_slot(&self) -> Slot {
        self.free
            .last()
            .copied()
            .unwrap_or(self.slots.len() as Slot)
    }

    /// Insert a row. Returns the slot it went into and the undo record.
    pub fn insert(&mut self, row: Row) -> Result<(Slot, UndoRecord)> {
        self.schema.check(&row)?;
        let key = self.schema.key_of(&row);
        if self.primary.contains_key(&key) {
            return Err(Error::DuplicateKey(format!("{}{key}", self.schema.name)));
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(row);
                s
            }
            None => {
                self.slots.push(Some(row));
                (self.slots.len() - 1) as Slot
            }
        };
        self.index_insert(slot, key);
        Ok((
            slot,
            UndoRecord::Insert {
                table: self.schema.id,
                slot,
            },
        ))
    }

    /// The slot holding `key`, if present.
    pub fn slot_of(&self, key: &Key) -> Option<Slot> {
        self.primary.get(key).copied()
    }

    /// The row in `slot`, if live.
    pub fn row(&self, slot: Slot) -> Option<&Row> {
        self.slots.get(slot as usize).and_then(|r| r.as_ref())
    }

    /// The row with the given primary key.
    pub fn get(&self, key: &Key) -> Option<(Slot, &Row)> {
        let slot = self.slot_of(key)?;
        Some((
            slot,
            self.row(slot).expect("primary index points at live row"),
        ))
    }

    /// Replace the row in `slot` wholesale. The new row may change the
    /// primary key (rejected if the new key already exists elsewhere).
    pub fn update(&mut self, slot: Slot, new: Row) -> Result<UndoRecord> {
        self.schema.check(&new)?;
        let old = self
            .row(slot)
            .ok_or_else(|| Error::NotFound(format!("{} slot {slot}", self.schema.name)))?
            .clone();
        let old_key = self.schema.key_of(&old);
        let new_key = self.schema.key_of(&new);
        if new_key != old_key {
            if self.primary.contains_key(&new_key) {
                return Err(Error::DuplicateKey(format!(
                    "{}{new_key}",
                    self.schema.name
                )));
            }
            self.index_remove(slot, &old);
            self.slots[slot as usize] = Some(new);
            self.index_insert(slot, new_key);
        } else {
            // Secondary keys may still change.
            self.index_remove_secondary(slot, &old);
            self.slots[slot as usize] = Some(new);
            self.index_insert_secondary(slot);
        }
        Ok(UndoRecord::Update {
            table: self.schema.id,
            slot,
            before: old,
        })
    }

    /// Update the row in `slot` in place via a closure.
    pub fn update_with(&mut self, slot: Slot, f: impl FnOnce(&mut Row)) -> Result<UndoRecord> {
        let mut new = self
            .row(slot)
            .ok_or_else(|| Error::NotFound(format!("{} slot {slot}", self.schema.name)))?
            .clone();
        f(&mut new);
        self.update(slot, new)
    }

    /// Delete the row in `slot`.
    pub fn delete(&mut self, slot: Slot) -> Result<UndoRecord> {
        let old = self
            .row(slot)
            .ok_or_else(|| Error::NotFound(format!("{} slot {slot}", self.schema.name)))?
            .clone();
        self.index_remove(slot, &old);
        self.slots[slot as usize] = None;
        self.free.push(slot);
        Ok(UndoRecord::Delete {
            table: self.schema.id,
            slot,
            before: old,
        })
    }

    /// Delete by primary key.
    pub fn delete_by_key(&mut self, key: &Key) -> Result<(Slot, UndoRecord)> {
        let slot = self
            .slot_of(key)
            .ok_or_else(|| Error::NotFound(format!("{}{key}", self.schema.name)))?;
        Ok((slot, self.delete(slot)?))
    }

    /// All live rows in primary-key order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &Row)> {
        self.primary.values().map(move |&slot| {
            (
                slot,
                self.row(slot).expect("primary index points at live row"),
            )
        })
    }

    /// Live rows satisfying `pred`, in primary-key order.
    pub fn scan<'a>(&'a self, pred: &'a Predicate) -> impl Iterator<Item = (Slot, &'a Row)> {
        self.iter().filter(move |(_, r)| pred.eval(r))
    }

    /// Rows whose primary key begins with `prefix`, in key order.
    ///
    /// Lexicographic key ordering makes the matching keys a contiguous B-tree
    /// range starting at `prefix` itself.
    pub fn scan_prefix<'a>(&'a self, prefix: &'a Key) -> impl Iterator<Item = (Slot, &'a Row)> {
        self.primary
            .range(prefix.clone()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(move |(_, &slot)| {
                (
                    slot,
                    self.row(slot).expect("primary index points at live row"),
                )
            })
    }

    /// Slots whose secondary index `idx` key begins with `prefix`, in key
    /// order.
    pub fn lookup_secondary(&self, idx: usize, prefix: &Key) -> Vec<Slot> {
        self.secondary[idx]
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .flat_map(|(_, slots)| slots.iter().copied())
            .collect()
    }

    /// Apply an undo record produced by this table.
    pub fn apply_undo(&mut self, undo: &UndoRecord) -> Result<()> {
        debug_assert_eq!(undo.table(), self.schema.id);
        match undo {
            UndoRecord::Insert { slot, .. } => {
                // The slot is freed and may be reused by an unrelated key,
                // so its chain (the key's pre-revival history plus the
                // now-moot insert entry) must follow the key to the
                // tombstone store, exactly as a forward delete's would.
                let key = self.row(*slot).map(|r| self.schema.key_of(r));
                self.delete(*slot)?;
                if let (Some(key), Some(chain)) = (key, self.versions.remove(slot)) {
                    self.tombstones.insert(key, chain);
                }
            }
            UndoRecord::Update { slot, before, .. } => {
                self.update(*slot, before.clone())?;
            }
            UndoRecord::Delete { slot, before, .. } => {
                self.insert_at(*slot, before.clone())?;
                // Inverse of the move in `push_delete_version`: the key is
                // live again, so its history must sit under the slot where
                // readers will look for it.
                let key = self.schema.key_of(before);
                if let Some(chain) = self.tombstones.remove(&key) {
                    let entry = self.versions.entry(*slot).or_default();
                    let newer = std::mem::replace(entry, chain);
                    entry.extend(newer);
                }
            }
        }
        Ok(())
    }

    // ----- MVCC-lite version chains (see `crate::version`) ----------------

    /// Record a pending version for a mutation of `slot`: `before` is the
    /// full row image prior to the write (`None` for an insert). Called by
    /// the transaction layer next to the mutation, inside the same stripe
    /// lock.
    pub fn push_version(&mut self, slot: Slot, txn: TxnId, before: Option<Row>) {
        if before.is_none() {
            // An insert may revive a previously deleted key: move the key's
            // tombstone chain (its pre-delete history) back under the slot,
            // else readers at views older than the delete would see the row
            // as absent instead of its old image.
            if let Some(key) = self.row(slot).map(|r| self.schema.key_of(r)) {
                if let Some(chain) = self.tombstones.remove(&key) {
                    let entry = self.versions.entry(slot).or_default();
                    let newer = std::mem::replace(entry, chain);
                    entry.extend(newer);
                }
            }
        }
        self.versions
            .entry(slot)
            .or_default()
            .push(ChainEntry::Pending { txn, before });
    }

    /// Record a pending version for a *delete* of `key` at `slot`. The
    /// slot's chain moves to the tombstone store (the slot may be reused by
    /// an unrelated key) with the delete entry on top.
    pub fn push_delete_version(&mut self, key: Key, slot: Slot, txn: TxnId, before: Row) {
        let mut chain = self.versions.remove(&slot).unwrap_or_default();
        chain.push(ChainEntry::Pending {
            txn,
            before: Some(before),
        });
        self.tombstones.insert(key, chain);
    }

    /// Finalize every pending entry of `txn` in this table at `commit_lsn`
    /// (the `Commit` record's LSN, or the `Abort` record's on rollback).
    /// Returns the number of entries finalized.
    pub fn finalize_versions(&mut self, txn: TxnId, commit_lsn: u64) -> usize {
        let mut n = 0;
        for chain in self
            .versions
            .values_mut()
            .chain(self.tombstones.values_mut())
        {
            for e in chain.iter_mut() {
                if matches!(e, ChainEntry::Pending { txn: t, .. } if *t == txn) {
                    let before = e.before().cloned();
                    *e = ChainEntry::Committed { commit_lsn, before };
                    n += 1;
                }
            }
        }
        n
    }

    /// Prune chains against the low-watermark (see [`crate::version`]):
    /// drop all-visible prefixes, empty chains, and tombstones whose delete
    /// is itself below the watermark.
    pub fn prune_versions(&mut self, watermark: u64) {
        self.versions
            .retain(|_, chain| !prune_chain(chain, watermark));
        self.tombstones
            .retain(|_, chain| !prune_chain(chain, watermark));
    }

    /// Number of live version chains (slots + tombstones); test/diagnostic
    /// helper.
    pub fn n_version_chains(&self) -> usize {
        self.versions.len() + self.tombstones.len()
    }

    fn slot_chain(&self, slot: Slot) -> &[ChainEntry] {
        self.versions.get(&slot).map_or(&[], |c| c.as_slice())
    }

    /// True if any image in `chain` (or `current`) carries a primary key
    /// other than `key` — a key-changing update went through this slot, so
    /// the chain no longer describes one row's history and version reads
    /// must fall back.
    fn chain_key_mismatch(&self, key: &Key, current: Option<&Row>, chain: &[ChainEntry]) -> bool {
        current
            .into_iter()
            .chain(chain.iter().filter_map(|e| e.before()))
            .any(|r| self.schema.key_of(r) != *key)
    }

    /// The row image with primary key `key` as visible at `view`
    /// (coordination-free point read). `commits` resolves Pending entries of
    /// transactions whose commit record is already appended (see
    /// [`CommitResolver`]).
    pub fn read_at(
        &self,
        key: &Key,
        view: u64,
        reader: TxnId,
        commits: &dyn CommitResolver,
    ) -> Visibility {
        if let Some(slot) = self.slot_of(key) {
            let current = self.row(slot);
            let chain = self.slot_chain(slot);
            if self.chain_key_mismatch(key, current, chain) {
                return Visibility::Tainted;
            }
            reconstruct(current, chain, view, reader, commits)
        } else if let Some(chain) = self.tombstones.get(key) {
            if self.chain_key_mismatch(key, None, chain) {
                return Visibility::Tainted;
            }
            reconstruct(None, chain, view, reader, commits)
        } else {
            Visibility::Visible(None)
        }
    }

    /// All row images whose primary key begins with `prefix`, as visible at
    /// `view`, in key order. `None` means some row could not be soundly
    /// reconstructed — fall back to a locked scan.
    pub fn scan_prefix_at(
        &self,
        prefix: &Key,
        view: u64,
        reader: TxnId,
        commits: &dyn CommitResolver,
    ) -> Option<Vec<Row>> {
        let mut out: BTreeMap<Key, Row> = BTreeMap::new();
        for (k, &slot) in self
            .primary
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(prefix))
        {
            let current = self.row(slot);
            let chain = self.slot_chain(slot);
            if self.chain_key_mismatch(k, current, chain) {
                return None;
            }
            match reconstruct(current, chain, view, reader, commits) {
                Visibility::Tainted => return None,
                Visibility::Visible(Some(r)) => {
                    out.insert(k.clone(), r);
                }
                Visibility::Visible(None) => {}
            }
        }
        // Deleted keys in range may still be visible at an older view.
        for (k, chain) in self
            .tombstones
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(prefix))
        {
            if self.primary.contains_key(k) {
                continue; // revived key: the slot chain above covered it
            }
            if self.chain_key_mismatch(k, None, chain) {
                return None;
            }
            match reconstruct(None, chain, view, reader, commits) {
                Visibility::Tainted => return None,
                Visibility::Visible(Some(r)) => {
                    out.insert(k.clone(), r);
                }
                Visibility::Visible(None) => {}
            }
        }
        Some(out.into_values().collect())
    }

    /// All row images whose secondary index `idx` key begins with `prefix`,
    /// as visible at `view`, ordered by (secondary key, primary key).
    /// `None` means fall back to a locked lookup.
    ///
    /// The secondary index describes *current* rows only, so this is sound
    /// only while no live chain changes a row's secondary projection — we
    /// verify that over the (small, pruned) chain set and fall back if any
    /// projection moved.
    pub fn lookup_secondary_at(
        &self,
        idx: usize,
        prefix: &Key,
        view: u64,
        reader: TxnId,
        commits: &dyn CommitResolver,
    ) -> Option<Vec<Row>> {
        let cols = &self.schema.secondary[idx];
        // If any versioned slot's projection differs between images, the
        // index range below could miss a historically-matching row.
        for (&slot, chain) in &self.versions {
            let mut images = self
                .row(slot)
                .into_iter()
                .chain(chain.iter().filter_map(|e| e.before()));
            if let Some(first) = images.next() {
                let p = first.project(cols);
                if images.any(|r| r.project(cols) != p) {
                    return None;
                }
            }
        }
        let mut out: BTreeMap<(Key, Key), Row> = BTreeMap::new();
        for (_, slots) in self.secondary[idx]
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(prefix))
        {
            for &slot in slots {
                let current = self.row(slot);
                let chain = self.slot_chain(slot);
                match reconstruct(current, chain, view, reader, commits) {
                    Visibility::Tainted => return None,
                    Visibility::Visible(Some(r)) => {
                        let sk = r.project(cols);
                        if sk.starts_with(prefix) {
                            let pk = self.schema.key_of(&r);
                            out.insert((sk, pk), r);
                        }
                    }
                    Visibility::Visible(None) => {}
                }
            }
        }
        // Deleted rows may still be visible; tombstones are few, so scan
        // them all and filter by projection.
        for (k, chain) in &self.tombstones {
            if self.primary.contains_key(k) {
                continue;
            }
            match reconstruct(None, chain, view, reader, commits) {
                Visibility::Tainted => return None,
                Visibility::Visible(Some(r)) => {
                    let sk = r.project(cols);
                    if sk.starts_with(prefix) {
                        let pk = self.schema.key_of(&r);
                        out.insert((sk, pk), r);
                    }
                }
                Visibility::Visible(None) => {}
            }
        }
        Some(out.into_values().collect())
    }

    /// Re-insert a row at a specific slot (undo of delete, and WAL redo).
    pub fn insert_at(&mut self, slot: Slot, row: Row) -> Result<()> {
        self.schema.check(&row)?;
        let key = self.schema.key_of(&row);
        if self.primary.contains_key(&key) {
            return Err(Error::DuplicateKey(format!("{}{key}", self.schema.name)));
        }
        let idx = slot as usize;
        if idx >= self.slots.len() {
            // Newly materialized empty slots (the gap below `slot`) become
            // reusable.
            for s in self.slots.len()..idx {
                self.free.push(s as Slot);
            }
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_some() {
            return Err(Error::Internal(format!(
                "{} slot {slot} already occupied",
                self.schema.name
            )));
        }
        self.free.retain(|&s| s != slot);
        self.slots[idx] = Some(row);
        self.index_insert(slot, key);
        Ok(())
    }

    fn index_insert(&mut self, slot: Slot, key: Key) {
        // A key coming back to life revives its tombstone chain onto the new
        // slot, so version readers keep seeing the key's full history. The
        // revived entries are older than anything already pushed for this
        // slot, so splice them behind any existing entries (same idiom as
        // `push_version` / undo-of-Delete).
        if let Some(chain) = self.tombstones.remove(&key) {
            let entry = self.versions.entry(slot).or_default();
            let newer = std::mem::replace(entry, chain);
            entry.extend(newer);
        }
        self.primary.insert(key, slot);
        self.index_insert_secondary(slot);
    }

    fn index_insert_secondary(&mut self, slot: Slot) {
        let row = self.slots[slot as usize]
            .as_ref()
            .expect("inserting index entries for a live row");
        for (i, cols) in self.schema.secondary.iter().enumerate() {
            let k = row.project(cols);
            self.secondary[i].entry(k).or_default().insert(slot);
        }
    }

    fn index_remove(&mut self, slot: Slot, row: &Row) {
        let key = self.schema.key_of(row);
        self.primary.remove(&key);
        self.index_remove_secondary(slot, row);
    }

    fn index_remove_secondary(&mut self, slot: Slot, row: &Row) {
        for (i, cols) in self.schema.secondary.iter().enumerate() {
            let k = row.project(cols);
            if let Some(set) = self.secondary[i].get_mut(&k) {
                set.remove(&slot);
                if set.is_empty() {
                    self.secondary[i].remove(&k);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableSchema};
    use acc_common::{TableId, Value};

    fn table() -> Table {
        let mut schema = TableSchema::builder("orderlines")
            .column("order_id", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("qty", ColumnType::Int)
            .key(&["order_id", "item_id"])
            .index(&["item_id"])
            .rows_per_page(4)
            .build();
        schema.id = TableId(0);
        Table::new(schema)
    }

    fn row(o: i64, i: i64, q: i64) -> Row {
        Row::from(vec![Value::Int(o), Value::Int(i), Value::Int(q)])
    }

    #[test]
    fn insert_get_delete() {
        let mut t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        assert_eq!(t.len(), 1);
        let (s2, r) = t.get(&Key::ints(&[1, 10])).unwrap();
        assert_eq!(s2, slot);
        assert_eq!(r.int(2), 5);
        t.delete(slot).unwrap();
        assert!(t.get(&Key::ints(&[1, 10])).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = table();
        t.insert(row(1, 10, 5)).unwrap();
        let err = t.insert(row(1, 10, 9)).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey(_)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn peek_next_slot_predicts_insert() {
        let mut t = table();
        assert_eq!(t.peek_next_slot(), 0);
        let (s0, _) = t.insert(row(1, 1, 1)).unwrap();
        assert_eq!(s0, 0);
        assert_eq!(t.peek_next_slot(), 1);
        t.delete(s0).unwrap();
        assert_eq!(t.peek_next_slot(), s0);
        let (s1, _) = t.insert(row(1, 2, 1)).unwrap();
        assert_eq!(s1, s0);
    }

    #[test]
    fn slots_are_reused() {
        let mut t = table();
        let (s0, _) = t.insert(row(1, 1, 1)).unwrap();
        t.insert(row(1, 2, 1)).unwrap();
        t.delete(s0).unwrap();
        let (s2, _) = t.insert(row(1, 3, 1)).unwrap();
        assert_eq!(s2, s0, "freed slot should be reused");
    }

    #[test]
    fn update_in_place() {
        let mut t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        let undo = t
            .update_with(slot, |r| {
                r.set(2, Value::Int(7));
            })
            .unwrap();
        assert_eq!(t.row(slot).unwrap().int(2), 7);
        t.apply_undo(&undo).unwrap();
        assert_eq!(t.row(slot).unwrap().int(2), 5);
    }

    #[test]
    fn update_changing_key_moves_index_entry() {
        let mut t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        t.update(slot, row(2, 20, 5)).unwrap();
        assert!(t.get(&Key::ints(&[1, 10])).is_none());
        assert_eq!(t.get(&Key::ints(&[2, 20])).unwrap().0, slot);
    }

    #[test]
    fn update_to_existing_key_rejected() {
        let mut t = table();
        let (s0, _) = t.insert(row(1, 10, 5)).unwrap();
        t.insert(row(2, 20, 5)).unwrap();
        assert!(matches!(
            t.update(s0, row(2, 20, 9)),
            Err(Error::DuplicateKey(_))
        ));
        // Original row untouched.
        assert_eq!(t.get(&Key::ints(&[1, 10])).unwrap().0, s0);
    }

    #[test]
    fn update_missing_slot_errors() {
        let mut t = table();
        assert!(matches!(t.update(5, row(1, 1, 1)), Err(Error::NotFound(_))));
        assert!(matches!(t.delete(5), Err(Error::NotFound(_))));
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut t = table();
        for (o, i) in [(1, 3), (1, 1), (2, 1), (1, 2), (3, 1)] {
            t.insert(row(o, i, 0)).unwrap();
        }
        let items: Vec<i64> = t
            .scan_prefix(&Key::ints(&[1]))
            .map(|(_, r)| r.int(1))
            .collect();
        assert_eq!(items, vec![1, 2, 3]);
        assert_eq!(t.scan_prefix(&Key::ints(&[9])).count(), 0);
        assert_eq!(t.scan_prefix(&Key::ints(&[1, 2])).count(), 1);
    }

    #[test]
    fn predicate_scan() {
        let mut t = table();
        for i in 0..10 {
            t.insert(row(1, i, i % 3)).unwrap();
        }
        let p = Predicate::eq(2, 0i64);
        assert_eq!(t.scan(&p).count(), 4); // qty 0 for i = 0,3,6,9
    }

    #[test]
    fn secondary_index_lookup() {
        let mut t = table();
        t.insert(row(1, 10, 5)).unwrap();
        t.insert(row(2, 10, 6)).unwrap();
        t.insert(row(3, 11, 7)).unwrap();
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[10])).len(), 2);
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[11])).len(), 1);
        assert!(t.lookup_secondary(0, &Key::ints(&[12])).is_empty());
        // Deleting maintains the secondary index.
        let (slot, _) = t
            .get(&Key::ints(&[1, 10]))
            .map(|(s, r)| (s, r.clone()))
            .unwrap();
        t.delete(slot).unwrap();
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[10])).len(), 1);
    }

    #[test]
    fn secondary_index_follows_updates() {
        let mut t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        // Changing item_id moves both the primary and the secondary entry.
        let undo = t
            .update_with(slot, |r| {
                r.set(1, Value::Int(99));
            })
            .unwrap();
        assert!(t.lookup_secondary(0, &Key::ints(&[10])).is_empty());
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[99])), vec![slot]);
        t.apply_undo(&undo).unwrap();
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[10])), vec![slot]);
        assert!(t.lookup_secondary(0, &Key::ints(&[99])).is_empty());
    }

    #[test]
    fn page_mapping() {
        let t = table(); // rows_per_page = 4
        assert_eq!(t.page_of(0), 0);
        assert_eq!(t.page_of(3), 0);
        assert_eq!(t.page_of(4), 1);
        assert_eq!(t.page_resource(5), ResourceId::Page(TableId(0), 1));
    }

    #[test]
    fn undo_delete_restores_same_slot() {
        let mut t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        t.insert(row(1, 11, 6)).unwrap();
        let undo = t.delete(slot).unwrap();
        t.apply_undo(&undo).unwrap();
        let (s2, r) = t.get(&Key::ints(&[1, 10])).unwrap();
        assert_eq!(s2, slot);
        assert_eq!(r.int(2), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn undo_stack_reverses_step() {
        // Simulate a step that does insert + update + delete, then roll it
        // back in reverse order.
        let mut t = table();
        t.insert(row(1, 1, 1)).unwrap();
        let mut undos = Vec::new();
        let (s, u) = t.insert(row(2, 2, 2)).unwrap();
        undos.push(u);
        undos.push(
            t.update_with(s, |r| {
                r.set(2, Value::Int(9));
            })
            .unwrap(),
        );
        let (s1, _) = t
            .get(&Key::ints(&[1, 1]))
            .map(|(s, r)| (s, r.clone()))
            .unwrap();
        undos.push(t.delete(s1).unwrap());
        for u in undos.iter().rev() {
            t.apply_undo(u).unwrap();
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&Key::ints(&[1, 1])).unwrap().1.int(2), 1);
        assert!(t.get(&Key::ints(&[2, 2])).is_none());
    }

    #[test]
    fn insert_at_beyond_end_frees_gap_slots() {
        let mut t = table();
        t.insert_at(5, row(1, 1, 1)).unwrap();
        // Slots 0..5 became free; subsequent inserts reuse them.
        for i in 2..7 {
            let (s, _) = t.insert(row(1, i, 0)).unwrap();
            assert!(s < 5, "expected gap slot, got {s}");
        }
        // Gap exhausted: next insert extends the heap.
        let (s, _) = t.insert(row(1, 99, 0)).unwrap();
        assert_eq!(s, 6);
        // Occupied-slot collision is an error.
        assert!(t.insert_at(5, row(9, 9, 9)).is_err());
    }

    #[test]
    fn schema_violation_rejected() {
        let mut t = table();
        assert!(t.insert(Row::from(vec![Value::Int(1)])).is_err());
        assert!(t
            .insert(Row::from(vec![Value::Null, Value::Int(1), Value::Int(1)]))
            .is_err());
    }
}
