//! Heap tables over the paged B-tree ([`crate::btree`]): page-granularity
//! physical latching, slot-stable heap addressing, optional secondary
//! indices, and per-key MVCC-lite version chains.
//!
//! Rows live in *slots*; a freed slot is reused by the next insert, so slot
//! numbers (and therefore page assignments and lock resources) stay dense and
//! stable. `slot / rows_per_page` is the *logical* page number the lock
//! manager locks — unchanged across the paged-storage refactor, so WAL bytes
//! and lock schedules are byte-identical with the old flat layout. Physical
//! pages (the tree's leaves, latched by the pager) are a separate notion:
//! page latches protect individual node reads/writes and are never held
//! across a logical lock wait, a WAL append, or a step boundary.
//!
//! Every method takes `&self`: concurrency control lives in the per-page
//! latches, a slot-allocator mutex, per-index locks, and (for tables with
//! secondary indices) a writer/reader gate that keeps the version-read
//! secondary fast path sound. The whole-table stripe lock is gone.

use crate::btree::{BTree, LeafEntry};
use crate::pager::PagerCounters;
use crate::predicate::Predicate;
use crate::row::{Key, Row};
use crate::schema::TableSchema;
use crate::undo::UndoRecord;
use crate::version::{prune_chain, reconstruct, ChainEntry, CommitResolver, Visibility};
use acc_common::{Error, PageNo, ResourceId, Result, Slot, TxnId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard};

/// Slot allocator: LIFO free list plus the slot → primary-key map. The LIFO
/// discipline and the gap-filling rules are load-bearing — `peek / lock /
/// re-peek` insert protocols and WAL `Update` records both encode slot
/// numbers, so allocation order must stay byte-identical across refactors.
#[derive(Debug, Clone, Default)]
struct SlotAlloc {
    slot_key: Vec<Option<Key>>,
    free: Vec<Slot>,
}

impl SlotAlloc {
    fn peek(&self) -> Slot {
        self.free
            .last()
            .copied()
            .unwrap_or(self.slot_key.len() as Slot)
    }

    fn take(&mut self, key: &Key) -> Slot {
        match self.free.pop() {
            Some(s) => {
                self.slot_key[s as usize] = Some(key.clone());
                s
            }
            None => {
                self.slot_key.push(Some(key.clone()));
                (self.slot_key.len() - 1) as Slot
            }
        }
    }

    fn release(&mut self, slot: Slot) {
        self.slot_key[slot as usize] = None;
        self.free.push(slot);
    }

    fn key_of(&self, slot: Slot) -> Option<Key> {
        self.slot_key.get(slot as usize).cloned().flatten()
    }
}

/// Outcome of a combined versioned update ([`Table::update_versioned`]).
pub enum VersionedUpdate {
    /// Row mutated and pending version pushed atomically under one leaf
    /// latch.
    Applied {
        /// Undo record for the step's undo stack.
        undo: UndoRecord,
        /// The row image after the update (for the WAL record).
        after: Row,
    },
    /// The slot no longer holds that key (the row moved while the caller
    /// waited for its lock) — re-resolve and retry.
    Retry,
}

fn mlock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One heap table.
pub struct Table {
    schema: TableSchema,
    /// The paged primary tree: rows, tombstones, and version chains, all
    /// keyed by primary key.
    tree: BTree,
    alloc: Mutex<SlotAlloc>,
    secondary: Vec<RwLock<BTreeMap<Key, BTreeSet<Slot>>>>,
    /// Writer/reader gate for the secondary version fast path, used only
    /// when the table has secondary indices. Mutators hold the *read* side
    /// (they stay concurrent with each other — row-disjointness comes from
    /// the logical lock protocol); [`Table::lookup_secondary_at`] takes the
    /// *write* side, freezing mutators for the duration of the fast-path
    /// read so the index range + chain precheck see one consistent state.
    sec_gate: RwLock<()>,
    /// Keys with (possibly) live version chains: the worklist for prune
    /// and the precheck set for the secondary fast path. Mutated only
    /// *after* the corresponding tree write (never while a leaf latch is
    /// held); prune holds this mutex across its per-key tree ops so
    /// emptiness checks and set removal stay atomic.
    chained: Mutex<BTreeSet<Key>>,
    /// Per-transaction chained keys: the finalize worklist, so commit and
    /// abort walk only the finishing transaction's own write set rather
    /// than every in-flight chain in the table. Drained by
    /// [`Table::finalize_versions`]; a transaction whose commit dies on a
    /// sticky device failure leaves its entry behind, alongside its
    /// forever-pending chain entries (bounded by the failure being
    /// terminal).
    txn_chained: Mutex<BTreeMap<TxnId, BTreeSet<Key>>>,
    live: AtomicUsize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        let secondary = schema
            .secondary
            .iter()
            .map(|_| RwLock::new(BTreeMap::new()))
            .collect();
        let tree = BTree::new(schema.rows_per_page);
        Table {
            schema,
            tree,
            alloc: Mutex::new(SlotAlloc::default()),
            secondary,
            sec_gate: RwLock::new(()),
            chained: Mutex::new(BTreeSet::new()),
            txn_chained: Mutex::new(BTreeMap::new()),
            live: AtomicUsize::new(0),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.live.load(Relaxed)
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The *logical* page a slot lives on (lock-manager granularity; not a
    /// pager page).
    pub fn page_of(&self, slot: Slot) -> PageNo {
        (slot / self.schema.rows_per_page as Slot) as PageNo
    }

    /// The page-granularity lock resource covering `slot`.
    pub fn page_resource(&self, slot: Slot) -> ResourceId {
        ResourceId::Page(self.schema.id, self.page_of(slot))
    }

    /// This table's pager counters (page latch traffic, splits, merges,
    /// restarts).
    pub fn pager_counters(&self) -> PagerCounters {
        self.tree.counters()
    }

    /// The slot the next [`Table::insert`] will use (assuming no intervening
    /// mutation). Callers that must lock the target page *before* inserting
    /// peek, lock, then re-peek to confirm.
    pub fn peek_next_slot(&self) -> Slot {
        mlock(&self.alloc).peek()
    }

    /// The primary key stored in `slot`, if live.
    pub fn key_of_slot(&self, slot: Slot) -> Option<Key> {
        mlock(&self.alloc).key_of(slot)
    }

    /// Mutators on a table with secondary indices hold the shared side of
    /// the gate (see the field docs).
    fn writer_gate(&self) -> Option<RwLockReadGuard<'_, ()>> {
        if self.secondary.is_empty() {
            None
        } else {
            Some(self.sec_gate.read().unwrap_or_else(PoisonError::into_inner))
        }
    }

    fn dup_err(&self, key: &Key) -> Error {
        Error::DuplicateKey(format!("{}{key}", self.schema.name))
    }

    /// True if `key` currently has a live row.
    fn key_live(&self, key: &Key) -> bool {
        self.tree
            .read_entry(key, |e| e.is_some_and(|e| e.row.is_some()))
    }

    /// Insert a row. Returns the slot it went into and the undo record.
    pub fn insert(&self, row: Row) -> Result<(Slot, UndoRecord)> {
        self.schema.check(&row)?;
        let key = self.schema.key_of(&row);
        let _gate = self.writer_gate();
        // Duplicate check before allocating, so a rejected insert leaves the
        // free list untouched (allocation order is durability-visible).
        // Single-writer-per-key comes from the logical lock protocol; the
        // upsert below re-checks under the leaf latch as the authority.
        if self.key_live(&key) {
            return Err(self.dup_err(&key));
        }
        let slot = mlock(&self.alloc).take(&key);
        self.insert_entry(slot, key, row)?;
        Ok((
            slot,
            UndoRecord::Insert {
                table: self.schema.id,
                slot,
            },
        ))
    }

    /// Plant `row` at `slot` in the tree (reviving a tombstone's chain if
    /// the key died before), then maintain the secondary indices and the
    /// live count. The allocator must already map `slot` to the row's key.
    fn insert_entry(&self, slot: Slot, key: Key, row: Row) -> Result<()> {
        let projs = self.projections(&row);
        let planted = self.tree.upsert(&key, |entries, idx, exists| {
            if exists {
                let e = &mut entries[idx];
                if e.row.is_some() {
                    return false;
                }
                // Tombstone revival: the key's pre-delete history stays on
                // the entry; the new incarnation adopts the new slot.
                e.slot = slot;
                e.row = Some(row);
            } else {
                entries.insert(
                    idx,
                    LeafEntry {
                        key: key.clone(),
                        slot,
                        row: Some(row),
                        chain: Vec::new(),
                    },
                );
            }
            true
        });
        if !planted {
            // Lost a (protocol-violating) race to another inserter: undo the
            // allocation and report the duplicate.
            mlock(&self.alloc).release(slot);
            return Err(self.dup_err(&key));
        }
        self.secondary_insert(slot, &projs);
        self.live.fetch_add(1, Relaxed);
        Ok(())
    }

    /// The slot holding `key`, if present.
    pub fn slot_of(&self, key: &Key) -> Option<Slot> {
        self.tree
            .read_entry(key, |e| e.filter(|e| e.row.is_some()).map(|e| e.slot))
    }

    /// The row in `slot`, if live.
    pub fn row(&self, slot: Slot) -> Option<Row> {
        let key = self.key_of_slot(slot)?;
        self.tree
            .read_entry(&key, |e| e.and_then(|e| e.row.clone()))
    }

    /// The row with the given primary key.
    pub fn get(&self, key: &Key) -> Option<(Slot, Row)> {
        self.tree
            .read_entry(key, |e| e.and_then(|e| Some((e.slot, e.row.clone()?))))
    }

    /// Replace the row in `slot` wholesale. The new row may change the
    /// primary key (rejected if the new key already exists elsewhere).
    pub fn update(&self, slot: Slot, new: Row) -> Result<UndoRecord> {
        self.schema.check(&new)?;
        let old_key = self
            .key_of_slot(slot)
            .ok_or_else(|| Error::NotFound(format!("{} slot {slot}", self.schema.name)))?;
        let new_key = self.schema.key_of(&new);
        let _gate = self.writer_gate();
        let before = if new_key == old_key {
            let new_img = new.clone();
            self.tree.with_entry(&old_key, move |e| match e {
                Some(e) if e.slot == slot && e.row.is_some() => {
                    Ok(e.row.replace(new_img).expect("checked live"))
                }
                _ => Err(Error::NotFound(format!("{} slot {slot}", self.schema.name))),
            })?
        } else {
            if self.key_live(&new_key) {
                return Err(self.dup_err(&new_key));
            }
            // Key-changing update (tests only; TPC-C never moves a key):
            // the old key's entry disappears entirely — its chain follows
            // the *slot* to the new key, spliced behind the new key's
            // revived tombstone history, exactly like the old flat layout.
            // Readers of either key will see a key-mismatched chain and
            // taint, which is the intended fallback signal.
            let (before, moved_chain) = self.tree.remove_if(&old_key, |e| match e {
                Some(e) if e.slot == slot && e.row.is_some() => {
                    let b = e.row.take().expect("checked live");
                    let c = std::mem::take(&mut e.chain);
                    (Ok((b, c)), true)
                }
                _ => (
                    Err(Error::NotFound(format!("{} slot {slot}", self.schema.name))),
                    false,
                ),
            })?;
            let new_img = new.clone();
            let nk = new_key.clone();
            let has_chain = self.tree.upsert(&new_key, move |entries, idx, exists| {
                if exists {
                    let e = &mut entries[idx];
                    e.slot = slot;
                    e.row = Some(new_img);
                    e.chain.extend(moved_chain);
                    !e.chain.is_empty()
                } else {
                    let has = !moved_chain.is_empty();
                    entries.insert(
                        idx,
                        LeafEntry {
                            key: nk,
                            slot,
                            row: Some(new_img),
                            chain: moved_chain,
                        },
                    );
                    has
                }
            });
            mlock(&self.alloc).slot_key[slot as usize] = Some(new_key.clone());
            let mut chained = mlock(&self.chained);
            chained.remove(&old_key);
            if has_chain {
                chained.insert(new_key);
            }
            before
        };
        self.secondary_remove(slot, &self.projections(&before));
        self.secondary_insert(slot, &self.projections(&new));
        Ok(UndoRecord::Update {
            table: self.schema.id,
            slot,
            before,
        })
    }

    /// Update the row in `slot` in place via a closure.
    pub fn update_with(&self, slot: Slot, f: impl FnOnce(&mut Row)) -> Result<UndoRecord> {
        let mut new = self
            .row(slot)
            .ok_or_else(|| Error::NotFound(format!("{} slot {slot}", self.schema.name)))?;
        f(&mut new);
        self.update(slot, new)
    }

    /// Delete the row in `slot`. The entry stays behind as a tombstone if
    /// it still carries version history; otherwise it is removed (with a
    /// rebalancing descent).
    pub fn delete(&self, slot: Slot) -> Result<UndoRecord> {
        let key = self
            .key_of_slot(slot)
            .ok_or_else(|| Error::NotFound(format!("{} slot {slot}", self.schema.name)))?;
        let _gate = self.writer_gate();
        let before = self.tree.remove_if(&key, |e| match e {
            Some(e) if e.slot == slot && e.row.is_some() => {
                let b = e.row.take().expect("checked live");
                let gone = e.chain.is_empty();
                (Ok(b), gone)
            }
            _ => (
                Err(Error::NotFound(format!("{} slot {slot}", self.schema.name))),
                false,
            ),
        })?;
        mlock(&self.alloc).release(slot);
        self.secondary_remove(slot, &self.projections(&before));
        self.live.fetch_sub(1, Relaxed);
        Ok(UndoRecord::Delete {
            table: self.schema.id,
            slot,
            before,
        })
    }

    /// Delete by primary key.
    pub fn delete_by_key(&self, key: &Key) -> Result<(Slot, UndoRecord)> {
        let slot = self
            .slot_of(key)
            .ok_or_else(|| Error::NotFound(format!("{}{key}", self.schema.name)))?;
        Ok((slot, self.delete(slot)?))
    }

    /// All live rows in primary-key order. Collected under short leaf read
    /// latches, then handed back as an owned iterator.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, Row)> {
        self.tree
            .scan_collect(
                &Key(Vec::new()),
                |_| true,
                |e| Some((e.slot, e.row.clone()?)),
                usize::MAX,
            )
            .into_iter()
    }

    /// Live rows satisfying `pred`, in primary-key order.
    pub fn scan(&self, pred: &Predicate) -> impl Iterator<Item = (Slot, Row)> {
        self.tree
            .scan_collect(
                &Key(Vec::new()),
                |_| true,
                |e| {
                    let r = e.row.as_ref()?;
                    if pred.eval(r) {
                        Some((e.slot, r.clone()))
                    } else {
                        None
                    }
                },
                usize::MAX,
            )
            .into_iter()
    }

    /// Rows whose primary key begins with `prefix`, in key order.
    ///
    /// Lexicographic key ordering makes the matching keys a contiguous tree
    /// range starting at `prefix` itself.
    pub fn scan_prefix(&self, prefix: &Key) -> impl Iterator<Item = (Slot, Row)> {
        self.tree
            .scan_collect(
                prefix,
                |k| k.starts_with(prefix),
                |e| Some((e.slot, e.row.clone()?)),
                usize::MAX,
            )
            .into_iter()
    }

    /// The first live row whose primary key begins with `prefix` — an
    /// early-terminating descent (the tree analogue of
    /// `scan_prefix(..).next()`, without walking the rest of the range).
    pub fn first_in_prefix(&self, prefix: &Key) -> Option<(Slot, Row)> {
        self.tree
            .scan_collect(
                prefix,
                |k| k.starts_with(prefix),
                |e| Some((e.slot, e.row.clone()?)),
                1,
            )
            .pop()
    }

    /// Live rows with primary key in `[lo, hi)`, in key order — one range
    /// descent instead of per-prefix rescans.
    pub fn scan_range(&self, lo: &Key, hi: &Key) -> Vec<(Slot, Row)> {
        self.tree.scan_collect(
            lo,
            |k| k < hi,
            |e| Some((e.slot, e.row.clone()?)),
            usize::MAX,
        )
    }

    /// Slots whose secondary index `idx` key begins with `prefix`, in key
    /// order.
    pub fn lookup_secondary(&self, idx: usize, prefix: &Key) -> Vec<Slot> {
        self.secondary[idx]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .flat_map(|(_, slots)| slots.iter().copied())
            .collect()
    }

    /// Apply an undo record produced by this table.
    pub fn apply_undo(&self, undo: &UndoRecord) -> Result<()> {
        debug_assert_eq!(undo.table(), self.schema.id);
        match undo {
            UndoRecord::Insert { slot, .. } => {
                // `delete` leaves the entry behind as a tombstone when it
                // carries a chain, which is exactly where the key's
                // pre-revival history (plus the now-moot insert entry) must
                // live for version readers.
                self.delete(*slot)?;
            }
            UndoRecord::Update { slot, before, .. } => {
                self.update(*slot, before.clone())?;
            }
            UndoRecord::Delete { slot, before, .. } => {
                // `insert_at` revives the key onto the same slot; the
                // tombstone's chain stays on the entry, which is the
                // inverse of the move in `push_delete_version`.
                self.insert_at(*slot, before.clone())?;
            }
        }
        Ok(())
    }

    // ----- MVCC-lite version chains (see `crate::version`) ----------------

    /// Record `key` as (possibly) carrying a live chain, and as part of
    /// `txn`'s write set for finalize. Called after the tree write
    /// completes — never while a leaf latch is held.
    fn note_chained(&self, txn: TxnId, key: Key) {
        mlock(&self.txn_chained)
            .entry(txn)
            .or_default()
            .insert(key.clone());
        mlock(&self.chained).insert(key);
    }

    /// Record a pending version for a mutation of `slot`: `before` is the
    /// full row image prior to the write (`None` for an insert). Called by
    /// the transaction layer next to the mutation. (The combined
    /// `*_versioned` ops below do mutation + push under one leaf latch;
    /// this split variant remains for single-threaded callers and tests.)
    pub fn push_version(&self, slot: Slot, txn: TxnId, before: Option<Row>) {
        let key = self
            .key_of_slot(slot)
            .expect("push_version targets a live slot");
        self.tree.with_entry(&key, |e| {
            e.expect("live slot has an entry")
                .chain
                .push(ChainEntry::Pending { txn, before });
        });
        self.note_chained(txn, key);
    }

    /// Record a pending version for a *delete* of `key` at `slot`, after
    /// the physical delete already ran. The entry (recreated if the
    /// physical delete removed it) becomes a tombstone carrying the delete
    /// entry on top of the key's surviving history.
    pub fn push_delete_version(&self, key: Key, slot: Slot, txn: TxnId, before: Row) {
        self.tree.upsert(&key, |entries, idx, exists| {
            let entry = ChainEntry::Pending {
                txn,
                before: Some(before),
            };
            if exists {
                let e = &mut entries[idx];
                debug_assert!(e.row.is_none(), "delete version on a live row");
                e.chain.push(entry);
            } else {
                entries.insert(
                    idx,
                    LeafEntry {
                        key: key.clone(),
                        slot,
                        row: None,
                        chain: vec![entry],
                    },
                );
            }
        });
        self.note_chained(txn, key);
    }

    // ----- Combined versioned mutators (one leaf latch) -------------------
    //
    // The transaction layer needs "mutate row + push pending version" to be
    // atomic with respect to coordination-free version readers — the old
    // whole-table stripe lock provided that for free; here the pair runs
    // under a single leaf write latch.

    /// Versioned insert: verify the allocator still predicts
    /// `expected_slot` (the peek/lock/re-peek protocol), allocate it, plant
    /// the row, and push the pending insert version — the plant and the
    /// push under one leaf latch. `Ok(None)` means the predicted slot moved
    /// while the caller waited for its lock: re-peek and retry.
    pub fn insert_versioned(
        &self,
        row: Row,
        txn: TxnId,
        expected_slot: Slot,
    ) -> Result<Option<(Slot, Key, UndoRecord)>> {
        self.schema.check(&row)?;
        let key = self.schema.key_of(&row);
        let _gate = self.writer_gate();
        if self.key_live(&key) {
            return Err(self.dup_err(&key));
        }
        let slot = {
            let mut a = mlock(&self.alloc);
            if a.peek() != expected_slot {
                return Ok(None);
            }
            a.take(&key)
        };
        let projs = self.projections(&row);
        let planted = self.tree.upsert(&key, |entries, idx, exists| {
            if exists {
                let e = &mut entries[idx];
                if e.row.is_some() {
                    return false;
                }
                e.slot = slot;
                e.row = Some(row);
                e.chain.push(ChainEntry::Pending { txn, before: None });
            } else {
                entries.insert(
                    idx,
                    LeafEntry {
                        key: key.clone(),
                        slot,
                        row: Some(row),
                        chain: vec![ChainEntry::Pending { txn, before: None }],
                    },
                );
            }
            true
        });
        if !planted {
            mlock(&self.alloc).release(slot);
            return Err(self.dup_err(&key));
        }
        self.secondary_insert(slot, &projs);
        self.live.fetch_add(1, Relaxed);
        self.note_chained(txn, key.clone());
        Ok(Some((
            slot,
            key,
            UndoRecord::Insert {
                table: self.schema.id,
                slot,
            },
        )))
    }

    /// Versioned in-place update of `key` (which the caller resolved to
    /// `expected_slot` before locking): apply `f` to the row and push the
    /// pending version under one leaf latch. Returns
    /// [`VersionedUpdate::Retry`] if the slot no longer holds that key.
    ///
    /// A key-changing `f` falls back to the split physical-update +
    /// push-version path (non-atomic, like the old layout); the resulting
    /// key-mismatched chain taints version readers, which is the intended
    /// signal.
    pub fn update_versioned(
        &self,
        key: &Key,
        expected_slot: Slot,
        txn: TxnId,
        f: impl FnOnce(&mut Row),
    ) -> Result<VersionedUpdate> {
        let _gate = self.writer_gate();
        enum Inner {
            Applied { before: Row, after: Row },
            KeyChanged { before: Row, after: Row },
            Retry,
        }
        let out: Result<Inner> = self.tree.with_entry(key, |e| match e {
            Some(e) if e.slot == expected_slot && e.row.is_some() => {
                let before = e.row.clone().expect("checked live");
                let mut after = before.clone();
                f(&mut after);
                self.schema.check(&after)?;
                if self.schema.key_of(&after) != *key {
                    return Ok(Inner::KeyChanged { before, after });
                }
                e.row = Some(after.clone());
                e.chain.push(ChainEntry::Pending {
                    txn,
                    before: Some(before.clone()),
                });
                Ok(Inner::Applied { before, after })
            }
            _ => Ok(Inner::Retry),
        });
        match out? {
            Inner::Retry => Ok(VersionedUpdate::Retry),
            Inner::Applied { before, after } => {
                self.secondary_remove(expected_slot, &self.projections(&before));
                self.secondary_insert(expected_slot, &self.projections(&after));
                self.note_chained(txn, key.clone());
                Ok(VersionedUpdate::Applied {
                    undo: UndoRecord::Update {
                        table: self.schema.id,
                        slot: expected_slot,
                        before,
                    },
                    after,
                })
            }
            Inner::KeyChanged { before, after } => {
                drop(_gate);
                let undo = self.update(expected_slot, after.clone())?;
                self.push_version(expected_slot, txn, Some(before));
                Ok(VersionedUpdate::Applied { undo, after })
            }
        }
    }

    /// Versioned delete of `key` at `expected_slot`: take the row and push
    /// the pending delete version under one leaf latch (the entry stays as
    /// a tombstone). `Ok(None)` means the slot no longer holds that key —
    /// re-resolve and retry.
    pub fn delete_versioned(
        &self,
        key: &Key,
        expected_slot: Slot,
        txn: TxnId,
    ) -> Result<Option<(UndoRecord, Row)>> {
        let _gate = self.writer_gate();
        let taken = self.tree.with_entry(key, |e| match e {
            Some(e) if e.slot == expected_slot && e.row.is_some() => {
                let before = e.row.take().expect("checked live");
                e.chain.push(ChainEntry::Pending {
                    txn,
                    before: Some(before.clone()),
                });
                Some(before)
            }
            _ => None,
        });
        let Some(before) = taken else {
            return Ok(None);
        };
        mlock(&self.alloc).release(expected_slot);
        self.secondary_remove(expected_slot, &self.projections(&before));
        self.live.fetch_sub(1, Relaxed);
        self.note_chained(txn, key.clone());
        Ok(Some((
            UndoRecord::Delete {
                table: self.schema.id,
                slot: expected_slot,
                before: before.clone(),
            },
            before,
        )))
    }

    /// Finalize every pending entry of `txn` in this table at `commit_lsn`
    /// (the `Commit` record's LSN, or the `Abort` record's on rollback).
    /// Walks (and drains) the transaction's own chained-key write set — a
    /// writer's keys are always in it by the time its commit runs, and
    /// only its own keys can hold its `Pending` entries, so commit cost
    /// scales with the write set rather than with every in-flight chain in
    /// the table. Returns the number of entries finalized.
    pub fn finalize_versions(&self, txn: TxnId, commit_lsn: u64) -> usize {
        let keys = mlock(&self.txn_chained).remove(&txn).unwrap_or_default();
        let mut n = 0;
        for key in keys {
            n += self.tree.with_entry(&key, |e| {
                let Some(e) = e else { return 0 };
                let mut k = 0;
                for entry in e.chain.iter_mut() {
                    if matches!(entry, ChainEntry::Pending { txn: t, .. } if *t == txn) {
                        let before = entry.before().cloned();
                        *entry = ChainEntry::Committed { commit_lsn, before };
                        k += 1;
                    }
                }
                k
            });
        }
        n
    }

    /// Prune chains against the low-watermark (see [`crate::version`]):
    /// drop all-visible prefixes, empty chains, and tombstone entries whose
    /// whole history fell below the watermark. Holds the chained-set mutex
    /// across each per-key tree op so emptiness and set membership stay in
    /// step with concurrent pushes.
    pub fn prune_versions(&self, watermark: u64) {
        let _gate = self.writer_gate();
        let mut chained = mlock(&self.chained);
        chained.retain(|key| {
            self.tree.remove_if(key, |e| match e {
                None => (false, false),
                Some(e) => {
                    let emptied = prune_chain(&mut e.chain, watermark);
                    if emptied && e.row.is_none() {
                        // Settled tombstone: nothing left to reconstruct.
                        (false, true)
                    } else {
                        (!e.chain.is_empty(), false)
                    }
                }
            })
        });
    }

    /// Number of live version chains; test/diagnostic helper.
    pub fn n_version_chains(&self) -> usize {
        mlock(&self.chained)
            .iter()
            .filter(|k| {
                self.tree
                    .read_entry(k, |e| e.is_some_and(|e| !e.chain.is_empty()))
            })
            .count()
    }

    /// True if any image in `chain` (or `current`) carries a primary key
    /// other than `key` — a key-changing update went through this slot, so
    /// the chain no longer describes one row's history and version reads
    /// must fall back.
    fn chain_key_mismatch(&self, key: &Key, current: Option<&Row>, chain: &[ChainEntry]) -> bool {
        current
            .into_iter()
            .chain(chain.iter().filter_map(|e| e.before()))
            .any(|r| self.schema.key_of(r) != *key)
    }

    /// The row image with primary key `key` as visible at `view`
    /// (coordination-free point read: one optimistic descent, entry state
    /// cloned under the leaf's read latch). `commits` resolves Pending
    /// entries of transactions whose commit record is already appended (see
    /// [`CommitResolver`]).
    pub fn read_at(
        &self,
        key: &Key,
        view: u64,
        reader: TxnId,
        commits: &dyn CommitResolver,
    ) -> Visibility {
        let found = self
            .tree
            .read_entry(key, |e| e.map(|e| (e.row.clone(), e.chain.clone())));
        match found {
            None => Visibility::Visible(None),
            Some((current, chain)) => {
                if self.chain_key_mismatch(key, current.as_ref(), &chain) {
                    return Visibility::Tainted;
                }
                reconstruct(current.as_ref(), &chain, view, reader, commits)
            }
        }
    }

    /// All row images whose primary key begins with `prefix`, as visible at
    /// `view`, in key order. `None` means some row could not be soundly
    /// reconstructed — fall back to a locked scan. Tombstone entries sit
    /// inline in the tree, so one range scan covers live and deleted keys.
    pub fn scan_prefix_at(
        &self,
        prefix: &Key,
        view: u64,
        reader: TxnId,
        commits: &dyn CommitResolver,
    ) -> Option<Vec<Row>> {
        self.reconstruct_collected(
            self.tree.scan_collect(
                prefix,
                |k| k.starts_with(prefix),
                |e| Some((e.key.clone(), e.row.clone(), e.chain.clone())),
                usize::MAX,
            ),
            view,
            reader,
            commits,
        )
    }

    /// All row images with primary key in `[lo, hi)`, as visible at `view`,
    /// in key order. `None` means fall back to a locked scan.
    pub fn scan_range_at(
        &self,
        lo: &Key,
        hi: &Key,
        view: u64,
        reader: TxnId,
        commits: &dyn CommitResolver,
    ) -> Option<Vec<Row>> {
        self.reconstruct_collected(
            self.tree.scan_collect(
                lo,
                |k| k < hi,
                |e| Some((e.key.clone(), e.row.clone(), e.chain.clone())),
                usize::MAX,
            ),
            view,
            reader,
            commits,
        )
    }

    fn reconstruct_collected(
        &self,
        entries: Vec<(Key, Option<Row>, Vec<ChainEntry>)>,
        view: u64,
        reader: TxnId,
        commits: &dyn CommitResolver,
    ) -> Option<Vec<Row>> {
        let mut out = Vec::new();
        for (k, current, chain) in &entries {
            if self.chain_key_mismatch(k, current.as_ref(), chain) {
                return None;
            }
            match reconstruct(current.as_ref(), chain, view, reader, commits) {
                Visibility::Tainted => return None,
                Visibility::Visible(Some(r)) => out.push(r),
                Visibility::Visible(None) => {}
            }
        }
        Some(out)
    }

    /// All row images whose secondary index `idx` key begins with `prefix`,
    /// as visible at `view`, ordered by (secondary key, primary key).
    /// `None` means fall back to a locked lookup.
    ///
    /// The secondary index describes *current* rows only, so this is sound
    /// only while no live chain changes a row's secondary projection — we
    /// verify that over the (small, pruned) chained-key set and fall back
    /// if any projection moved. The exclusive side of the writer gate
    /// freezes mutators and prune for the duration, so the precheck, the
    /// index range, and the chain walks see one consistent state.
    pub fn lookup_secondary_at(
        &self,
        idx: usize,
        prefix: &Key,
        view: u64,
        reader: TxnId,
        commits: &dyn CommitResolver,
    ) -> Option<Vec<Row>> {
        let cols = &self.schema.secondary[idx];
        let _gate = self
            .sec_gate
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let chained: Vec<Key> = mlock(&self.chained).iter().cloned().collect();
        // If any live chained row's projection differs between images, the
        // index range below could miss a historically-matching row.
        // (Tombstones are exempt: the pass at the bottom scans them all, so
        // nothing can be missed.)
        for k in &chained {
            let stable = self.tree.read_entry(k, |e| {
                let Some(e) = e else { return true };
                let Some(current) = &e.row else { return true };
                let p = current.project(cols);
                e.chain
                    .iter()
                    .filter_map(|c| c.before())
                    .all(|r| r.project(cols) == p)
            });
            if !stable {
                return None;
            }
        }
        let mut out: BTreeMap<(Key, Key), Row> = BTreeMap::new();
        let hits: Vec<Slot> = self.secondary[idx]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .flat_map(|(_, slots)| slots.iter().copied())
            .collect();
        for slot in hits {
            let key = self
                .key_of_slot(slot)
                .expect("indexed slot holds a live row under the gate");
            let (current, chain) = self
                .tree
                .read_entry(&key, |e| e.map(|e| (e.row.clone(), e.chain.clone())))
                .expect("indexed key has an entry under the gate");
            match reconstruct(current.as_ref(), &chain, view, reader, commits) {
                Visibility::Tainted => return None,
                Visibility::Visible(Some(r)) => {
                    let sk = r.project(cols);
                    if sk.starts_with(prefix) {
                        let pk = self.schema.key_of(&r);
                        out.insert((sk, pk), r);
                    }
                }
                Visibility::Visible(None) => {}
            }
        }
        // Deleted keys may still be visible at an older view; their
        // tombstone entries are all in the chained set.
        for k in &chained {
            let Some((None, chain)) = self
                .tree
                .read_entry(k, |e| e.map(|e| (e.row.clone(), e.chain.clone())))
            else {
                continue;
            };
            match reconstruct(None, &chain, view, reader, commits) {
                Visibility::Tainted => return None,
                Visibility::Visible(Some(r)) => {
                    let sk = r.project(cols);
                    if sk.starts_with(prefix) {
                        let pk = self.schema.key_of(&r);
                        out.insert((sk, pk), r);
                    }
                }
                Visibility::Visible(None) => {}
            }
        }
        Some(out.into_values().collect())
    }

    /// Re-insert a row at a specific slot (undo of delete, and WAL redo).
    pub fn insert_at(&self, slot: Slot, row: Row) -> Result<()> {
        self.schema.check(&row)?;
        let key = self.schema.key_of(&row);
        let _gate = self.writer_gate();
        if self.key_live(&key) {
            return Err(self.dup_err(&key));
        }
        {
            let mut a = mlock(&self.alloc);
            let idx = slot as usize;
            if idx >= a.slot_key.len() {
                // Newly materialized empty slots (the gap below `slot`)
                // become reusable.
                for s in a.slot_key.len()..idx {
                    a.free.push(s as Slot);
                }
                a.slot_key.resize(idx + 1, None);
            }
            if a.slot_key[idx].is_some() {
                return Err(Error::Internal(format!(
                    "{} slot {slot} already occupied",
                    self.schema.name
                )));
            }
            a.free.retain(|&s| s != slot);
            a.slot_key[idx] = Some(key.clone());
        }
        self.insert_entry(slot, key, row)
    }

    fn projections(&self, row: &Row) -> Vec<Key> {
        self.schema
            .secondary
            .iter()
            .map(|cols| row.project(cols))
            .collect()
    }

    fn secondary_insert(&self, slot: Slot, projs: &[Key]) {
        for (i, k) in projs.iter().enumerate() {
            self.secondary[i]
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(k.clone())
                .or_default()
                .insert(slot);
        }
    }

    fn secondary_remove(&self, slot: Slot, projs: &[Key]) {
        for (i, k) in projs.iter().enumerate() {
            let mut idx = self.secondary[i]
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(set) = idx.get_mut(k) {
                set.remove(&slot);
                if set.is_empty() {
                    idx.remove(k);
                }
            }
        }
    }
}

impl Clone for Table {
    /// Deep clone — walks the tree and rebuilds. Like the old stripe-held
    /// clone, this is only consistent at quiescent points (snapshots assert
    /// quiescence at the `SharedDb` layer).
    fn clone(&self) -> Table {
        let t = Table::new(self.schema.clone());
        *mlock(&t.alloc) = mlock(&self.alloc).clone();
        *mlock(&t.chained) = mlock(&self.chained).clone();
        let entries: Vec<LeafEntry> =
            self.tree
                .scan_collect(&Key(Vec::new()), |_| true, |e| Some(e.clone()), usize::MAX);
        let mut live = 0;
        for e in entries {
            if let Some(row) = &e.row {
                live += 1;
                t.secondary_insert(e.slot, &t.projections(row));
            }
            t.tree.upsert(&e.key.clone(), move |entries, idx, exists| {
                debug_assert!(!exists, "clone walks distinct keys");
                entries.insert(idx, e);
            });
        }
        t.live.store(live, Relaxed);
        t
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.schema.name)
            .field("rows", &self.len())
            .field("chains", &self.n_version_chains())
            .field("pager", &self.pager_counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableSchema};
    use acc_common::{TableId, Value};

    fn table() -> Table {
        let mut schema = TableSchema::builder("orderlines")
            .column("order_id", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("qty", ColumnType::Int)
            .key(&["order_id", "item_id"])
            .index(&["item_id"])
            .rows_per_page(4)
            .build();
        schema.id = TableId(0);
        Table::new(schema)
    }

    fn row(o: i64, i: i64, q: i64) -> Row {
        Row::from(vec![Value::Int(o), Value::Int(i), Value::Int(q)])
    }

    #[test]
    fn insert_get_delete() {
        let t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        assert_eq!(t.len(), 1);
        let (s2, r) = t.get(&Key::ints(&[1, 10])).unwrap();
        assert_eq!(s2, slot);
        assert_eq!(r.int(2), 5);
        t.delete(slot).unwrap();
        assert!(t.get(&Key::ints(&[1, 10])).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_key_rejected() {
        let t = table();
        t.insert(row(1, 10, 5)).unwrap();
        let err = t.insert(row(1, 10, 9)).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey(_)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn peek_next_slot_predicts_insert() {
        let t = table();
        assert_eq!(t.peek_next_slot(), 0);
        let (s0, _) = t.insert(row(1, 1, 1)).unwrap();
        assert_eq!(s0, 0);
        assert_eq!(t.peek_next_slot(), 1);
        t.delete(s0).unwrap();
        assert_eq!(t.peek_next_slot(), s0);
        let (s1, _) = t.insert(row(1, 2, 1)).unwrap();
        assert_eq!(s1, s0);
    }

    #[test]
    fn slots_are_reused() {
        let t = table();
        let (s0, _) = t.insert(row(1, 1, 1)).unwrap();
        t.insert(row(1, 2, 1)).unwrap();
        t.delete(s0).unwrap();
        let (s2, _) = t.insert(row(1, 3, 1)).unwrap();
        assert_eq!(s2, s0, "freed slot should be reused");
    }

    #[test]
    fn update_in_place() {
        let t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        let undo = t
            .update_with(slot, |r| {
                r.set(2, Value::Int(7));
            })
            .unwrap();
        assert_eq!(t.row(slot).unwrap().int(2), 7);
        t.apply_undo(&undo).unwrap();
        assert_eq!(t.row(slot).unwrap().int(2), 5);
    }

    #[test]
    fn update_changing_key_moves_index_entry() {
        let t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        t.update(slot, row(2, 20, 5)).unwrap();
        assert!(t.get(&Key::ints(&[1, 10])).is_none());
        assert_eq!(t.get(&Key::ints(&[2, 20])).unwrap().0, slot);
    }

    #[test]
    fn update_to_existing_key_rejected() {
        let t = table();
        let (s0, _) = t.insert(row(1, 10, 5)).unwrap();
        t.insert(row(2, 20, 5)).unwrap();
        assert!(matches!(
            t.update(s0, row(2, 20, 9)),
            Err(Error::DuplicateKey(_))
        ));
        // Original row untouched.
        assert_eq!(t.get(&Key::ints(&[1, 10])).unwrap().0, s0);
    }

    #[test]
    fn update_missing_slot_errors() {
        let t = table();
        assert!(matches!(t.update(5, row(1, 1, 1)), Err(Error::NotFound(_))));
        assert!(matches!(t.delete(5), Err(Error::NotFound(_))));
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let t = table();
        for (o, i) in [(1, 3), (1, 1), (2, 1), (1, 2), (3, 1)] {
            t.insert(row(o, i, 0)).unwrap();
        }
        let items: Vec<i64> = t
            .scan_prefix(&Key::ints(&[1]))
            .map(|(_, r)| r.int(1))
            .collect();
        assert_eq!(items, vec![1, 2, 3]);
        assert_eq!(t.scan_prefix(&Key::ints(&[9])).count(), 0);
        assert_eq!(t.scan_prefix(&Key::ints(&[1, 2])).count(), 1);
    }

    #[test]
    fn predicate_scan() {
        let t = table();
        for i in 0..10 {
            t.insert(row(1, i, i % 3)).unwrap();
        }
        let p = Predicate::eq(2, 0i64);
        assert_eq!(t.scan(&p).count(), 4); // qty 0 for i = 0,3,6,9
    }

    #[test]
    fn first_in_prefix_early_terminates() {
        let t = table();
        for (o, i) in [(2, 9), (1, 7), (1, 3), (3, 1), (1, 5)] {
            t.insert(row(o, i, 0)).unwrap();
        }
        let (_, r) = t.first_in_prefix(&Key::ints(&[1])).unwrap();
        assert_eq!(r.int(1), 3, "lowest key in the prefix");
        assert!(t.first_in_prefix(&Key::ints(&[9])).is_none());
    }

    #[test]
    fn scan_range_is_half_open() {
        let t = table();
        for o in 0..10 {
            t.insert(row(o, 0, 0)).unwrap();
        }
        let got: Vec<i64> = t
            .scan_range(&Key::ints(&[3]), &Key::ints(&[7]))
            .into_iter()
            .map(|(_, r)| r.int(0))
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
    }

    #[test]
    fn secondary_index_lookup() {
        let t = table();
        t.insert(row(1, 10, 5)).unwrap();
        t.insert(row(2, 10, 6)).unwrap();
        t.insert(row(3, 11, 7)).unwrap();
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[10])).len(), 2);
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[11])).len(), 1);
        assert!(t.lookup_secondary(0, &Key::ints(&[12])).is_empty());
        // Deleting maintains the secondary index.
        let (slot, _) = t.get(&Key::ints(&[1, 10])).unwrap();
        t.delete(slot).unwrap();
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[10])).len(), 1);
    }

    #[test]
    fn secondary_index_follows_updates() {
        let t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        // Changing item_id moves both the primary and the secondary entry.
        let undo = t
            .update_with(slot, |r| {
                r.set(1, Value::Int(99));
            })
            .unwrap();
        assert!(t.lookup_secondary(0, &Key::ints(&[10])).is_empty());
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[99])), vec![slot]);
        t.apply_undo(&undo).unwrap();
        assert_eq!(t.lookup_secondary(0, &Key::ints(&[10])), vec![slot]);
        assert!(t.lookup_secondary(0, &Key::ints(&[99])).is_empty());
    }

    #[test]
    fn page_mapping() {
        let t = table(); // rows_per_page = 4
        assert_eq!(t.page_of(0), 0);
        assert_eq!(t.page_of(3), 0);
        assert_eq!(t.page_of(4), 1);
        assert_eq!(t.page_resource(5), ResourceId::Page(TableId(0), 1));
    }

    #[test]
    fn undo_delete_restores_same_slot() {
        let t = table();
        let (slot, _) = t.insert(row(1, 10, 5)).unwrap();
        t.insert(row(1, 11, 6)).unwrap();
        let undo = t.delete(slot).unwrap();
        t.apply_undo(&undo).unwrap();
        let (s2, r) = t.get(&Key::ints(&[1, 10])).unwrap();
        assert_eq!(s2, slot);
        assert_eq!(r.int(2), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn undo_stack_reverses_step() {
        // Simulate a step that does insert + update + delete, then roll it
        // back in reverse order.
        let t = table();
        t.insert(row(1, 1, 1)).unwrap();
        let mut undos = Vec::new();
        let (s, u) = t.insert(row(2, 2, 2)).unwrap();
        undos.push(u);
        undos.push(
            t.update_with(s, |r| {
                r.set(2, Value::Int(9));
            })
            .unwrap(),
        );
        let (s1, _) = t.get(&Key::ints(&[1, 1])).unwrap();
        undos.push(t.delete(s1).unwrap());
        for u in undos.iter().rev() {
            t.apply_undo(u).unwrap();
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&Key::ints(&[1, 1])).unwrap().1.int(2), 1);
        assert!(t.get(&Key::ints(&[2, 2])).is_none());
    }

    #[test]
    fn insert_at_beyond_end_frees_gap_slots() {
        let t = table();
        t.insert_at(5, row(1, 1, 1)).unwrap();
        // Slots 0..5 became free; subsequent inserts reuse them.
        for i in 2..7 {
            let (s, _) = t.insert(row(1, i, 0)).unwrap();
            assert!(s < 5, "expected gap slot, got {s}");
        }
        // Gap exhausted: next insert extends the heap.
        let (s, _) = t.insert(row(1, 99, 0)).unwrap();
        assert_eq!(s, 6);
        // Occupied-slot collision is an error.
        assert!(t.insert_at(5, row(9, 9, 9)).is_err());
    }

    #[test]
    fn schema_violation_rejected() {
        let t = table();
        assert!(t.insert(Row::from(vec![Value::Int(1)])).is_err());
        assert!(t
            .insert(Row::from(vec![Value::Null, Value::Int(1), Value::Int(1)]))
            .is_err());
    }

    #[test]
    fn many_rows_split_pages_and_stay_ordered() {
        let t = table(); // rows_per_page = 4: leaves split early
        for o in (0..200).rev() {
            t.insert(row(o, 0, o)).unwrap();
        }
        assert!(t.pager_counters().splits > 0, "200 rows must split");
        let keys: Vec<i64> = t.iter().map(|(_, r)| r.int(0)).collect();
        assert_eq!(keys, (0..200).collect::<Vec<_>>());
        for o in 0..200 {
            assert_eq!(t.get(&Key::ints(&[o, 0])).unwrap().1.int(2), o);
        }
        // Deep clone preserves everything.
        let c = t.clone();
        assert_eq!(c.len(), 200);
        assert_eq!(
            c.iter().map(|(_, r)| r.int(0)).collect::<Vec<_>>(),
            (0..200).collect::<Vec<_>>()
        );
        assert_eq!(c.peek_next_slot(), t.peek_next_slot());
    }

    #[test]
    fn insert_versioned_checks_predicted_slot() {
        use acc_common::TxnId;
        let t = table();
        // Wrong prediction: no mutation, caller must retry.
        assert!(t
            .insert_versioned(row(1, 1, 1), TxnId(7), 3)
            .unwrap()
            .is_none());
        assert_eq!(t.len(), 0);
        let (slot, key, _) = t
            .insert_versioned(row(1, 1, 1), TxnId(7), 0)
            .unwrap()
            .expect("correct prediction");
        assert_eq!(slot, 0);
        assert_eq!(key, Key::ints(&[1, 1]));
        assert_eq!(t.n_version_chains(), 1);
        t.finalize_versions(TxnId(7), 5);
        t.prune_versions(10);
        assert_eq!(t.n_version_chains(), 0);
    }
}
