//! Table schemas and the catalog.

use crate::row::{Key, Row};
use acc_common::{Error, Result, TableId, Value};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// Variable-length string.
    Str,
    /// Scale-4 fixed-point decimal.
    Decimal,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// True if `v` inhabits this type (NULL inhabits every type).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Decimal, Value::Decimal(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

/// One column: a name and a type.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

/// A table schema: columns, primary key, secondary indices and the page
/// geometry used for page-granularity locking.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Assigned when the schema is added to a [`Catalog`].
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Columns in positional order.
    pub columns: Vec<ColumnDef>,
    /// Column positions forming the primary key.
    pub key: Vec<usize>,
    /// Column-position lists for each secondary index.
    pub secondary: Vec<Vec<usize>>,
    /// Heap slots per page; locking a page covers this many rows.
    pub rows_per_page: u32,
}

impl TableSchema {
    /// Start building a schema.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            columns: Vec::new(),
            key: Vec::new(),
            secondary: Vec::new(),
            rows_per_page: 16,
        }
    }

    /// Position of the named column.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column `{name}` in table `{}`", self.name))
    }

    /// Extract the primary key of `row`.
    pub fn key_of(&self, row: &Row) -> Key {
        row.project(&self.key)
    }

    /// Check that `row` matches this schema: arity, column types, and
    /// non-null key columns.
    pub fn check(&self, row: &Row) -> Result<()> {
        if row.arity() != self.columns.len() {
            return Err(Error::SchemaMismatch(format!(
                "table `{}` expects {} columns, row has {}",
                self.name,
                self.columns.len(),
                row.arity()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            if !col.ty.admits(row.get(i)) {
                return Err(Error::SchemaMismatch(format!(
                    "table `{}` column `{}`: value {} has wrong type",
                    self.name,
                    col.name,
                    row.get(i)
                )));
            }
        }
        for &k in &self.key {
            if row.is_null(k) {
                return Err(Error::SchemaMismatch(format!(
                    "table `{}`: NULL in key column `{}`",
                    self.name, self.columns[k].name
                )));
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`TableSchema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    columns: Vec<ColumnDef>,
    key: Vec<usize>,
    secondary: Vec<Vec<usize>>,
    rows_per_page: u32,
}

impl SchemaBuilder {
    /// Append a column.
    pub fn column(mut self, name: &str, ty: ColumnType) -> Self {
        assert!(
            self.columns.iter().all(|c| c.name != name),
            "duplicate column `{name}`"
        );
        self.columns.push(ColumnDef {
            name: name.to_owned(),
            ty,
        });
        self
    }

    /// Declare the primary key by column names.
    pub fn key(mut self, names: &[&str]) -> Self {
        self.key = names.iter().map(|n| self.position(n)).collect();
        self
    }

    /// Add a secondary index over the named columns.
    pub fn index(mut self, names: &[&str]) -> Self {
        let cols = names.iter().map(|n| self.position(n)).collect();
        self.secondary.push(cols);
        self
    }

    /// Set the page geometry (rows per page). `1` makes every row its own
    /// lockable page (row-level locking for hot tables).
    pub fn rows_per_page(mut self, n: u32) -> Self {
        assert!(n > 0, "rows_per_page must be positive");
        self.rows_per_page = n;
        self
    }

    fn position(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column `{name}` in table `{}`", self.name))
    }

    /// Finish. The table id is assigned by [`Catalog::add_table`].
    pub fn build(self) -> TableSchema {
        assert!(!self.key.is_empty(), "table `{}` needs a key", self.name);
        TableSchema {
            id: TableId(u32::MAX),
            name: self.name,
            columns: self.columns,
            key: self.key,
            secondary: self.secondary,
            rows_per_page: self.rows_per_page,
        }
    }
}

/// The set of table schemas in a database.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a schema; assigns and returns its [`TableId`].
    pub fn add_table(&mut self, mut schema: TableSchema) -> TableId {
        assert!(
            self.tables.iter().all(|t| t.name != schema.name),
            "duplicate table `{}`",
            schema.name
        );
        let id = TableId(self.tables.len() as u32);
        schema.id = id;
        self.tables.push(schema);
        id
    }

    /// Schema by id.
    pub fn schema(&self, id: TableId) -> &TableSchema {
        &self.tables[id.raw() as usize]
    }

    /// Schema by name.
    pub fn by_name(&self, name: &str) -> Option<&TableSchema> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// All schemas in id order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders_schema() -> TableSchema {
        TableSchema::builder("orders")
            .column("order_id", ColumnType::Int)
            .column("customer_id", ColumnType::Int)
            .column("num_items", ColumnType::Int)
            .column("price", ColumnType::Decimal)
            .key(&["order_id"])
            .index(&["customer_id"])
            .rows_per_page(8)
            .build()
    }

    #[test]
    fn builder_resolves_names() {
        let s = orders_schema();
        assert_eq!(s.key, vec![0]);
        assert_eq!(s.secondary, vec![vec![1]]);
        assert_eq!(s.rows_per_page, 8);
        assert_eq!(s.col("price"), 3);
    }

    #[test]
    #[should_panic(expected = "no column `nope`")]
    fn unknown_column_panics() {
        TableSchema::builder("t")
            .column("a", ColumnType::Int)
            .key(&["nope"])
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        TableSchema::builder("t")
            .column("a", ColumnType::Int)
            .column("a", ColumnType::Int)
            .key(&["a"])
            .build();
    }

    #[test]
    fn check_accepts_valid_row() {
        let s = orders_schema();
        let row = Row::from(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::from(acc_common::Decimal::from_int(9)),
        ]);
        assert!(s.check(&row).is_ok());
        assert_eq!(s.key_of(&row), Key::ints(&[1]));
    }

    #[test]
    fn check_rejects_bad_rows() {
        let s = orders_schema();
        // Wrong arity.
        assert!(s.check(&Row::from(vec![Value::Int(1)])).is_err());
        // Wrong type in column 2.
        assert!(s
            .check(&Row::from(vec![
                Value::Int(1),
                Value::Int(2),
                Value::str("three"),
                Value::Null,
            ]))
            .is_err());
        // NULL key.
        assert!(s
            .check(&Row::from(vec![
                Value::Null,
                Value::Int(2),
                Value::Int(3),
                Value::Null,
            ]))
            .is_err());
        // NULL in a non-key column is fine.
        assert!(s
            .check(&Row::from(vec![
                Value::Int(1),
                Value::Null,
                Value::Int(3),
                Value::Null,
            ]))
            .is_ok());
    }

    #[test]
    fn catalog_assigns_ids() {
        let mut c = Catalog::new();
        let a = c.add_table(orders_schema());
        let b = c.add_table(
            TableSchema::builder("stock")
                .column("item_id", ColumnType::Int)
                .column("s_level", ColumnType::Int)
                .key(&["item_id"])
                .build(),
        );
        assert_eq!(a, TableId(0));
        assert_eq!(b, TableId(1));
        assert_eq!(c.schema(b).name, "stock");
        assert_eq!(c.by_name("orders").unwrap().id, a);
        assert!(c.by_name("nope").is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_panics() {
        let mut c = Catalog::new();
        c.add_table(orders_schema());
        c.add_table(orders_schema());
    }
}
