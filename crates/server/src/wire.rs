//! Request/response payloads of the front-end wire protocol.
//!
//! Every message travels inside one [`acc_common::frame::Frame`] — the same
//! `[seq][start][chain][len][payload]` format the replication shipper uses —
//! so transport integrity (reassembly of partial writes, chained-checksum
//! tamper detection, hostile-length rejection) is handled once, in
//! [`crate::session::Endpoint`]. This module only encodes and decodes the
//! payload bytes. All integers are little-endian.
//!
//! Request payload:
//!
//! | field            | type | meaning                                        |
//! |------------------|------|------------------------------------------------|
//! | tag              | u8   | `0x01` = submit-txn                            |
//! | client_seq       | u64  | client-chosen correlation id                   |
//! | deadline_micros  | u64  | budget from server receipt; `0` = no deadline  |
//! | mix              | u8   | workload family (`0` TPC-C, `1` smallbank)     |
//! | seed             | u64  | derives the transaction deterministically      |
//!
//! Response payload (first two fields always `tag: u8, client_seq: u64`):
//!
//! | tag | name               | extra fields                                             |
//! |-----|--------------------|----------------------------------------------------------|
//! | 1   | committed          | txn_id u64, steps u32, engine_retries u32, latency µs u64 |
//! | 2   | rolled-back        | reason u8 (0 deadlock, 1 user abort, 2 doomed)           |
//! | 3   | overloaded         | queue_depth u32 (typed shed — resubmit with backoff)     |
//! | 4   | deadline-exceeded  | —                                                        |
//! | 5   | error              | msg_len u16, utf-8 message                               |

use acc_common::{Error, Result};

/// Request tag: submit a transaction.
pub const TAG_SUBMIT: u8 = 0x01;

/// Workload family a request addresses. The server hosts exactly one family
/// (they have different schemas); a mismatched request gets a typed error
/// response, never a silent misroute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// The decomposed TPC-C system (`acc-tpcc`).
    Tpcc,
    /// The decomposed smallbank system (`acc-workloads`).
    Smallbank,
}

impl Mix {
    /// Wire byte.
    pub fn code(self) -> u8 {
        match self {
            Mix::Tpcc => 0,
            Mix::Smallbank => 1,
        }
    }

    /// Decode a wire byte.
    pub fn from_code(b: u8) -> Option<Mix> {
        match b {
            0 => Some(Mix::Tpcc),
            1 => Some(Mix::Smallbank),
            _ => None,
        }
    }

    /// Name used by CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            Mix::Tpcc => "tpcc",
            Mix::Smallbank => "smallbank",
        }
    }
}

/// One submit-txn request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub client_seq: u64,
    /// Deadline budget in microseconds from server receipt (`0` = none).
    pub deadline_micros: u64,
    /// Workload family.
    pub mix: Mix,
    /// Seed the server expands into a concrete transaction. Keeping inputs
    /// server-side keeps the protocol workload-agnostic and every schedule
    /// replayable from `(mix, seed)` alone.
    pub seed: u64,
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 8 + 8 + 1 + 8);
        out.push(TAG_SUBMIT);
        out.extend_from_slice(&self.client_seq.to_le_bytes());
        out.extend_from_slice(&self.deadline_micros.to_le_bytes());
        out.push(self.mix.code());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut c = Cursor::new(payload);
        let tag = c.u8()?;
        if tag != TAG_SUBMIT {
            return Err(Error::Recovery(format!("unknown request tag {tag}")));
        }
        let client_seq = c.u64()?;
        let deadline_micros = c.u64()?;
        let mix = Mix::from_code(c.u8()?)
            .ok_or_else(|| Error::Recovery("unknown workload mix".into()))?;
        let seed = c.u64()?;
        c.done()?;
        Ok(Request {
            client_seq,
            deadline_micros,
            mix,
            seed,
        })
    }
}

/// Why a transaction rolled back, as reported to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAbort {
    /// Deadlock victim — transient, the client may resubmit.
    Deadlock,
    /// The transaction's own logic aborted — final.
    UserAbort,
    /// Doomed by a compensating step (§3.4) — transient.
    Doomed,
}

impl WireAbort {
    fn code(self) -> u8 {
        match self {
            WireAbort::Deadlock => 0,
            WireAbort::UserAbort => 1,
            WireAbort::Doomed => 2,
        }
    }

    fn from_code(b: u8) -> Option<WireAbort> {
        match b {
            0 => Some(WireAbort::Deadlock),
            1 => Some(WireAbort::UserAbort),
            2 => Some(WireAbort::Doomed),
            _ => None,
        }
    }

    /// Transient rollbacks are worth a client resubmission; final ones not.
    pub fn transient(self) -> bool {
        matches!(self, WireAbort::Deadlock | WireAbort::Doomed)
    }
}

/// One response, correlated to its request by `client_seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The transaction committed and is durable.
    Committed {
        /// Echoed correlation id.
        client_seq: u64,
        /// The engine transaction id (its identity on the WAL).
        txn_id: u64,
        /// Forward steps executed.
        steps: u32,
        /// Transient rollbacks the *server* absorbed by resubmitting inside
        /// the deadline — distinct from client-side resubmissions, so the
        /// load generator can attribute retry work to the right layer.
        engine_retries: u32,
        /// Server-side latency, receipt to commit, microseconds.
        latency_micros: u64,
    },
    /// Rolled back with no net effect.
    RolledBack {
        /// Echoed correlation id.
        client_seq: u64,
        /// Why.
        reason: WireAbort,
    },
    /// Shed by admission control before consuming any engine resources.
    Overloaded {
        /// Echoed correlation id.
        client_seq: u64,
        /// Queue depth observed at the shed decision.
        queue_depth: u32,
    },
    /// The deadline passed — in the queue, or mid-run (rolled back through
    /// compensation). Either way the transaction has no net effect.
    DeadlineExceeded {
        /// Echoed correlation id.
        client_seq: u64,
    },
    /// Malformed or misrouted request.
    Error {
        /// Echoed correlation id.
        client_seq: u64,
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// The echoed correlation id.
    pub fn client_seq(&self) -> u64 {
        match self {
            Response::Committed { client_seq, .. }
            | Response::RolledBack { client_seq, .. }
            | Response::Overloaded { client_seq, .. }
            | Response::DeadlineExceeded { client_seq }
            | Response::Error { client_seq, .. } => *client_seq,
        }
    }

    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Response::Committed {
                client_seq,
                txn_id,
                steps,
                engine_retries,
                latency_micros,
            } => {
                out.push(1);
                out.extend_from_slice(&client_seq.to_le_bytes());
                out.extend_from_slice(&txn_id.to_le_bytes());
                out.extend_from_slice(&steps.to_le_bytes());
                out.extend_from_slice(&engine_retries.to_le_bytes());
                out.extend_from_slice(&latency_micros.to_le_bytes());
            }
            Response::RolledBack { client_seq, reason } => {
                out.push(2);
                out.extend_from_slice(&client_seq.to_le_bytes());
                out.push(reason.code());
            }
            Response::Overloaded {
                client_seq,
                queue_depth,
            } => {
                out.push(3);
                out.extend_from_slice(&client_seq.to_le_bytes());
                out.extend_from_slice(&queue_depth.to_le_bytes());
            }
            Response::DeadlineExceeded { client_seq } => {
                out.push(4);
                out.extend_from_slice(&client_seq.to_le_bytes());
            }
            Response::Error {
                client_seq,
                message,
            } => {
                out.push(5);
                out.extend_from_slice(&client_seq.to_le_bytes());
                let msg = message.as_bytes();
                let len = msg.len().min(u16::MAX as usize);
                out.extend_from_slice(&(len as u16).to_le_bytes());
                out.extend_from_slice(&msg[..len]);
            }
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut c = Cursor::new(payload);
        let tag = c.u8()?;
        let client_seq = c.u64()?;
        let resp = match tag {
            1 => Response::Committed {
                client_seq,
                txn_id: c.u64()?,
                steps: c.u32()?,
                engine_retries: c.u32()?,
                latency_micros: c.u64()?,
            },
            2 => Response::RolledBack {
                client_seq,
                reason: WireAbort::from_code(c.u8()?)
                    .ok_or_else(|| Error::Recovery("unknown abort reason".into()))?,
            },
            3 => Response::Overloaded {
                client_seq,
                queue_depth: c.u32()?,
            },
            4 => Response::DeadlineExceeded { client_seq },
            5 => {
                let len = c.u16()? as usize;
                let bytes = c.bytes(len)?;
                Response::Error {
                    client_seq,
                    message: String::from_utf8_lossy(bytes).into_owned(),
                }
            }
            t => return Err(Error::Recovery(format!("unknown response tag {t}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

/// Byte-exact little-endian reader; every decoder consumes the whole payload
/// or fails typed (trailing garbage is a protocol violation, not padding).
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(Error::Recovery("truncated wire payload".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<()> {
        if self.at != self.buf.len() {
            return Err(Error::Recovery("trailing bytes in wire payload".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let req = Request {
            client_seq: 7,
            deadline_micros: 250_000,
            mix: Mix::Smallbank,
            seed: 0xDEAD_BEEF,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn responses_roundtrip() {
        let cases = vec![
            Response::Committed {
                client_seq: 1,
                txn_id: 42,
                steps: 5,
                engine_retries: 2,
                latency_micros: 1234,
            },
            Response::RolledBack {
                client_seq: 2,
                reason: WireAbort::UserAbort,
            },
            Response::Overloaded {
                client_seq: 3,
                queue_depth: 64,
            },
            Response::DeadlineExceeded { client_seq: 4 },
            Response::Error {
                client_seq: 5,
                message: "mix mismatch".into(),
            },
        ];
        for r in cases {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_are_typed_errors() {
        let req = Request {
            client_seq: 7,
            deadline_micros: 0,
            mix: Mix::Tpcc,
            seed: 9,
        };
        let mut bytes = req.encode();
        bytes.pop();
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = req.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        assert!(Request::decode(&[0x7F]).is_err());
    }
}
