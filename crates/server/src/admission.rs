//! Admission control: a bounded queue between the transports and the worker
//! pool.
//!
//! The queue is the *only* place a request waits. `offer` never blocks: a
//! full queue sheds the request immediately with a typed
//! [`crate::wire::Response::Overloaded`], before the engine has spent a lock,
//! a WAL byte, or a version-chain entry on it. Under open-loop traffic past
//! saturation this is what keeps the accepted-request latency bounded — the
//! excess arrival rate turns into sheds, not into an unbounded queue.
//!
//! Workers `take` jobs in FIFO order and re-check the deadline at dequeue: a
//! request that expired while queued is answered `DeadlineExceeded` without
//! touching the engine (counted as a `timed_out` admission verdict, same as a
//! mid-run deadline abort — either way the client's budget, not the engine's
//! capacity, ended it).

use crate::wire::{Mix, Response};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One admitted unit of work.
#[derive(Debug)]
pub struct Job {
    /// Client correlation id, echoed on the response.
    pub client_seq: u64,
    /// Workload family (validated against the host before enqueue).
    pub mix: Mix,
    /// Transaction seed.
    pub seed: u64,
    /// Absolute deadline, if the request carried a budget.
    pub deadline: Option<Instant>,
    /// When the server received the request (latency measurement origin).
    pub received: Instant,
    /// Where the response goes. The channel belongs to the submitting
    /// connection; a dropped receiver (client vanished) makes the send a
    /// no-op rather than an error anyone acts on.
    pub reply: Sender<Response>,
}

struct Inner {
    queue: VecDeque<Job>,
    closed: bool,
}

/// The bounded admission queue.
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    cap: usize,
}

/// Result of a non-blocking [`AdmissionQueue::offer`].
#[derive(Debug, PartialEq, Eq)]
pub enum Offer {
    /// Enqueued; the depth *after* the push (drives the high-water counter).
    Queued(u32),
    /// Shed — the queue was full at this depth. The job is handed back so
    /// the caller can answer `Overloaded` itself.
    Shed(u32),
    /// The server is shutting down.
    Closed,
}

impl AdmissionQueue {
    /// A queue admitting at most `cap` waiting jobs.
    pub fn new(cap: usize) -> AdmissionQueue {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// The configured bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Try to enqueue without blocking. On [`Offer::Shed`] and
    /// [`Offer::Closed`] the job was *not* consumed and `job` is returned to
    /// the caller via the `Err`-like payload of the variant — callers keep
    /// ownership by passing a reference-free job in only on success, so this
    /// takes the job and hands it back inside the result when refused.
    pub fn offer(&self, job: Job) -> (Offer, Option<Job>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return (Offer::Closed, Some(job));
        }
        if inner.queue.len() >= self.cap {
            return (Offer::Shed(inner.queue.len() as u32), Some(job));
        }
        inner.queue.push_back(job);
        let depth = inner.queue.len() as u32;
        drop(inner);
        self.available.notify_one();
        (Offer::Queued(depth), None)
    }

    /// Dequeue the oldest job, blocking until one arrives or the queue
    /// closes. Returns `None` only at shutdown (after draining).
    pub fn take(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.queue.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap();
        }
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Close the queue: `offer` refuses, `take` drains then returns `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    fn job(seq: u64) -> (Job, std::sync::mpsc::Receiver<Response>) {
        let (tx, rx) = channel();
        (
            Job {
                client_seq: seq,
                mix: Mix::Smallbank,
                seed: seq,
                deadline: None,
                received: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn sheds_beyond_cap_and_preserves_fifo() {
        let q = AdmissionQueue::new(2);
        let (j1, _r1) = job(1);
        let (j2, _r2) = job(2);
        let (j3, _r3) = job(3);
        assert!(matches!(q.offer(j1), (Offer::Queued(1), None)));
        assert!(matches!(q.offer(j2), (Offer::Queued(2), None)));
        let (verdict, refused) = q.offer(j3);
        assert_eq!(verdict, Offer::Shed(2));
        assert_eq!(refused.unwrap().client_seq, 3);
        assert_eq!(q.take().unwrap().client_seq, 1);
        assert_eq!(q.take().unwrap().client_seq, 2);
    }

    #[test]
    fn close_wakes_blocked_takers() {
        let q = Arc::new(AdmissionQueue::new(1));
        let taker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.take().is_none())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(taker.join().unwrap());
        let (j, _r) = job(9);
        assert!(matches!(q.offer(j), (Offer::Closed, Some(_))));
    }
}
