//! Framed, chain-verified message endpoints.
//!
//! An [`Endpoint`] is one side of a front-end connection: it reassembles
//! inbound bytes into [`acc_common::frame::Frame`]s (tolerating partial
//! writes and byte-at-a-time slow-loris delivery), verifies each against the
//! connection's cumulative FNV-1a chain, and seals outbound payloads into
//! frames on its own chain. The server and the client each hold one; the two
//! directions carry independent chains.
//!
//! Violations are sticky. A hostile length field, a chain mismatch, or an
//! out-of-order sequence number poisons the endpoint: every later `feed`
//! fails and the owner must drop the connection. There is no resynchronizing
//! with a peer that has already sent garbage — by design, the same stance the
//! replication follower takes toward a torn ship batch.

use acc_common::frame::{Decoded, Frame, FrameBuf, StreamChain};
use acc_common::{Error, Result};

/// The receiving half: reassembly buffer plus the inbound verification
/// chain.
#[derive(Debug)]
pub struct Inbound {
    inbuf: FrameBuf,
    chain: StreamChain,
    poisoned: bool,
}

impl Default for Inbound {
    fn default() -> Self {
        Self::new()
    }
}

impl Inbound {
    /// A fresh receiving half.
    pub fn new() -> Inbound {
        Inbound {
            inbuf: FrameBuf::new(),
            chain: StreamChain::new(),
            poisoned: false,
        }
    }

    /// True once a violation has poisoned this half.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bytes buffered awaiting a complete frame.
    pub fn buffered(&self) -> usize {
        self.inbuf.buffered()
    }

    /// Absorb transport bytes; see [`Endpoint::feed`].
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Vec<u8>>> {
        if self.poisoned {
            return Err(Error::Recovery("endpoint poisoned".into()));
        }
        self.inbuf.extend(bytes);
        let mut payloads = Vec::new();
        loop {
            match self.inbuf.next_frame() {
                Decoded::Frame(frame) => {
                    if !self.chain.verify(&frame) {
                        self.poisoned = true;
                        return Err(Error::Recovery("frame chain verification failed".into()));
                    }
                    payloads.push(frame.payload);
                }
                Decoded::Incomplete => return Ok(payloads),
                Decoded::Violation => {
                    self.poisoned = true;
                    return Err(Error::Recovery("malformed frame header".into()));
                }
            }
        }
    }
}

/// The sending half: the outbound chain.
#[derive(Debug)]
pub struct Outbound {
    chain: StreamChain,
}

impl Default for Outbound {
    fn default() -> Self {
        Self::new()
    }
}

impl Outbound {
    /// A fresh sending half.
    pub fn new() -> Outbound {
        Outbound {
            chain: StreamChain::new(),
        }
    }

    /// Seal a payload into the next outbound frame, returning its bytes.
    pub fn seal(&mut self, payload: &[u8]) -> Vec<u8> {
        self.chain.frame(payload.to_vec()).encode()
    }

    /// The next outbound frame in structured form (fault injection tampers
    /// with it before encoding).
    pub fn seal_frame(&mut self, payload: &[u8]) -> Frame {
        self.chain.frame(payload.to_vec())
    }
}

/// One direction-pair of a framed connection.
#[derive(Debug, Default)]
pub struct Endpoint {
    /// Receiving half.
    pub rx: Inbound,
    /// Sending half.
    pub tx: Outbound,
}

impl Endpoint {
    /// A fresh endpoint (chains at their seeds, empty reassembly buffer).
    pub fn new() -> Endpoint {
        Endpoint::default()
    }

    /// True once a violation has poisoned the receiving half.
    pub fn poisoned(&self) -> bool {
        self.rx.poisoned()
    }

    /// Bytes buffered awaiting a complete frame (a slow-loris peer shows up
    /// here as a buffer that grows without ever yielding a frame).
    pub fn buffered(&self) -> usize {
        self.rx.buffered()
    }

    /// Absorb raw bytes from the transport; returns the payloads of every
    /// frame completed and chain-verified by these bytes (possibly none —
    /// a partial frame stays buffered).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Vec<u8>>> {
        self.rx.feed(bytes)
    }

    /// Seal a payload into the next outbound frame, returning its bytes.
    pub fn seal(&mut self, payload: &[u8]) -> Vec<u8> {
        self.tx.seal(payload)
    }

    /// Split into independently-owned halves (a TCP connection's reader and
    /// writer threads each take one).
    pub fn into_split(self) -> (Inbound, Outbound) {
        (self.rx, self.tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_endpoints_roundtrip_across_fragmentation() {
        let mut client = Endpoint::new();
        let mut server = Endpoint::new();
        let bytes = client.seal(b"hello");
        // Deliver one byte at a time (slow loris): no frame until the last.
        for (i, b) in bytes.iter().enumerate() {
            let got = server.feed(&[*b]).unwrap();
            if i + 1 < bytes.len() {
                assert!(got.is_empty());
            } else {
                assert_eq!(got, vec![b"hello".to_vec()]);
            }
        }
        // Two frames in one write, replies on the independent chain.
        let mut two = server.seal(b"a");
        two.extend(server.seal(b"bb"));
        let got = client.feed(&two).unwrap();
        assert_eq!(got, vec![b"a".to_vec(), b"bb".to_vec()]);
    }

    #[test]
    fn tampered_frame_poisons_endpoint() {
        let mut client = Endpoint::new();
        let mut server = Endpoint::new();
        let mut bytes = client.seal(b"payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(server.feed(&bytes).is_err());
        assert!(server.poisoned());
        // Even a clean retransmit is refused: the connection is dead.
        let clean = client.seal(b"again");
        assert!(server.feed(&clean).is_err());
    }
}
