//! Network front-end for the assertional concurrency control engine.
//!
//! The paper's system (§2) is a transaction *server*: clients submit work
//! over a wire, not through a function call. This crate supplies that
//! missing layer and the robustness properties a front-end owes the engine
//! behind it:
//!
//! - **A framed wire protocol** ([`wire`]) riding the workspace-shared
//!   [`acc_common::frame`] format: length-prefixed, chained-checksum
//!   verified, hostile-length hardened. Rejections are *typed* —
//!   `Overloaded` and `DeadlineExceeded` are distinct responses a client can
//!   act on, never a closed socket it must guess about.
//! - **Admission control** ([`admission`]): a bounded queue between the
//!   transports and a fixed worker pool. Excess open-loop arrivals are shed
//!   before they cost the engine a lock, a WAL byte, or a version-chain
//!   entry; accepted-request latency stays bounded past saturation.
//! - **Per-request deadlines** ([`server`]): a request's budget travels into
//!   the runner, which cancels an expired transaction only at step
//!   boundaries and rolls it back through §3.4 compensation — every lock
//!   released, every version chain finalized, so a deadline response always
//!   means "no net effect".
//! - **Deterministic torture transports** ([`memnet`]): scripted
//!   connection-level faults (drop mid-request, torn response writes,
//!   slow-loris delivery, churn storms) driven by
//!   [`acc_common::faults::ConnPlan`], pure functions of the request
//!   ordinal.
//! - **Open-loop load generation** ([`loadgen`]): seeded Poisson arrival
//!   schedules that keep coming past saturation, with client-side
//!   resubmission accounted separately from the server's engine-side
//!   retries.

pub mod admission;
pub mod loadgen;
pub mod memnet;
pub mod server;
pub mod session;
pub mod wire;

pub use admission::{AdmissionQueue, Job, Offer};
pub use loadgen::{run_open_loop, Arrival, ArrivalSchedule, LoadgenConfig, LoadgenReport};
pub use memnet::{CallOutcome, MemConn};
pub use server::{serve, Client, Frontend, Host, ServerConfig, SmallbankHost, TpccHost};
pub use session::{Endpoint, Inbound, Outbound};
pub use wire::{Mix, Request, Response, WireAbort};
