//! `acc-server`: serve the assertional concurrency control engine over TCP.
//!
//! ```text
//! acc-server [--addr 127.0.0.1:7878] [--mix smallbank|tpcc] [--workers N]
//!            [--queue N] [--accounts N] [--seed N] [--lockstat]
//! ```

use acc_server::{serve, Frontend, Mix, ServerConfig};
use acc_tpcc::Scale;
use std::net::TcpListener;
use std::sync::Arc;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "acc-server: TCP front-end for the ACC engine\n\n\
             options:\n\
             \x20 --addr HOST:PORT   listen address (default 127.0.0.1:7878)\n\
             \x20 --mix FAMILY       smallbank (default) or tpcc\n\
             \x20 --workers N        worker threads (default 4)\n\
             \x20 --queue N          admission queue bound (default 64)\n\
             \x20 --accounts N       smallbank population (default 200)\n\
             \x20 --seed N           population/input seed (default 42)\n\
             \x20 --lockstat         enable the event sink and dump counters on exit"
        );
        return;
    }
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let mix = match flag_value(&args, "--mix").as_deref() {
        None | Some("smallbank") => Mix::Smallbank,
        Some("tpcc") => Mix::Tpcc,
        Some(other) => {
            eprintln!("unknown --mix {other} (expected smallbank or tpcc)");
            std::process::exit(2);
        }
    };
    let config = ServerConfig {
        workers: flag_value(&args, "--workers")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
        queue_cap: flag_value(&args, "--queue")
            .and_then(|v| v.parse().ok())
            .unwrap_or(64),
        ..ServerConfig::default()
    };
    let accounts: i64 = flag_value(&args, "--accounts")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    let frontend = Arc::new(match mix {
        Mix::Smallbank => Frontend::smallbank(accounts, &config),
        Mix::Tpcc => Frontend::tpcc(Scale::benchmark(), seed, &config),
    });
    if args.iter().any(|a| a == "--lockstat") {
        let sink = acc_common::events::EventSink::enabled(256);
        frontend.shared().set_event_sink(sink);
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "acc-server: {} on {addr} ({} workers, queue {})",
        mix.name(),
        config.workers,
        config.queue_cap
    );
    let accept = serve(Arc::clone(&frontend), listener);
    let _ = accept.join();
}
