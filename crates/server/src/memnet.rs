//! Deterministic in-memory connections, scripted by
//! [`acc_common::faults::ConnPlan`].
//!
//! The front-end analogue of replication's `MemTransport`: a [`MemConn`]
//! carries real framed bytes through real [`crate::session::Endpoint`]s into
//! a real [`crate::server::Frontend`] — only the socket is simulated. Every
//! misbehavior is a pure function of the 1-based request ordinal, so a
//! seeded torture run replays byte-identically.
//!
//! The outcome taxonomy is the no-silent-loss audit's vocabulary: every
//! request ends in exactly one [`CallOutcome`], and the torture harness
//! proves `delivered + lost_before_admission + committed_unacked + torn`
//! accounts for every request it offered — a connection fault may cost a
//! client its answer, but never silently, and a lost *request* never has
//! effects.

use crate::server::Frontend;
use crate::session::Endpoint;
use crate::wire::{Request, Response};
use acc_common::events::Event;
use acc_common::faults::{ConnAction, ConnPlan, Corruption};
use acc_common::Result;
use std::sync::mpsc::channel;

/// How one in-memory call ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallOutcome {
    /// The response reached the client intact.
    Delivered(Response),
    /// A connection fault ate the request before the server assembled a
    /// complete frame: the engine never saw it, so it has no effects.
    LostBeforeAdmission(&'static str),
    /// The server processed the request, but the response write tore before
    /// the client could decode it. The transaction's fate (here, for the
    /// audit) is known server-side only — the client must treat it as
    /// unknown and the audit must reconcile it against the log.
    ResponseTorn(Response),
    /// The connection was poisoned by corruption; the request never became a
    /// complete verified frame. No effects.
    TornDown(&'static str),
}

/// One scripted client connection to an in-process [`Frontend`].
pub struct MemConn {
    client: Endpoint,
    server: Endpoint,
    plan: ConnPlan,
    /// 1-based ordinal of the next request *attempt* on this connection.
    ordinal: u64,
    next_seq: u64,
    dead: bool,
}

impl MemConn {
    /// Open a connection (emits a `ConnChurn { opened: true }` event on the
    /// frontend's sink, mirroring the TCP path).
    pub fn open(frontend: &Frontend, plan: ConnPlan) -> MemConn {
        let sink = frontend.shared().event_sink();
        if sink.is_enabled() {
            sink.emit(Event::ConnChurn { opened: true });
        }
        MemConn {
            client: Endpoint::new(),
            server: Endpoint::new(),
            plan,
            ordinal: 0,
            next_seq: 0,
            dead: false,
        }
    }

    /// True once a fault has killed the connection; the caller reconnects
    /// with a fresh [`MemConn::open`].
    pub fn dead(&self) -> bool {
        self.dead
    }

    fn teardown(&mut self, frontend: &Frontend) {
        self.dead = true;
        let sink = frontend.shared().event_sink();
        if sink.is_enabled() {
            sink.emit(Event::ConnChurn { opened: false });
        }
    }

    /// Submit one transaction through the scripted connection and block for
    /// its fate. `deadline_micros == 0` means no deadline.
    pub fn call(
        &mut self,
        frontend: &Frontend,
        seed: u64,
        deadline_micros: u64,
    ) -> Result<CallOutcome> {
        if self.dead {
            return Err(acc_common::Error::Recovery(
                "call on a dead connection".into(),
            ));
        }
        self.ordinal += 1;
        self.next_seq += 1;
        let req = Request {
            client_seq: self.next_seq,
            deadline_micros,
            mix: frontend.mix(),
            seed,
        };
        let action = self.plan.action(self.ordinal);
        if action == ConnAction::Churn {
            // The client opens-and-closes without ever sending: the request
            // is lost on the client side, the server just sees churn.
            self.teardown(frontend);
            return Ok(CallOutcome::LostBeforeAdmission("churn"));
        }
        let mut bytes = self.client.seal(&req.encode());
        let corruption = self.plan.corruption(self.ordinal);
        if corruption != Corruption::None {
            corruption.apply(&mut bytes);
            // Tampered or truncated request frame: the server either refuses
            // the chain (poisoned endpoint) or never completes the frame.
            match self.server.feed(&bytes) {
                Ok(done) if done.is_empty() => {
                    self.teardown(frontend);
                    return Ok(CallOutcome::TornDown("torn request frame"));
                }
                Ok(_) => unreachable!("a corrupted frame cannot verify"),
                Err(_) => {
                    self.teardown(frontend);
                    return Ok(CallOutcome::TornDown("request chain refused"));
                }
            }
        }
        match action {
            ConnAction::Churn => unreachable!("handled above"),
            ConnAction::DropMidRequest(n) => {
                // Only a prefix arrives, never the whole frame: clamp below
                // the frame length so the drop is guaranteed to drop.
                let n = (n as usize).min(bytes.len() - 1);
                let fed = self.server.feed(&bytes[..n])?;
                assert!(fed.is_empty(), "a partial frame is not a request");
                self.teardown(frontend);
                Ok(CallOutcome::LostBeforeAdmission("drop mid-request"))
            }
            ConnAction::SlowLoris(step) => {
                // The request dribbles in a byte (or few) at a time. The
                // server holds nothing but the reassembly buffer while it
                // arrives; once complete it is an ordinary request.
                let step = (step as usize).max(1);
                let mut payloads = Vec::new();
                for chunk in bytes.chunks(step) {
                    payloads.extend(self.server.feed(chunk)?);
                }
                self.finish(frontend, payloads, None)
            }
            ConnAction::PartialWrite(n) => {
                let payloads = self.server.feed(&bytes)?;
                self.finish(frontend, payloads, Some(n))
            }
            ConnAction::Deliver => {
                let payloads = self.server.feed(&bytes)?;
                self.finish(frontend, payloads, None)
            }
        }
    }

    /// Server-side processing shared by every delivered-request path:
    /// decode, submit, wait, frame the response back — torn after
    /// `tear_response_at` bytes if the plan says so.
    fn finish(
        &mut self,
        frontend: &Frontend,
        payloads: Vec<Vec<u8>>,
        tear_response_at: Option<u32>,
    ) -> Result<CallOutcome> {
        assert_eq!(payloads.len(), 1, "one request per call");
        let req = Request::decode(&payloads[0])?;
        let (tx, rx) = channel();
        frontend.submit(req, tx);
        let resp = rx
            .recv()
            .map_err(|_| acc_common::Error::Recovery("frontend dropped reply".into()))?;
        let resp_bytes = self.server.seal(&resp.encode());
        match tear_response_at {
            Some(n) => {
                // The client sees a prefix, then EOF: it can never decode the
                // response, and must treat the transaction's fate as unknown.
                let n = (n as usize).min(resp_bytes.len() - 1);
                let got = self.client.feed(&resp_bytes[..n])?;
                assert!(got.is_empty(), "a torn response must not decode");
                self.teardown(frontend);
                Ok(CallOutcome::ResponseTorn(resp))
            }
            None => {
                let got = self.client.feed(&resp_bytes)?;
                assert_eq!(got.len(), 1, "one response per request");
                Ok(CallOutcome::Delivered(Response::decode(&got[0])?))
            }
        }
    }
}
