//! Open-loop load generation against a [`Frontend`].
//!
//! A closed-loop driver (the engine's `run_closed_loop`) cannot take a
//! system past saturation: its terminals wait for each response, so offered
//! load self-limits at capacity. The open-loop generator here does what real
//! front-ends face — arrivals keep coming on a seeded Poisson schedule
//! whether or not the server keeps up. Past saturation the only stable
//! behaviors are an unbounded queue (latency grows without bound) or
//! admission control (excess arrivals shed, accepted-request latency stays
//! bounded); the `figures -- saturate` experiment measures which one the
//! front-end delivers.
//!
//! The [`ArrivalSchedule`] is a pure function of `(mix, seed, rate,
//! requests)`: the figure harness dumps it to bytes and byte-compares a
//! repeated run, so the *offered* workload in every experiment is provably
//! identical even though service times are wall-clock.

use crate::server::Frontend;
use crate::wire::{Mix, Request, Response};
use acc_common::SeededRng;
use acc_engine::stats::LatencyStats;
use acc_engine::threaded::RetryPolicy;
use std::collections::HashMap;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

/// One scheduled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Correlation id (1-based position in the schedule).
    pub client_seq: u64,
    /// Offset from the run's start, microseconds.
    pub at_micros: u64,
    /// Transaction seed the server will expand.
    pub seed: u64,
}

/// A seeded open-loop arrival schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSchedule {
    /// Workload family every request addresses.
    pub mix: Mix,
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Target arrival rate, requests/second.
    pub rate_tps: f64,
    /// The arrivals, in time order.
    pub entries: Vec<Arrival>,
}

impl ArrivalSchedule {
    /// Derive the schedule: exponential inter-arrival times at `rate_tps`,
    /// per-request transaction seeds, all from one seed.
    pub fn generate(mix: Mix, seed: u64, rate_tps: f64, requests: usize) -> ArrivalSchedule {
        let mut rng = SeededRng::new(seed ^ 0x6f70_656e_6c6f_6f70);
        let mean_gap_micros = 1_000_000.0 / rate_tps.max(1e-9);
        let mut at = 0.0f64;
        let entries = (1..=requests as u64)
            .map(|client_seq| {
                at += rng.exponential(mean_gap_micros);
                Arrival {
                    client_seq,
                    at_micros: at as u64,
                    seed: seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(client_seq),
                }
            })
            .collect();
        ArrivalSchedule {
            mix,
            seed,
            rate_tps,
            entries,
        }
    }

    /// Deterministic text dump — one line per arrival — used by `check.sh`
    /// to byte-compare two derivations of the same seeded schedule.
    pub fn dump(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 40 + 64);
        out.push_str(&format!(
            "schedule mix={} seed={} rate={:.3} requests={}\n",
            self.mix.name(),
            self.seed,
            self.rate_tps,
            self.entries.len()
        ));
        for a in &self.entries {
            out.push_str(&format!(
                "{} at={}us seed={:#018x}\n",
                a.client_seq, a.at_micros, a.seed
            ));
        }
        out
    }
}

/// Load-generator policy knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Per-request deadline budget (None = no deadline).
    pub deadline: Option<Duration>,
    /// Client-side resubmission of transient failures (typed `Overloaded`
    /// sheds and transient rollbacks). Distinct from the server's
    /// engine-side retries, which ride inside one admission.
    pub retry: RetryPolicy,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            deadline: Some(Duration::from_millis(250)),
            retry: RetryPolicy::disabled(),
        }
    }
}

/// What the open-loop run observed, separated by layer: `engine_retries`
/// happened inside the server (one admission, several engine attempts);
/// `client_resubmits` are whole new requests this generator sent after a
/// typed transient failure.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests the schedule offered (excluding resubmissions).
    pub offered: u64,
    /// Requests that ended committed.
    pub committed: u64,
    /// Requests whose final answer was a typed `Overloaded` shed.
    pub shed: u64,
    /// Requests whose final answer was `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Requests whose final answer was a rollback.
    pub rolled_back: u64,
    /// Requests whose final answer was a protocol error.
    pub errors: u64,
    /// Client-side resubmissions performed.
    pub client_resubmits: u64,
    /// Engine-side retries summed over committed responses.
    pub engine_retries: u64,
    /// End-to-end latency of committed requests (first submission to final
    /// response, client-observed).
    pub latency: LatencyStats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Committed requests per second of wall clock.
    pub committed_tps: f64,
}

/// Drive `schedule` against `frontend`, open-loop: each arrival is submitted
/// at its scheduled offset (late submission happens immediately — the
/// schedule never waits for the server). Blocks until every request has a
/// final answer.
pub fn run_open_loop(
    frontend: &Frontend,
    schedule: &ArrivalSchedule,
    config: &LoadgenConfig,
) -> LoadgenReport {
    let started = Instant::now();
    let (tx, rx) = channel::<Response>();
    // client_seq -> (first submission instant, resubmits so far, txn seed)
    let mut inflight: HashMap<u64, (Instant, u32, u64)> = HashMap::new();
    let mut report = LoadgenReport {
        offered: schedule.entries.len() as u64,
        ..LoadgenReport::default()
    };
    let mut latencies: Vec<u64> = Vec::with_capacity(schedule.entries.len());
    let mut backoff_rng = SeededRng::new(schedule.seed ^ 0x0062_6163_6b6f_6666);
    let mut outstanding = 0u64;

    let submit = |seq: u64, seed: u64| {
        frontend.submit(
            Request {
                client_seq: seq,
                deadline_micros: config.deadline.map_or(0, |d| d.as_micros().max(1) as u64),
                mix: schedule.mix,
                seed,
            },
            tx.clone(),
        );
    };

    // One pass over the schedule, draining whatever responses have arrived
    // between submissions (the channel is unbounded, so draining eagerly is
    // about keeping `inflight` and resubmissions timely, not correctness).
    for arrival in &schedule.entries {
        let due = started + Duration::from_micros(arrival.at_micros);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        inflight.insert(arrival.client_seq, (Instant::now(), 0, arrival.seed));
        outstanding += 1;
        submit(arrival.client_seq, arrival.seed);
        for resp in rx.try_iter() {
            settle(
                resp,
                &mut inflight,
                &mut report,
                &mut latencies,
                &mut outstanding,
                &mut backoff_rng,
                config,
                &submit,
            );
        }
    }
    // Drain to completion.
    while outstanding > 0 {
        let resp = rx.recv().expect("frontend keeps reply senders alive");
        settle(
            resp,
            &mut inflight,
            &mut report,
            &mut latencies,
            &mut outstanding,
            &mut backoff_rng,
            config,
            &submit,
        );
    }
    report.elapsed = started.elapsed();
    report.latency = LatencyStats::from_micros(latencies);
    report.committed_tps = report.committed as f64 / report.elapsed.as_secs_f64().max(1e-9);
    report
}

#[allow(clippy::too_many_arguments)]
fn settle(
    resp: Response,
    inflight: &mut HashMap<u64, (Instant, u32, u64)>,
    report: &mut LoadgenReport,
    latencies: &mut Vec<u64>,
    outstanding: &mut u64,
    backoff_rng: &mut SeededRng,
    config: &LoadgenConfig,
    submit: &impl Fn(u64, u64),
) {
    let seq = resp.client_seq();
    let Some(&(first_submit, resubmits, seed)) = inflight.get(&seq) else {
        // A response for a request we already settled would be a protocol
        // bug; surface it loudly.
        panic!("response for unknown client_seq {seq}");
    };
    let transient = match &resp {
        Response::Overloaded { .. } => true,
        Response::RolledBack { reason, .. } => reason.transient(),
        _ => false,
    };
    if transient && resubmits < config.retry.max_retries {
        inflight.insert(seq, (first_submit, resubmits + 1, seed));
        report.client_resubmits += 1;
        std::thread::sleep(config.retry.backoff(resubmits + 1, backoff_rng));
        submit(seq, seed);
        return;
    }
    inflight.remove(&seq);
    *outstanding -= 1;
    match resp {
        Response::Committed { engine_retries, .. } => {
            report.committed += 1;
            report.engine_retries += engine_retries as u64;
            latencies.push(first_submit.elapsed().as_micros() as u64);
        }
        Response::Overloaded { .. } => report.shed += 1,
        Response::DeadlineExceeded { .. } => report.deadline_exceeded += 1,
        Response::RolledBack { .. } => report.rolled_back += 1,
        Response::Error { .. } => report.errors += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_ordered() {
        let a = ArrivalSchedule::generate(Mix::Smallbank, 7, 500.0, 200);
        let b = ArrivalSchedule::generate(Mix::Smallbank, 7, 500.0, 200);
        assert_eq!(a, b);
        assert_eq!(a.dump(), b.dump());
        assert!(a
            .entries
            .windows(2)
            .all(|w| w[0].at_micros <= w[1].at_micros));
        let c = ArrivalSchedule::generate(Mix::Smallbank, 8, 500.0, 200);
        assert_ne!(a.dump(), c.dump());
    }

    #[test]
    fn schedule_rate_is_roughly_honored() {
        let s = ArrivalSchedule::generate(Mix::Tpcc, 1, 1000.0, 2000);
        let span = s.entries.last().unwrap().at_micros as f64 / 1e6;
        let rate = 2000.0 / span;
        assert!((500.0..2000.0).contains(&rate), "rate {rate}");
    }
}
