//! The front-end proper: workload hosts, the worker pool, and TCP serving.
//!
//! A [`Frontend`] owns one engine ([`SharedDb`] + ACC policy) for one
//! workload family and runs a fixed pool of worker threads fed by the
//! bounded [`AdmissionQueue`]. Transports — the TCP listener here, the
//! deterministic in-memory connection in [`crate::memnet`], and the open-loop
//! generator in [`crate::loadgen`] — all converge on [`Frontend::submit`],
//! so admission control, deadline bookkeeping, and the engine-side retry
//! loop behave identically however a request arrives.
//!
//! Deadlines exist at three points, all answered with the same typed
//! response: expired while queued (cheapest — the engine never sees it),
//! expired mid-run (the runner rolls the transaction back through
//! compensation at the next step boundary), and expired between engine-side
//! retry attempts. A deadline response therefore always means "no net
//! effect", which is what makes client-side resubmission safe.

use crate::admission::{AdmissionQueue, Job, Offer};
use crate::session::{Inbound, Outbound};
use crate::wire::{Mix, Request, Response, WireAbort};
use acc_common::events::{AdmissionVerdict, Event};
use acc_common::{Result, SeededRng};
use acc_engine::threaded::RetryPolicy;
use acc_storage::Database;
use acc_tpcc::{populate as tpcc_populate, tpcc_catalog, InputGen, Scale, TpccConfig, TpccSystem};
use acc_txn::runner::run_with_deadline;
use acc_txn::{AbortReason, ConcurrencyControl, RunOutcome, SharedDb, TxnProgram, WaitMode};
use acc_workloads::smallbank;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Salt mixed into a job's seed for the engine-side retry backoff stream.
const RETRY_SALT: u64 = 0x7265_7472_795f_6265;

/// A workload family the server can host: expands a request seed into a
/// concrete transaction program and supplies the ACC policy to run it under.
pub trait Host: Send + Sync {
    /// The family this host serves.
    fn mix(&self) -> Mix;
    /// Deterministically derive the transaction for `seed`.
    fn program(&self, seed: u64) -> Box<dyn TxnProgram + Send>;
    /// The concurrency control policy.
    fn cc(&self) -> &dyn ConcurrencyControl;
}

/// TPC-C host: the decomposed five-transaction system.
pub struct TpccHost {
    sys: TpccSystem,
    gen: InputGen,
    districts: i64,
}

impl Host for TpccHost {
    fn mix(&self) -> Mix {
        Mix::Tpcc
    }

    fn program(&self, seed: u64) -> Box<dyn TxnProgram + Send> {
        let mut rng = SeededRng::new(seed);
        acc_tpcc::txns::program_for(self.gen.next_input(&mut rng), self.districts)
    }

    fn cc(&self) -> &dyn ConcurrencyControl {
        &*self.sys.acc
    }
}

/// Smallbank host.
pub struct SmallbankHost {
    kit: smallbank::SmallbankKit,
}

impl Host for SmallbankHost {
    fn mix(&self) -> Mix {
        Mix::Smallbank
    }

    fn program(&self, seed: u64) -> Box<dyn TxnProgram + Send> {
        let mut rng = SeededRng::new(seed);
        self.kit.next_program(&mut rng)
    }

    fn cc(&self) -> &dyn ConcurrencyControl {
        &*self.kit.acc
    }
}

/// Front-end sizing and policy.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue bound; arrivals beyond it are shed `Overloaded`.
    pub queue_cap: usize,
    /// Engine-side resubmission of transient rollbacks (deadlock victims,
    /// §3.4 dooms) while the request's deadline allows.
    pub engine_retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            engine_retry: RetryPolicy::standard(),
        }
    }
}

struct Core {
    shared: Arc<SharedDb>,
    host: Box<dyn Host>,
    queue: AdmissionQueue,
    retry: RetryPolicy,
    stopping: AtomicBool,
}

/// The running front-end: engine, hosts, admission queue, worker pool.
pub struct Frontend {
    core: Arc<Core>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Frontend {
    /// A front-end hosting TPC-C at `scale`, populated with `seed`.
    pub fn tpcc(scale: Scale, seed: u64, config: &ServerConfig) -> Frontend {
        let sys = TpccSystem::build();
        let mut db = Database::new(&tpcc_catalog());
        tpcc_populate(&mut db, &scale, seed);
        let districts = scale.districts;
        let gen = InputGen::new(TpccConfig::standard(scale), seed);
        let shared = SharedDb::new(db, Arc::clone(&sys.tables) as _);
        Frontend::start(
            shared,
            Box::new(TpccHost {
                sys,
                gen,
                districts,
            }),
            config,
        )
    }

    /// A front-end hosting smallbank over `accounts` accounts.
    pub fn smallbank(accounts: i64, config: &ServerConfig) -> Frontend {
        let kit = smallbank::SmallbankKit::build(accounts);
        let db = smallbank::populate(accounts);
        let shared = SharedDb::new(db, Arc::clone(&kit.tables) as _);
        Frontend::start(shared, Box::new(SmallbankHost { kit }), config)
    }

    /// Wire an already-built engine and host into a running front-end.
    pub fn start(shared: SharedDb, host: Box<dyn Host>, config: &ServerConfig) -> Frontend {
        let core = Arc::new(Core {
            shared: Arc::new(shared),
            host,
            queue: AdmissionQueue::new(config.queue_cap),
            retry: config.engine_retry.clone(),
            stopping: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || worker_loop(&core))
            })
            .collect();
        Frontend {
            core,
            workers: Mutex::new(workers),
        }
    }

    /// The engine (tests and benches audit locks, WAL, and counters here).
    pub fn shared(&self) -> &Arc<SharedDb> {
        &self.core.shared
    }

    /// The workload family served.
    pub fn mix(&self) -> Mix {
        self.core.host.mix()
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.core.queue.depth()
    }

    /// Admit or shed one request. Never blocks; every path produces exactly
    /// one response on `reply` (now, or when a worker finishes the job).
    pub fn submit(&self, req: Request, reply: Sender<Response>) {
        let received = Instant::now();
        let sink = self.core.shared.event_sink();
        if req.mix != self.core.host.mix() {
            let _ = reply.send(Response::Error {
                client_seq: req.client_seq,
                message: format!(
                    "server hosts {}, request addressed {}",
                    self.core.host.mix().name(),
                    req.mix.name()
                ),
            });
            return;
        }
        let deadline = (req.deadline_micros > 0)
            .then(|| received + Duration::from_micros(req.deadline_micros));
        let job = Job {
            client_seq: req.client_seq,
            mix: req.mix,
            seed: req.seed,
            deadline,
            received,
            reply,
        };
        match self.core.queue.offer(job) {
            (Offer::Queued(depth), None) => {
                if sink.is_enabled() {
                    sink.emit(Event::Admission {
                        verdict: AdmissionVerdict::Accepted,
                        queue_depth: depth,
                    });
                }
            }
            (Offer::Shed(depth), Some(job)) => {
                if sink.is_enabled() {
                    sink.emit(Event::Admission {
                        verdict: AdmissionVerdict::Shed,
                        queue_depth: depth,
                    });
                }
                let _ = job.reply.send(Response::Overloaded {
                    client_seq: job.client_seq,
                    queue_depth: depth,
                });
            }
            (Offer::Closed, Some(job)) => {
                let _ = job.reply.send(Response::Error {
                    client_seq: job.client_seq,
                    message: "server shutting down".into(),
                });
            }
            _ => unreachable!("offer returns the job exactly when it refuses it"),
        }
    }

    /// Stop accepting, drain the queue, and join the workers.
    pub fn shutdown(&self) {
        self.core.stopping.store(true, Ordering::SeqCst);
        self.core.queue.close();
        let mut workers = self.workers.lock().unwrap();
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(core: &Core) {
    while let Some(job) = core.queue.take() {
        let sink = core.shared.event_sink();
        // Expired while queued: answer without touching the engine.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            if sink.is_enabled() {
                sink.emit(Event::Admission {
                    verdict: AdmissionVerdict::TimedOut,
                    queue_depth: core.queue.depth() as u32,
                });
            }
            let _ = job.reply.send(Response::DeadlineExceeded {
                client_seq: job.client_seq,
            });
            continue;
        }
        let mut engine_retries = 0u32;
        let mut backoff_rng = SeededRng::new(job.seed ^ RETRY_SALT);
        let response = loop {
            let mut program = core.host.program(job.seed);
            let ran = run_with_deadline(
                &core.shared,
                core.host.cc(),
                program.as_mut(),
                WaitMode::Block,
                job.deadline,
            );
            match ran {
                Ok((txn_id, RunOutcome::Committed { steps })) => {
                    break Response::Committed {
                        client_seq: job.client_seq,
                        txn_id: txn_id.0,
                        steps,
                        engine_retries,
                        latency_micros: job.received.elapsed().as_micros() as u64,
                    };
                }
                Ok((_, RunOutcome::RolledBack(AbortReason::Deadline))) => {
                    if sink.is_enabled() {
                        sink.emit(Event::Admission {
                            verdict: AdmissionVerdict::TimedOut,
                            queue_depth: core.queue.depth() as u32,
                        });
                    }
                    break Response::DeadlineExceeded {
                        client_seq: job.client_seq,
                    };
                }
                Ok((_, RunOutcome::RolledBack(reason))) => {
                    let wire = match reason {
                        AbortReason::Deadlock => WireAbort::Deadlock,
                        AbortReason::UserAbort => WireAbort::UserAbort,
                        AbortReason::Doomed => WireAbort::Doomed,
                        AbortReason::Deadline => unreachable!("handled above"),
                    };
                    let budget_left = job.deadline.is_none_or(|d| Instant::now() < d);
                    if wire.transient() && engine_retries < core.retry.max_retries && budget_left {
                        engine_retries += 1;
                        std::thread::sleep(core.retry.backoff(engine_retries, &mut backoff_rng));
                        continue;
                    }
                    break Response::RolledBack {
                        client_seq: job.client_seq,
                        reason: wire,
                    };
                }
                Err(e) => {
                    break Response::Error {
                        client_seq: job.client_seq,
                        message: e.to_string(),
                    };
                }
            }
        };
        let _ = job.reply.send(response);
    }
}

/// Serve `frontend` on `listener` until [`Frontend::shutdown`]. Returns the
/// accept-loop handle; each connection gets a reader thread and a writer
/// thread, so a slow or stalled client never blocks another connection.
pub fn serve(frontend: Arc<Frontend>, listener: TcpListener) -> std::thread::JoinHandle<()> {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    std::thread::spawn(move || loop {
        if frontend.core.stopping.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let frontend = Arc::clone(&frontend);
                std::thread::spawn(move || serve_conn(&frontend, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    })
}

fn serve_conn(frontend: &Frontend, stream: TcpStream) {
    let sink = frontend.core.shared.event_sink();
    if sink.is_enabled() {
        sink.emit(Event::ConnChurn { opened: true });
    }
    stream.set_nodelay(true).ok();
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = channel::<Response>();
    let writer = std::thread::spawn(move || {
        let mut out = Outbound::new();
        let mut stream = writer_stream;
        while let Ok(resp) = rx.recv() {
            if stream.write_all(&out.seal(&resp.encode())).is_err() {
                return;
            }
        }
    });
    let mut inbound = Inbound::new();
    let mut stream = stream;
    let mut chunk = [0u8; 4096];
    'conn: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let payloads = match inbound.feed(&chunk[..n]) {
            Ok(p) => p,
            // Poisoned framing: nothing later on this connection can be
            // trusted; drop it (the client sees EOF and reconnects).
            Err(_) => break,
        };
        for payload in payloads {
            match Request::decode(&payload) {
                Ok(req) => frontend.submit(req, tx.clone()),
                Err(e) => {
                    let _ = tx.send(Response::Error {
                        client_seq: 0,
                        message: format!("bad request: {e}"),
                    });
                    break 'conn;
                }
            }
        }
    }
    // Dropping `tx` lets the writer drain in-flight responses, then exit.
    drop(tx);
    let _ = writer.join();
    if sink.is_enabled() {
        sink.emit(Event::ConnChurn { opened: false });
    }
}

/// A minimal blocking client for the TCP front-end: one outstanding request
/// at a time, full-jitter resubmission of typed `Overloaded` sheds and
/// transient rollbacks under a [`RetryPolicy`].
pub struct Client {
    stream: TcpStream,
    inbound: Inbound,
    outbound: Outbound,
    pending: std::collections::VecDeque<Vec<u8>>,
    next_seq: u64,
}

impl Client {
    /// Connect.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            inbound: Inbound::new(),
            outbound: Outbound::new(),
            pending: std::collections::VecDeque::new(),
            next_seq: 0,
        })
    }

    /// Submit one transaction and wait for its response.
    pub fn call(&mut self, mix: Mix, seed: u64, deadline: Option<Duration>) -> Result<Response> {
        self.next_seq += 1;
        let req = Request {
            client_seq: self.next_seq,
            deadline_micros: deadline.map_or(0, |d| d.as_micros().max(1) as u64),
            mix,
            seed,
        };
        let bytes = self.outbound.seal(&req.encode());
        self.stream
            .write_all(&bytes)
            .map_err(|e| acc_common::Error::Recovery(format!("send: {e}")))?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(payload) = self.pending.pop_front() {
                return Response::decode(&payload);
            }
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| acc_common::Error::Recovery(format!("recv: {e}")))?;
            if n == 0 {
                return Err(acc_common::Error::Recovery(
                    "connection closed mid-call".into(),
                ));
            }
            self.pending.extend(self.inbound.feed(&chunk[..n])?);
        }
    }

    /// Submit with client-side resubmission: typed `Overloaded` sheds and
    /// transient rollbacks retry with full-jitter backoff until the policy's
    /// attempt budget is exhausted. Returns the final response and the
    /// number of resubmissions performed.
    pub fn call_with_retry(
        &mut self,
        mix: Mix,
        seed: u64,
        deadline: Option<Duration>,
        policy: &RetryPolicy,
        rng: &mut SeededRng,
    ) -> Result<(Response, u32)> {
        let mut resubmits = 0u32;
        loop {
            let resp = self.call(mix, seed, deadline)?;
            let transient = match &resp {
                Response::Overloaded { .. } => true,
                Response::RolledBack { reason, .. } => reason.transient(),
                _ => false,
            };
            if transient && resubmits < policy.max_retries {
                resubmits += 1;
                std::thread::sleep(policy.backoff(resubmits, rng));
                continue;
            }
            return Ok((resp, resubmits));
        }
    }
}
