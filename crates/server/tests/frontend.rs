//! End-to-end front-end behavior: TCP round-trips, typed shedding past the
//! admission bound, deadline responses with clean engine state, and the
//! scripted in-memory connection faults.

use acc_common::events::EventSink;
use acc_common::faults::ConnPlan;
use acc_common::SeededRng;
use acc_engine::threaded::RetryPolicy;
use acc_server::{
    serve, ArrivalSchedule, CallOutcome, Client, Frontend, LoadgenConfig, MemConn, Mix, Request,
    Response, ServerConfig,
};
use std::net::TcpListener;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

fn small_frontend(workers: usize, queue_cap: usize) -> Frontend {
    Frontend::smallbank(
        100,
        &ServerConfig {
            workers,
            queue_cap,
            engine_retry: RetryPolicy::standard(),
        },
    )
}

#[test]
fn tcp_round_trip_commits_and_rejects_mismatched_mix() {
    let frontend = Arc::new(small_frontend(2, 16));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let _accept = serve(Arc::clone(&frontend), listener);

    let mut client = Client::connect(addr).expect("connect");
    let mut committed = 0;
    for seed in 0..20u64 {
        match client
            .call(Mix::Smallbank, seed, Some(Duration::from_secs(5)))
            .expect("call")
        {
            Response::Committed { client_seq, .. } => {
                assert_eq!(client_seq, seed + 1);
                committed += 1;
            }
            Response::RolledBack { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(committed > 0, "some smallbank transactions must commit");

    // A request for the family this server does not host: typed error.
    match client.call(Mix::Tpcc, 1, None).expect("call") {
        Response::Error { message, .. } => assert!(message.contains("hosts")),
        other => panic!("expected mix-mismatch error, got {other:?}"),
    }

    frontend.shutdown();
    assert_eq!(frontend.shared().total_grants(), 0);
    assert_eq!(frontend.shared().active_txns(), 0);
}

#[test]
fn overload_sheds_with_typed_response_and_counts() {
    // One worker, tiny queue: a burst must shed the excess, typed.
    let frontend = small_frontend(1, 2);
    let sink = EventSink::enabled(64);
    frontend.shared().set_event_sink(Arc::clone(&sink));
    let (tx, rx) = channel();
    let burst = 40u64;
    for seq in 0..burst {
        frontend.submit(
            Request {
                client_seq: seq,
                deadline_micros: 0,
                mix: Mix::Smallbank,
                seed: seq,
            },
            tx.clone(),
        );
    }
    drop(tx);
    let mut shed = 0u64;
    let mut committed = 0u64;
    let mut other = 0u64;
    for _ in 0..burst {
        match rx.recv().expect("every request gets exactly one response") {
            Response::Overloaded { queue_depth, .. } => {
                assert!(queue_depth >= 1);
                shed += 1;
            }
            Response::Committed { .. } => committed += 1,
            _ => other += 1,
        }
    }
    assert!(shed > 0, "a 40-burst into a 2-deep queue must shed");
    assert!(committed > 0, "queued work still commits");
    let c = sink.counters();
    assert_eq!(c.admission_sheds, shed);
    assert_eq!(c.admitted, burst - shed - other);
    assert!(c.admission_depth_max >= 1);
    frontend.shutdown();
    assert_eq!(frontend.shared().total_grants(), 0);
}

#[test]
fn deadlines_answer_typed_and_leave_engine_clean() {
    let frontend = small_frontend(1, 32);
    let sink = EventSink::enabled(64);
    frontend.shared().set_event_sink(Arc::clone(&sink));
    let (tx, rx) = channel();
    // Microsecond budgets: whether each expires in the queue or mid-run, the
    // answer must be typed DeadlineExceeded or a commit that beat the clock.
    let n = 30u64;
    for seq in 0..n {
        frontend.submit(
            Request {
                client_seq: seq,
                deadline_micros: 1,
                mix: Mix::Smallbank,
                seed: seq,
            },
            tx.clone(),
        );
    }
    drop(tx);
    let mut exceeded = 0u64;
    for _ in 0..n {
        match rx.recv().expect("response") {
            Response::DeadlineExceeded { .. } => exceeded += 1,
            Response::Committed { .. } | Response::RolledBack { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(exceeded > 0, "1µs budgets must time some requests out");
    assert_eq!(sink.counters().deadline_aborts, exceeded);
    frontend.shutdown();
    assert_eq!(frontend.shared().total_grants(), 0);
    assert_eq!(frontend.shared().active_txns(), 0);
    assert_eq!(frontend.shared().registry().mixed_epoch_lookups(), 0);
}

#[test]
fn memconn_faults_lose_loudly_and_never_leak() {
    let frontend = small_frontend(1, 8);
    let sink = EventSink::enabled(64);
    frontend.shared().set_event_sink(Arc::clone(&sink));
    // A ConnPlan's ordinals are per-connection, so each fault kind gets a
    // plan that fires on the 2nd request of its connection (the 1st request
    // proves the connection worked before the fault hit).
    let plans = [
        ConnPlan {
            slow_loris_every: Some(1), // every request dribbles in; all served
            ..ConnPlan::default()
        },
        ConnPlan {
            drop_mid_request_every: Some((2, 9)),
            ..ConnPlan::default()
        },
        ConnPlan {
            partial_write_every: Some((2, 12)),
            ..ConnPlan::default()
        },
        ConnPlan {
            churn_every: Some(2),
            ..ConnPlan::default()
        },
    ];
    let mut delivered = 0u64;
    let mut lost = 0u64;
    let mut torn_resp = 0u64;
    let mut seed = 0u64;
    for plan in plans {
        let mut conn = MemConn::open(&frontend, plan);
        for _ in 0..6u64 {
            if conn.dead() {
                conn = MemConn::open(&frontend, plan);
            }
            seed += 1;
            match conn.call(&frontend, seed, 0).expect("scripted call") {
                CallOutcome::Delivered(resp) => {
                    assert!(matches!(
                        resp,
                        Response::Committed { .. } | Response::RolledBack { .. }
                    ));
                    delivered += 1;
                }
                CallOutcome::LostBeforeAdmission(_) => lost += 1,
                CallOutcome::ResponseTorn(resp) => {
                    // Server decided the fate; the client just never heard it.
                    assert!(matches!(
                        resp,
                        Response::Committed { .. } | Response::RolledBack { .. }
                    ));
                    torn_resp += 1;
                }
                CallOutcome::TornDown(_) => unreachable!("no tear planned"),
            }
        }
    }
    assert!(delivered > 0 && lost > 0 && torn_resp > 0);
    let c = sink.counters();
    assert!(c.conn_churn > 0, "churn and fault teardown are counted");
    frontend.shutdown();
    assert_eq!(frontend.shared().total_grants(), 0);
    assert_eq!(frontend.shared().active_txns(), 0);
}

#[test]
fn torn_request_frame_poisons_connection_without_effects() {
    let frontend = small_frontend(1, 8);
    let plan = ConnPlan {
        tear_at: Some((2, acc_common::faults::Corruption::BitFlip(77))),
        ..ConnPlan::default()
    };
    let committed_before = {
        let mut conn = MemConn::open(&frontend, plan);
        match conn.call(&frontend, 1, 0).expect("clean first call") {
            CallOutcome::Delivered(_) => {}
            other => panic!("expected delivery, got {other:?}"),
        }
        match conn.call(&frontend, 2, 0).expect("torn second call") {
            CallOutcome::TornDown(_) => {}
            other => panic!("expected teardown, got {other:?}"),
        }
        assert!(conn.dead());
        frontend.shared().durable_wal_records()
    };
    // The torn request never became a transaction: nothing further durable.
    assert_eq!(frontend.shared().durable_wal_records(), committed_before);
    frontend.shutdown();
    assert_eq!(frontend.shared().total_grants(), 0);
}

#[test]
fn open_loop_overdrive_degrades_gracefully() {
    // Overdrive a 1-worker front-end at a rate it cannot serve: the excess
    // must shed typed, and every offered request must get a final answer.
    let frontend = small_frontend(1, 4);
    let schedule = ArrivalSchedule::generate(Mix::Smallbank, 11, 20_000.0, 300);
    let report = acc_server::run_open_loop(
        &frontend,
        &schedule,
        &LoadgenConfig {
            deadline: Some(Duration::from_millis(500)),
            retry: RetryPolicy::disabled(),
        },
    );
    assert_eq!(
        report.committed
            + report.shed
            + report.deadline_exceeded
            + report.rolled_back
            + report.errors,
        report.offered,
        "no silent loss: every offered request settles exactly once"
    );
    assert_eq!(report.errors, 0);
    assert!(report.shed > 0, "overdrive must shed");
    assert!(report.committed > 0, "admitted work still commits");
    frontend.shutdown();
    assert_eq!(frontend.shared().total_grants(), 0);
    assert_eq!(frontend.shared().active_txns(), 0);
}

#[test]
fn client_resubmission_is_counted_separately_from_engine_retries() {
    let frontend = small_frontend(1, 1);
    let schedule = ArrivalSchedule::generate(Mix::Smallbank, 3, 50_000.0, 100);
    let report = acc_server::run_open_loop(
        &frontend,
        &schedule,
        &LoadgenConfig {
            deadline: None,
            retry: RetryPolicy::standard(),
        },
    );
    // A 1-deep queue under burst sheds; the standard client policy resubmits
    // those sheds as whole new requests.
    assert!(report.client_resubmits > 0);
    assert_eq!(
        report.committed
            + report.shed
            + report.deadline_exceeded
            + report.rolled_back
            + report.errors,
        report.offered,
    );
    frontend.shutdown();
}

#[test]
fn tcp_client_retry_helper_resubmits_sheds() {
    let frontend = Arc::new(small_frontend(1, 1));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let _accept = serve(Arc::clone(&frontend), listener);
    let mut client = Client::connect(addr).expect("connect");
    let mut rng = SeededRng::new(5);
    let policy = RetryPolicy::standard();
    for seed in 100..110u64 {
        let (resp, _resubmits) = client
            .call_with_retry(Mix::Smallbank, seed, None, &policy, &mut rng)
            .expect("call");
        assert!(!matches!(resp, Response::Error { .. }));
    }
    frontend.shutdown();
}
