//! Epoch-versioned interference-table registry: online re-analysis with a
//! drained switchover.
//!
//! The paper's interference tables are built at design time and consulted as
//! pure lookups at run time (§3.2). That soundness argument assumes every
//! in-flight step was analyzed against the *same* tables that now answer for
//! it; swapping the tables under a running step could delay a writer by a
//! template it never conflicted with — or, worse, *not* delay one it does.
//! The registry makes table replacement safe by versioning:
//!
//! * every decomposed transaction **pins** the current epoch at its first
//!   step admission and keeps the pinned oracle for all of its lookups
//!   (forward and compensating steps alike);
//! * [`InterferenceRegistry::install`] publishes a re-analyzed oracle. With
//!   no pins outstanding the switch is immediate; otherwise the new tables
//!   become *pending* and the registry **drains** — pinned transactions
//!   finish under the tables of the epoch they started in, while new
//!   admissions park;
//! * the last unpin completes the switchover: the pending oracle becomes
//!   current, the epoch counter bumps, parked admissions wake and pin the
//!   new epoch.
//!
//! Because a pin spans the transaction's entire lock footprint (pins are
//! released only after `release_all`), at the moment of switchover **no
//! assertional lock from the old epoch exists** — a mixed-epoch lookup is
//! impossible by construction. [`InterferenceRegistry::check_pin`] is the
//! run-time audit of exactly that claim: one atomic load per step, off the
//! per-lookup hot path.

use crate::oracle::InterferenceOracle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The shared-ownership oracle type the registry versions.
pub type SharedOracle = Arc<dyn InterferenceOracle + Send + Sync>;

/// A transaction's hold on one table epoch: the epoch number it admitted
/// under and the oracle snapshot it must use for every interference decision
/// until it releases its locks.
pub struct EpochPin {
    /// The epoch this pin was taken in.
    pub epoch: u64,
    /// The tables of that epoch.
    pub oracle: SharedOracle,
}

impl std::fmt::Debug for EpochPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPin")
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

/// What [`InterferenceRegistry::install`] did with the new tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallOutcome {
    /// No pins were outstanding: the tables are current as of `epoch`.
    Immediate {
        /// The new epoch number.
        epoch: u64,
    },
    /// `pins` transactions still run under the old tables; the switch
    /// completes when the last of them unpins.
    Draining {
        /// Outstanding pins at install time.
        pins: u64,
    },
}

/// Bookkeeping for one completed switchover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchStats {
    /// The epoch that just became current.
    pub epoch: u64,
    /// Pins the switch had to wait out (0 for an immediate switch).
    pub drained: u64,
    /// Admissions that parked while the drain was in progress.
    pub parked: u64,
}

/// Outcome of a pin attempt.
pub enum PinAttempt {
    /// Admitted; the pin carries the epoch's oracle.
    Pinned(EpochPin),
    /// A drain is in progress and the caller asked not to block.
    WouldBlock,
    /// A drain was still in progress after the caller's wait cap.
    TimedOut,
}

struct RegState {
    current: SharedOracle,
    /// Tables waiting for the drain to finish. `Some` implies `pins > 0`.
    pending: Option<SharedOracle>,
    /// Outstanding [`EpochPin`]s on the current epoch.
    pins: u64,
    /// Pins outstanding when the in-progress drain began.
    draining: u64,
    /// Admissions parked by the in-progress drain.
    parked: u64,
}

/// The registry: one per shared system, consulted by every frontend.
pub struct InterferenceRegistry {
    state: Mutex<RegState>,
    admit: Condvar,
    /// Monotonic epoch number; bumped only under the state mutex, read with
    /// a single atomic load on the per-step audit path.
    epoch: AtomicU64,
    switches: AtomicU64,
    drained_pins: AtomicU64,
    parked_admissions: AtomicU64,
    /// Steps that observed a pin from a different epoch than the current
    /// one while unswitched tables were live — must stay zero.
    mixed_epoch_lookups: AtomicU64,
}

impl InterferenceRegistry {
    /// Wrap `oracle` as epoch 0.
    pub fn new(oracle: SharedOracle) -> InterferenceRegistry {
        InterferenceRegistry {
            state: Mutex::new(RegState {
                current: oracle,
                pending: None,
                pins: 0,
                draining: 0,
                parked: 0,
            }),
            admit: Condvar::new(),
            epoch: AtomicU64::new(0),
            switches: AtomicU64::new(0),
            drained_pins: AtomicU64::new(0),
            parked_admissions: AtomicU64::new(0),
            mixed_epoch_lookups: AtomicU64::new(0),
        }
    }

    /// The current epoch number (single atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current tables (unpinned snapshot — legacy/2PL callers, whose
    /// `LEGACY_STEP` decisions are table-independent, and cold paths).
    pub fn current(&self) -> SharedOracle {
        Arc::clone(&self.state.lock().expect("registry not poisoned").current)
    }

    /// Completed switchovers.
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// Mixed-epoch audit failures (must stay zero).
    pub fn mixed_epoch_lookups(&self) -> u64 {
        self.mixed_epoch_lookups.load(Ordering::Relaxed)
    }

    /// Outstanding pins (diagnostics/tests).
    pub fn pins(&self) -> u64 {
        self.state.lock().expect("registry not poisoned").pins
    }

    /// True while a drain is in progress (new tables pending).
    pub fn draining(&self) -> bool {
        self.state
            .lock()
            .expect("registry not poisoned")
            .pending
            .is_some()
    }

    /// Pin the current epoch for one transaction. While a drain is in
    /// progress the admission parks (`block`) or reports
    /// [`PinAttempt::WouldBlock`] — admitting under tables that are about to
    /// be replaced would re-create the mixed-epoch hazard the drain exists
    /// to prevent.
    pub fn pin(&self, block: bool, cap: Duration) -> PinAttempt {
        let mut st = self.state.lock().expect("registry not poisoned");
        if st.pending.is_some() {
            if !block {
                return PinAttempt::WouldBlock;
            }
            st.parked += 1;
            self.parked_admissions.fetch_add(1, Ordering::Relaxed);
            let deadline = Instant::now() + cap;
            while st.pending.is_some() {
                let now = Instant::now();
                if now >= deadline {
                    return PinAttempt::TimedOut;
                }
                let (guard, _timeout) = self
                    .admit
                    .wait_timeout(st, deadline - now)
                    .expect("registry not poisoned");
                st = guard;
            }
        }
        st.pins += 1;
        PinAttempt::Pinned(EpochPin {
            // Consistent with `current`: the epoch only changes under the
            // state mutex we hold.
            epoch: self.epoch.load(Ordering::Acquire),
            oracle: Arc::clone(&st.current),
        })
    }

    /// Release one pin. Returns the switch stats when this unpin completed a
    /// pending switchover (the caller emits the observability event).
    pub fn unpin(&self, pin: EpochPin) -> Option<SwitchStats> {
        drop(pin.oracle);
        let mut st = self.state.lock().expect("registry not poisoned");
        debug_assert!(st.pins > 0, "unpin without a pin");
        st.pins = st.pins.saturating_sub(1);
        if st.pins == 0 {
            if let Some(next) = st.pending.take() {
                return Some(self.switch(&mut st, next));
            }
        }
        None
    }

    /// Publish re-analyzed tables. Immediate when nothing is pinned;
    /// otherwise the registry drains (latest-wins if a drain was already in
    /// progress: the superseded pending tables were never current, so no
    /// lookup ever saw them).
    pub fn install(&self, oracle: SharedOracle) -> (InstallOutcome, Option<SwitchStats>) {
        let mut st = self.state.lock().expect("registry not poisoned");
        if st.pins == 0 {
            debug_assert!(st.pending.is_none(), "pending tables with zero pins");
            let stats = self.switch(&mut st, oracle);
            (
                InstallOutcome::Immediate { epoch: stats.epoch },
                Some(stats),
            )
        } else {
            if st.pending.is_none() {
                st.draining = st.pins;
                st.parked = 0;
            }
            st.pending = Some(oracle);
            (InstallOutcome::Draining { pins: st.pins }, None)
        }
    }

    fn switch(&self, st: &mut RegState, next: SharedOracle) -> SwitchStats {
        st.current = next;
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.switches.fetch_add(1, Ordering::Relaxed);
        self.drained_pins.fetch_add(st.draining, Ordering::Relaxed);
        let stats = SwitchStats {
            epoch,
            drained: st.draining,
            parked: st.parked,
        };
        st.draining = 0;
        st.parked = 0;
        self.admit.notify_all();
        stats
    }

    /// Per-step mixed-epoch audit: a pinned transaction's epoch must equal
    /// the current epoch at every step admission — during a drain the epoch
    /// has not switched yet, and after the switch no old pin can still be
    /// running (the switch waited for all of them). One atomic load; a
    /// failure is counted, not panicked, so torture can assert on the total.
    pub fn check_pin(&self, pin: &EpochPin) -> bool {
        let ok = pin.epoch == self.epoch();
        if !ok {
            self.mixed_epoch_lookups.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{NoInterference, TotalInterference};
    use acc_common::{AssertionTemplateId, StepTypeId};

    const S: StepTypeId = StepTypeId(1);
    const A: AssertionTemplateId = AssertionTemplateId(1);
    const CAP: Duration = Duration::from_secs(5);

    fn pinned(r: &InterferenceRegistry) -> EpochPin {
        match r.pin(true, CAP) {
            PinAttempt::Pinned(p) => p,
            _ => panic!("pin blocked with no drain in progress"),
        }
    }

    #[test]
    fn install_with_no_pins_is_immediate() {
        let reg = InterferenceRegistry::new(Arc::new(NoInterference));
        assert_eq!(reg.epoch(), 0);
        let (outcome, stats) = reg.install(Arc::new(TotalInterference));
        assert_eq!(outcome, InstallOutcome::Immediate { epoch: 1 });
        assert_eq!(
            stats,
            Some(SwitchStats {
                epoch: 1,
                drained: 0,
                parked: 0
            })
        );
        assert_eq!(reg.epoch(), 1);
        assert!(reg.current().write_interferes(S, A));
    }

    #[test]
    fn pinned_txn_drains_under_its_own_tables() {
        let reg = InterferenceRegistry::new(Arc::new(NoInterference));
        let pin = pinned(&reg);
        assert_eq!(pin.epoch, 0);
        let (outcome, stats) = reg.install(Arc::new(TotalInterference));
        assert_eq!(outcome, InstallOutcome::Draining { pins: 1 });
        assert!(stats.is_none());
        assert!(reg.draining());
        // The pinned snapshot still answers with the old tables, and the
        // epoch has not switched.
        assert!(!pin.oracle.write_interferes(S, A));
        assert!(reg.check_pin(&pin));
        assert_eq!(reg.epoch(), 0);
        // The last unpin completes the switch.
        let stats = reg.unpin(pin).expect("switch completes at last unpin");
        assert_eq!(
            stats,
            SwitchStats {
                epoch: 1,
                drained: 1,
                parked: 0
            }
        );
        assert_eq!(reg.epoch(), 1);
        assert!(!reg.draining());
        assert!(reg.current().write_interferes(S, A));
    }

    #[test]
    fn admission_during_drain_would_block_or_parks() {
        let reg = Arc::new(InterferenceRegistry::new(Arc::new(NoInterference)));
        let pin = pinned(&reg);
        reg.install(Arc::new(TotalInterference));
        assert!(matches!(reg.pin(false, CAP), PinAttempt::WouldBlock));
        // A blocking admission parks until the drain completes...
        let reg2 = Arc::clone(&reg);
        let joiner = std::thread::spawn(move || match reg2.pin(true, CAP) {
            PinAttempt::Pinned(p) => {
                let epoch = p.epoch;
                reg2.unpin(p);
                epoch
            }
            _ => panic!("parked admission never admitted"),
        });
        std::thread::sleep(Duration::from_millis(30));
        let stats = reg.unpin(pin).expect("switch");
        // ...and admits under the *new* epoch.
        assert_eq!(joiner.join().expect("joiner"), 1);
        assert_eq!(stats.drained, 1);
        assert_eq!(stats.parked, 1);
        assert_eq!(reg.switches(), 1);
    }

    #[test]
    fn admission_timeout_reports_instead_of_hanging() {
        let reg = InterferenceRegistry::new(Arc::new(NoInterference));
        let pin = pinned(&reg);
        reg.install(Arc::new(TotalInterference));
        assert!(matches!(
            reg.pin(true, Duration::from_millis(20)),
            PinAttempt::TimedOut
        ));
        reg.unpin(pin);
    }

    #[test]
    fn latest_install_wins_during_drain() {
        let reg = InterferenceRegistry::new(Arc::new(NoInterference));
        let pin = pinned(&reg);
        reg.install(Arc::new(TotalInterference));
        // Superseded before ever becoming current.
        let (outcome, _) = reg.install(Arc::new(NoInterference));
        assert_eq!(outcome, InstallOutcome::Draining { pins: 1 });
        reg.unpin(pin);
        assert_eq!(reg.epoch(), 1, "one switch, not two");
        assert!(!reg.current().write_interferes(S, A), "latest tables won");
    }

    #[test]
    fn stale_pin_is_counted_not_panicked() {
        let reg = InterferenceRegistry::new(Arc::new(NoInterference));
        let pin = pinned(&reg);
        // Forge staleness (cannot happen through the public protocol): an
        // immediate install under an outstanding pin is exactly the hazard
        // the drain prevents.
        let forged = EpochPin {
            epoch: pin.epoch + 7,
            oracle: Arc::clone(&pin.oracle),
        };
        assert!(!reg.check_pin(&forged));
        assert_eq!(reg.mixed_epoch_lookups(), 1);
        assert!(reg.check_pin(&pin));
        assert_eq!(reg.mixed_epoch_lookups(), 1);
        reg.unpin(pin);
        drop(forged);
        assert_eq!(reg.pins(), 0);
    }

    #[test]
    fn many_pins_one_switch() {
        let reg = InterferenceRegistry::new(Arc::new(NoInterference));
        let pins: Vec<EpochPin> = (0..5).map(|_| pinned(&reg)).collect();
        let (outcome, _) = reg.install(Arc::new(TotalInterference));
        assert_eq!(outcome, InstallOutcome::Draining { pins: 5 });
        let mut stats = None;
        for pin in pins {
            assert!(stats.is_none(), "switch fired before the last unpin");
            stats = reg.unpin(pin);
        }
        let stats = stats.expect("switch at last unpin");
        assert_eq!(stats.drained, 5);
        assert_eq!(reg.epoch(), 1);
    }
}
