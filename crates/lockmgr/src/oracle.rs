//! The interference oracle: the lock manager's window onto the design-time
//! interference tables.
//!
//! The paper's central implementation claim is that run-time conflict
//! decisions for assertional locks are *table lookups*, never predicate
//! evaluation (§3.2, contrast with predicate locks). The oracle trait is that
//! lookup; `acc-core` implements it on top of the tables produced by the
//! design-time analysis.

use acc_common::{AssertionTemplateId, StepTypeId};

/// Answers interference questions between step types and assertion templates.
///
/// Implementations must be cheap and pure: the lock manager calls these in
/// its innermost compatibility loop.
pub trait InterferenceOracle {
    /// Would executing a step of type `step` possibly falsify assertion
    /// template `assertion` by *writing* an item it references?
    fn write_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool;

    /// Would a *read* by a step of type `step` be unsound while `assertion`
    /// is pinned on the item?
    ///
    /// Ordinary assertions return `false` here (reads never invalidate a
    /// predicate). The `DIRTY` pseudo-template returns `true` for legacy /
    /// unanalyzed step types, which is how multi-step transactions stay
    /// invisible to transactions that were never analyzed (paper §3.3,
    /// "legacy and ad hoc transactions").
    fn read_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool;

    /// May a step of type `step` satisfy its reads from committed row
    /// versions without acquiring locks at all?
    ///
    /// Sound only for steps the analysis covered whose write row is empty —
    /// a step that writes nothing can neither falsify a pinned assertion
    /// nor expose uncommitted data, and the version chain's visibility rule
    /// supplies the committed-reads guarantee. Defaults to `false`
    /// (conservative), so legacy oracles and baselines never take the fast
    /// path.
    fn version_read_safe(&self, _step: StepTypeId) -> bool {
        false
    }
}

/// An oracle that reports no interference anywhere: plain two-phase locking
/// behaviour (assertional locks never conflict). Useful as the baseline and
/// in lock-manager unit tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInterference;

impl InterferenceOracle for NoInterference {
    fn write_interferes(&self, _: StepTypeId, _: AssertionTemplateId) -> bool {
        false
    }
    fn read_interferes(&self, _: StepTypeId, _: AssertionTemplateId) -> bool {
        false
    }
}

/// An oracle that reports interference everywhere: maximally conservative,
/// equivalent to treating every assertional lock as an exclusive lock.
#[derive(Debug, Clone, Copy, Default)]
pub struct TotalInterference;

impl InterferenceOracle for TotalInterference {
    fn write_interferes(&self, _: StepTypeId, _: AssertionTemplateId) -> bool {
        true
    }
    fn read_interferes(&self, _: StepTypeId, _: AssertionTemplateId) -> bool {
        true
    }
}

/// A closure-backed oracle for tests.
pub struct FnOracle<W, R>
where
    W: Fn(StepTypeId, AssertionTemplateId) -> bool,
    R: Fn(StepTypeId, AssertionTemplateId) -> bool,
{
    /// Write-interference decision.
    pub write: W,
    /// Read-interference decision.
    pub read: R,
}

impl<W, R> InterferenceOracle for FnOracle<W, R>
where
    W: Fn(StepTypeId, AssertionTemplateId) -> bool,
    R: Fn(StepTypeId, AssertionTemplateId) -> bool,
{
    fn write_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool {
        (self.write)(step, assertion)
    }
    fn read_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool {
        (self.read)(step, assertion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_oracles() {
        let s = StepTypeId(1);
        let a = AssertionTemplateId(2);
        assert!(!NoInterference.write_interferes(s, a));
        assert!(!NoInterference.read_interferes(s, a));
        assert!(TotalInterference.write_interferes(s, a));
        assert!(TotalInterference.read_interferes(s, a));
    }

    #[test]
    fn fn_oracle_delegates() {
        let o = FnOracle {
            write: |s, _| s == StepTypeId(1),
            read: |_, a| a == AssertionTemplateId(0),
        };
        assert!(o.write_interferes(StepTypeId(1), AssertionTemplateId(5)));
        assert!(!o.write_interferes(StepTypeId(2), AssertionTemplateId(5)));
        assert!(o.read_interferes(StepTypeId(9), AssertionTemplateId(0)));
        assert!(!o.read_interferes(StepTypeId(9), AssertionTemplateId(1)));
    }
}
