//! Conventional lock modes and their compatibility matrix.

/// The five conventional (granular two-phase locking) modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared: will take `S` locks below this resource.
    IS,
    /// Intention exclusive: will take `X` locks below this resource.
    IX,
    /// Shared.
    S,
    /// Shared + intention exclusive.
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// The classic compatibility matrix (Gray & Reuter); see
    /// [`conv_compatible`].
    pub fn compatible(self, other: LockMode) -> bool {
        conv_compatible(self, other)
    }

    /// True if holding `self` implies holding `other` (mode dominance).
    pub fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        self == other
            || matches!(
                (self, other),
                (X, _) | (SIX, S | IX | IS) | (S, IS) | (IX, IS)
            )
    }

    /// True for modes that announce an intent or ability to write.
    pub fn is_write(self) -> bool {
        matches!(self, LockMode::IX | LockMode::SIX | LockMode::X)
    }

    /// The weakest mode that covers both (used for upgrades: `S + IX = SIX`).
    pub fn supremum(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self.covers(other) {
            return self;
        }
        if other.covers(self) {
            return other;
        }
        match (self, other) {
            (S, IX) | (IX, S) | (S, SIX) | (SIX, S) | (IX, SIX) | (SIX, IX) => SIX,
            _ => X,
        }
    }
}

/// Symmetric compatibility check, written as the full matrix for clarity.
pub fn conv_compatible(a: LockMode, b: LockMode) -> bool {
    use LockMode::*;
    matches!(
        (a, b),
        (IS, IS | IX | S | SIX) | (IX, IS | IX) | (S, IS | S) | (SIX, IS)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    const ALL: [LockMode; 5] = [IS, IX, S, SIX, X];

    #[test]
    fn matrix_is_symmetric() {
        for a in ALL {
            for b in ALL {
                assert_eq!(
                    conv_compatible(a, b),
                    conv_compatible(b, a),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn x_conflicts_with_everything() {
        for m in ALL {
            assert!(!conv_compatible(X, m));
        }
    }

    #[test]
    fn is_compatible_with_all_but_x() {
        for m in [IS, IX, S, SIX] {
            assert!(conv_compatible(IS, m));
        }
    }

    #[test]
    fn classic_entries() {
        assert!(conv_compatible(S, S));
        assert!(!conv_compatible(S, IX));
        assert!(conv_compatible(IX, IX));
        assert!(!conv_compatible(SIX, S));
        assert!(!conv_compatible(SIX, SIX));
        assert!(conv_compatible(SIX, IS));
    }

    #[test]
    fn covers_is_reflexive_and_x_tops() {
        for m in ALL {
            assert!(m.covers(m));
            assert!(X.covers(m));
        }
        assert!(SIX.covers(S));
        assert!(SIX.covers(IX));
        assert!(!S.covers(X));
        assert!(!IX.covers(S));
    }

    #[test]
    fn supremum_entries() {
        assert_eq!(S.supremum(IX), SIX);
        assert_eq!(S.supremum(X), X);
        assert_eq!(IS.supremum(S), S);
        assert_eq!(IX.supremum(IX), IX);
        assert_eq!(SIX.supremum(X), X);
    }

    #[test]
    fn write_modes() {
        assert!(X.is_write());
        assert!(IX.is_write());
        assert!(SIX.is_write());
        assert!(!S.is_write());
        assert!(!IS.is_write());
    }
}
