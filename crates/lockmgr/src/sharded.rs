//! Hash-sharded lock tables: N independently-locked [`LockManager`] state
//! machines behind one front end.
//!
//! # Why
//!
//! A single `Mutex<LockManager>` serializes every lock request in the system,
//! even between transactions touching disjoint data — exactly the
//! coordination the paper's assertional locks exist to avoid. Sharding the
//! lock table by resource hash lets disjoint requests proceed on different
//! shard mutexes; only requests for the *same* shard contend.
//!
//! # Lock ordering and the stale-but-safe snapshot
//!
//! Each shard is a pure [`LockManager`]. The front end never holds two shard
//! mutexes at once: every operation either works inside one shard, or visits
//! shards strictly one at a time in index order. Cross-shard deadlock
//! detection therefore reads a *snapshot* assembled from per-shard wait-for
//! edges taken at slightly different times. That snapshot can be stale in two
//! ways, both safe:
//!
//! * it can **miss** a cycle assembled while we walked the shards — the
//!   waiter's timeout re-detection ([`ShardedLockManager::detect_from`])
//!   sweeps it up on the next 50 ms slice, exactly like cycles that form
//!   after enqueue did under the unsharded manager;
//! * it can report a **spurious** cycle whose edges never coexisted — the
//!   resolution (abort one step and retry, §3.4 rules unchanged) is always
//!   safe, merely conservative. Before acting on a cycle the front end
//!   re-checks under the home shard's mutex that the requester is still
//!   queued, so a race with a grant resolves in favour of the grant.
//!
//! # Grant-notice delivery
//!
//! Waking a waiter must not race with that waiter withdrawing its request,
//! or a wakeup is lost forever. All notice-producing operations take a
//! `notify` callback and invoke it **while still holding the shard mutex**
//! that produced the grant. A waiter that cancels its request (under the same
//! shard mutex) is therefore guaranteed: after `cancel_waiting` returns, no
//! unposted grant for its ticket can exist anywhere. Within one shard,
//! notices are still emitted in sorted resource order, preserving the
//! determinism contract the simulator relies on.

use crate::manager::{EnqueueOutcome, GrantNotice, LockManager, RequestOutcome, Ticket};
use crate::oracle::InterferenceOracle;
use crate::request::{LockKind, Request};
use crate::waitfor::WaitForGraph;
use acc_common::events::{Event, EventSink, TxnList};
use acc_common::{ResourceId, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// How [`ShardedLockManager::detect_from`] resolved a wait-for cycle. Grant
/// notices are delivered through the `notify` callback (under the shard
/// mutexes), not returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleResolution {
    /// Transactions whose current steps must be aborted to break the cycle.
    pub victims: Vec<TxnId>,
    /// True if the caller itself is the victim: its queued requests have
    /// been withdrawn and it must undo its step and retry. False means the
    /// caller is compensating; it dooms the victims and keeps waiting.
    pub self_is_victim: bool,
}

/// Tickets carry their shard index in the high 16 bits, so per-shard ticket
/// counters never collide and a ticket alone is globally unique.
const TICKET_SHARD_SHIFT: u32 = 48;

/// One shard: a locked [`LockManager`] plus a transaction-interest filter.
struct Shard {
    lm: Mutex<LockManager>,
    /// Bloom-style mask of transactions that *may* have state (grants or
    /// queued requests) in this shard: bit `txn.0 % 64`. Set under the shard
    /// mutex whenever a request is admitted; reset to zero — also under the
    /// mutex — whenever the shard drains empty. Release and cancel paths
    /// skip shards whose bit for the transaction is clear, so a transaction
    /// that touched one shard releases in O(1) shards instead of O(N).
    ///
    /// Safety of the skip: state for transaction T is only ever *created* by
    /// T's own thread (waiting→granted transitions stay in place), and the
    /// `fetch_or` happens inside the same critical section as the insert, so
    /// T's later relaxed load observes its own bit unless the shard truly
    /// drained in between — in which case skipping is correct. A set bit
    /// with no state (hash sharing, saturation under load) merely costs the
    /// mutex visit the unfiltered code always paid.
    interest: AtomicU64,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, LockManager> {
        self.lm.lock().expect("shard not poisoned")
    }

    /// Lock for an operation on behalf of `txn` that may create state.
    fn lock_noting(&self, txn: TxnId) -> MutexGuard<'_, LockManager> {
        let lm = self.lock();
        self.interest.fetch_or(txn_bit(txn), Ordering::Relaxed);
        lm
    }

    /// True if `txn` certainly has no state here (skip without locking).
    fn excludes(&self, txn: TxnId) -> bool {
        self.interest.load(Ordering::Relaxed) & txn_bit(txn) == 0
    }

    /// After removing state under `lm`: reset the filter if the shard
    /// drained. Exact emptiness is checked under the mutex, so no
    /// concurrent `lock_noting` bit can be wiped.
    fn reset_if_empty(&self, lm: &LockManager) {
        if lm.is_empty() {
            self.interest.store(0, Ordering::Relaxed);
        }
    }
}

fn txn_bit(txn: TxnId) -> u64 {
    1u64 << (txn.0 % 64)
}

/// N hash-sharded lock tables behind one thread-safe front end.
pub struct ShardedLockManager {
    shards: Vec<Shard>,
    /// Front-end copy of the event sink for cross-shard deadlock events
    /// (each shard holds its own copy for its hot path).
    sink: Mutex<Arc<EventSink>>,
}

impl ShardedLockManager {
    /// The default shard count: enough to keep 8–16 threads of disjoint
    /// traffic off each other's mutexes without bloating the footprint.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Build with `n_shards` shards (must be a power of two ≤ 65536).
    pub fn new(n_shards: usize) -> Self {
        assert!(
            n_shards.is_power_of_two() && n_shards <= 1 << 16,
            "shard count must be a power of two ≤ 65536, got {n_shards}"
        );
        let shards = (0..n_shards)
            .map(|i| {
                let mut lm = LockManager::new();
                lm.set_ticket_base((i as u64) << TICKET_SHARD_SHIFT);
                Shard {
                    lm: Mutex::new(lm),
                    interest: AtomicU64::new(0),
                }
            })
            .collect();
        ShardedLockManager {
            shards,
            sink: Mutex::new(Arc::new(EventSink::default())),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a resource hashes to.
    pub fn shard_of(&self, resource: ResourceId) -> usize {
        (Self::hash64(resource) >> 32) as usize & (self.shards.len() - 1)
    }

    /// A fixed (process-independent) 64-bit mix of a resource id, so shard
    /// placement is deterministic across runs.
    fn hash64(resource: ResourceId) -> u64 {
        const K: u64 = 0x9e37_79b9_7f4a_7c15;
        let (tag, a, b): (u64, u64, u64) = match resource {
            ResourceId::Table(t) => (1, t.0 as u64, 0),
            ResourceId::Page(t, p) => (2, t.0 as u64, p as u64),
            ResourceId::Row(t, s) => (3, t.0 as u64, s),
            ResourceId::Named(n) => (4, n as u64, 0),
        };
        let mut h = tag.wrapping_mul(K);
        h ^= a.wrapping_add(K).wrapping_mul(K).rotate_left(31);
        h ^= b.wrapping_add(K).wrapping_mul(K).rotate_left(17);
        h.wrapping_mul(K)
    }

    fn shard(&self, resource: ResourceId) -> MutexGuard<'_, LockManager> {
        self.shards[self.shard_of(resource)].lock()
    }

    /// Route every shard's events (and the front end's deadlock events) into
    /// `sink`.
    pub fn set_sink(&self, sink: Arc<EventSink>) {
        *self.sink.lock().expect("sink not poisoned") = Arc::clone(&sink);
        for s in &self.shards {
            s.lock().set_sink(Arc::clone(&sink));
        }
    }

    /// The current event sink.
    pub fn sink(&self) -> Arc<EventSink> {
        Arc::clone(&self.sink.lock().expect("sink not poisoned"))
    }

    /// Request a lock; grants and enqueues happen inside the resource's
    /// shard, deadlock detection across all shards. Semantics (victim
    /// choice, §3.4 compensating rule, outcome shape) match
    /// [`LockManager::request`].
    pub fn request(&self, req: Request, oracle: &dyn InterferenceOracle) -> RequestOutcome {
        let outcome = self.shards[self.shard_of(req.resource)]
            .lock_noting(req.txn)
            .grant_or_enqueue(req, oracle);
        match outcome {
            EnqueueOutcome::Granted => RequestOutcome::Granted,
            EnqueueOutcome::Waiting(ticket) => self.detect_enqueued(req, ticket, oracle),
        }
    }

    /// Snapshot the cross-shard wait-for graph, one shard at a time. Shards
    /// whose interest filter is zero are empty and contribute no edges —
    /// skipping them unlocked is covered by the stale-but-safe snapshot
    /// argument above (a racing insert is caught by timeout re-detection).
    fn snapshot_graph(&self, oracle: &dyn InterferenceOracle) -> WaitForGraph {
        let mut edges = Vec::new();
        for s in &self.shards {
            if s.interest.load(Ordering::Relaxed) == 0 {
                continue;
            }
            edges.extend(s.lock().wait_edges(oracle));
        }
        WaitForGraph::from_edges(edges)
    }

    /// Enqueue-time deadlock detection over the cross-shard snapshot.
    fn detect_enqueued(
        &self,
        req: Request,
        ticket: Ticket,
        oracle: &dyn InterferenceOracle,
    ) -> RequestOutcome {
        let Some(cycle) = self.snapshot_graph(oracle).cycle_through(req.txn) else {
            return RequestOutcome::Waiting(ticket);
        };
        if !req.ctx.compensating {
            // Re-verify under the home shard: if a racing release already
            // granted our ticket, the snapshot's cycle is stale — take the
            // grant instead of a spurious abort.
            let mut shard = self.shard(req.resource);
            if !shard.withdraw_ticket(req.resource, ticket) {
                return RequestOutcome::Waiting(ticket);
            }
            drop(shard);
            self.emit_deadlock(&cycle, &[req.txn], &[req.txn], false);
            return RequestOutcome::Deadlock {
                victims: vec![req.txn],
                ticket: None,
            };
        }
        // Compensating requester (§3.4): never the victim; doom the other
        // cycle members that are not themselves compensating.
        if !self
            .shard(req.resource)
            .is_ticket_waiting(req.resource, ticket)
        {
            return RequestOutcome::Waiting(ticket);
        }
        let victims: Vec<TxnId> = cycle
            .iter()
            .copied()
            .filter(|&t| t != req.txn && !self.has_compensating_waiter(t))
            .collect();
        self.emit_deadlock(
            &cycle,
            if victims.is_empty() {
                std::slice::from_ref(&req.txn)
            } else {
                &victims
            },
            &victims,
            true,
        );
        if victims.is_empty() {
            // Degenerate compensating-vs-compensating deadlock: the
            // requester retries its (step-scoped) lock acquisition.
            self.shard(req.resource)
                .withdraw_ticket(req.resource, ticket);
            return RequestOutcome::Deadlock {
                victims: vec![req.txn],
                ticket: None,
            };
        }
        RequestOutcome::Deadlock {
            victims,
            ticket: Some(ticket),
        }
    }

    /// Emit the deadlock/victim events, mirroring the unsharded manager:
    /// `victims` is what the `Deadlock` event displays, `victim_events` the
    /// transactions that get a `DeadlockVictim` event (empty for the
    /// degenerate comp-vs-comp retry, which is not a victimization).
    fn emit_deadlock(
        &self,
        cycle: &[TxnId],
        victims: &[TxnId],
        victim_events: &[TxnId],
        compensating_requester: bool,
    ) {
        let sink = self.sink();
        if !sink.is_enabled() {
            return;
        }
        sink.emit(Event::Deadlock {
            cycle: TxnList::from_slice(cycle),
            victims: TxnList::from_slice(victims),
            compensating_requester,
        });
        for &v in victim_events {
            sink.emit(Event::DeadlockVictim {
                txn: v,
                compensating: false,
            });
        }
    }

    /// Timeout-slice re-detection from a currently waiting transaction —
    /// the cross-shard counterpart of [`LockManager::detect_from`]. Grant
    /// notices produced by withdrawing a victim's requests are delivered
    /// through `notify` under the owning shard's mutex.
    pub fn detect_from(
        &self,
        txn: TxnId,
        oracle: &dyn InterferenceOracle,
        notify: &mut dyn FnMut(GrantNotice),
    ) -> Option<CycleResolution> {
        if !self.is_waiting(txn) {
            return None;
        }
        let cycle = self.snapshot_graph(oracle).cycle_through(txn)?;
        let compensating = self.has_compensating_waiter(txn);
        if compensating {
            let victims: Vec<TxnId> = cycle
                .iter()
                .copied()
                .filter(|&t| t != txn && !self.has_compensating_waiter(t))
                .collect();
            self.emit_deadlock(
                &cycle,
                if victims.is_empty() {
                    std::slice::from_ref(&txn)
                } else {
                    &victims
                },
                &victims,
                true,
            );
            if victims.is_empty() {
                self.cancel_waiting(txn, oracle, notify);
                return Some(CycleResolution {
                    victims: vec![txn],
                    self_is_victim: true,
                });
            }
            Some(CycleResolution {
                victims,
                self_is_victim: false,
            })
        } else {
            self.emit_deadlock(&cycle, &[txn], &[txn], false);
            self.cancel_waiting(txn, oracle, notify);
            Some(CycleResolution {
                victims: vec![txn],
                self_is_victim: true,
            })
        }
    }

    /// Remove `txn`'s queued requests everywhere. Notices for waiters
    /// unblocked by the withdrawals are delivered through `notify` under the
    /// owning shard's mutex; after this returns, no grant for any of `txn`'s
    /// withdrawn tickets can be produced.
    pub fn cancel_waiting(
        &self,
        txn: TxnId,
        oracle: &dyn InterferenceOracle,
        notify: &mut dyn FnMut(GrantNotice),
    ) {
        for s in &self.shards {
            if s.excludes(txn) {
                continue;
            }
            let mut shard = s.lock();
            for n in shard.cancel_waiting(txn, oracle) {
                notify(n);
            }
            s.reset_if_empty(&shard);
        }
    }

    /// Release the grants of `txn` selected by `pred`, shard by shard in
    /// index order (resource-sorted within each shard).
    pub fn release_where(
        &self,
        txn: TxnId,
        oracle: &dyn InterferenceOracle,
        pred: impl Fn(LockKind, &crate::request::RequestCtx) -> bool,
        notify: &mut dyn FnMut(GrantNotice),
    ) {
        for s in &self.shards {
            if s.excludes(txn) {
                continue;
            }
            let mut shard = s.lock();
            for n in shard.release_where(txn, oracle, &pred) {
                notify(n);
            }
            s.reset_if_empty(&shard);
        }
    }

    /// Release everything `txn` holds and cancel everything it waits for.
    pub fn release_all(
        &self,
        txn: TxnId,
        oracle: &dyn InterferenceOracle,
        notify: &mut dyn FnMut(GrantNotice),
    ) {
        for s in &self.shards {
            if s.excludes(txn) {
                continue;
            }
            let mut shard = s.lock();
            for n in shard.release_all(txn, oracle) {
                notify(n);
            }
            s.reset_if_empty(&shard);
        }
    }

    // ----- diagnostics (aggregate across shards) ---------------------------

    /// True if `txn` holds a grant of `kind` on `resource`.
    pub fn holds(&self, txn: TxnId, resource: ResourceId, kind: LockKind) -> bool {
        self.shard(resource).holds(txn, resource, kind)
    }

    /// True if `txn` has a queued request anywhere.
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.shards.iter().any(|s| s.lock().is_waiting(txn))
    }

    /// True if `txn` has a queued compensating request anywhere.
    pub fn has_compensating_waiter(&self, txn: TxnId) -> bool {
        self.shards
            .iter()
            .any(|s| s.lock().has_compensating_waiter(txn))
    }

    /// Number of queued requests on `resource`.
    pub fn queue_len(&self, resource: ResourceId) -> usize {
        self.shard(resource).queue_len(resource)
    }

    /// Total grants across all shards (diagnostics; the lock-leak check).
    pub fn total_grants(&self) -> usize {
        self.shards.iter().map(|s| s.lock().total_grants()).sum()
    }

    /// Every granted (txn, resource, kind) triple across shards, sorted by
    /// transaction.
    pub fn all_grants(&self) -> Vec<(TxnId, ResourceId, LockKind)> {
        let mut v: Vec<_> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().all_grants())
            .collect();
        v.sort_unstable_by_key(|(t, _, _)| *t);
        v
    }

    /// Every queued (txn, resource, kind) triple across shards, sorted by
    /// transaction.
    pub fn all_waiters(&self) -> Vec<(TxnId, ResourceId, LockKind)> {
        let mut v: Vec<_> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().all_waiters())
            .collect();
        v.sort_unstable_by_key(|(t, _, _)| *t);
        v
    }

    /// Resources `txn` currently holds grants on, sorted.
    pub fn held_resources(&self, txn: TxnId) -> Vec<ResourceId> {
        let mut v: Vec<_> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().held_resources(txn))
            .collect();
        v.sort_unstable();
        v
    }
}

impl std::fmt::Debug for ShardedLockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLockManager")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NoInterference;
    use crate::request::RequestCtx;
    use acc_common::StepTypeId;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    fn req(txn: u64, r: ResourceId, kind: LockKind) -> Request {
        Request::new(t(txn), r, kind, RequestCtx::plain(StepTypeId(0)))
    }

    #[test]
    fn shard_placement_is_deterministic_and_spread() {
        let lm = ShardedLockManager::new(16);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let r = ResourceId::Named(i);
            assert_eq!(lm.shard_of(r), lm.shard_of(r));
            seen.insert(lm.shard_of(r));
        }
        assert!(
            seen.len() > 4,
            "64 resources landed on {} shards",
            seen.len()
        );
    }

    #[test]
    fn tickets_are_globally_unique_across_shards() {
        let lm = ShardedLockManager::new(4);
        let mut tickets = std::collections::HashSet::new();
        // Force waits on many resources so several shards hand out tickets.
        for i in 0..32u32 {
            let r = ResourceId::Named(i);
            assert_eq!(
                lm.request(req(1, r, LockKind::X), &NoInterference),
                RequestOutcome::Granted
            );
            match lm.request(req(2 + u64::from(i), r, LockKind::X), &NoInterference) {
                RequestOutcome::Waiting(ticket) => assert!(tickets.insert(ticket)),
                other => panic!("expected wait, got {other:?}"),
            }
        }
    }

    #[test]
    fn grant_and_release_cross_shard() {
        let lm = ShardedLockManager::new(8);
        let r = ResourceId::Named(7);
        assert_eq!(
            lm.request(req(1, r, LockKind::X), &NoInterference),
            RequestOutcome::Granted
        );
        let ticket = match lm.request(req(2, r, LockKind::X), &NoInterference) {
            RequestOutcome::Waiting(ticket) => ticket,
            other => panic!("expected wait, got {other:?}"),
        };
        let mut granted = Vec::new();
        lm.release_all(t(1), &NoInterference, &mut |n| granted.push(n));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].ticket, ticket);
        assert!(lm.holds(t(2), r, LockKind::X));
        assert_eq!(lm.total_grants(), 1);
        lm.release_all(t(2), &NoInterference, &mut |_| ());
        assert_eq!(lm.total_grants(), 0);
    }

    #[test]
    fn deadlock_across_shards_victimizes_requester() {
        let lm = ShardedLockManager::new(8);
        // Pick two resources on different shards.
        let mut rs = (0..64u32).map(ResourceId::Named);
        let r1 = rs.next().unwrap();
        let r2 = rs
            .find(|r| lm.shard_of(*r) != lm.shard_of(r1))
            .expect("two shards");
        lm.request(req(1, r1, LockKind::X), &NoInterference);
        lm.request(req(2, r2, LockKind::X), &NoInterference);
        assert!(matches!(
            lm.request(req(1, r2, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        // Txn 2 requesting r1 closes a cycle spanning both shards.
        match lm.request(req(2, r1, LockKind::X), &NoInterference) {
            RequestOutcome::Deadlock { victims, ticket } => {
                assert_eq!(victims, vec![t(2)]);
                assert!(ticket.is_none());
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        // The victim's request was withdrawn; txn 1 still waits on r2.
        assert!(!lm.is_waiting(t(2)));
        assert!(lm.is_waiting(t(1)));
    }
}
