//! Wait-for graph cycle detection.

use acc_common::TxnId;
use std::collections::{HashMap, HashSet};

/// A wait-for graph: `waits[t]` is the set of transactions `t` is waiting on.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitForGraph {
    /// Build from an edge iterator.
    pub fn from_edges(it: impl IntoIterator<Item = (TxnId, TxnId)>) -> Self {
        let mut g = WaitForGraph::default();
        for (a, b) in it {
            if a != b {
                g.edges.entry(a).or_default().insert(b);
            }
        }
        g
    }

    /// Find a cycle containing `start`, if one exists. Returns the cycle's
    /// members (starting at `start`, following wait-for edges).
    pub fn cycle_through(&self, start: TxnId) -> Option<Vec<TxnId>> {
        // Iterative DFS remembering the path; the graph is small (bounded by
        // the number of currently waiting transactions).
        let mut path = vec![start];
        let mut iters = vec![self.successors(start)];
        let mut on_path: HashSet<TxnId> = [start].into();
        let mut visited: HashSet<TxnId> = [start].into();

        while let Some(iter) = iters.last_mut() {
            match iter.next() {
                Some(next) if next == start => {
                    return Some(path);
                }
                Some(next) if !on_path.contains(&next) && !visited.contains(&next) => {
                    visited.insert(next);
                    on_path.insert(next);
                    path.push(next);
                    iters.push(self.successors(next));
                }
                Some(_) => {}
                None => {
                    iters.pop();
                    if let Some(done) = path.pop() {
                        on_path.remove(&done);
                    }
                }
            }
        }
        None
    }

    fn successors(&self, t: TxnId) -> std::vec::IntoIter<TxnId> {
        let mut v: Vec<TxnId> = self
            .edges
            .get(&t)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable(); // determinism
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn no_cycle() {
        let g = WaitForGraph::from_edges([(t(1), t(2)), (t(2), t(3))]);
        assert_eq!(g.cycle_through(t(1)), None);
        assert_eq!(g.cycle_through(t(3)), None);
    }

    #[test]
    fn two_cycle() {
        let g = WaitForGraph::from_edges([(t(1), t(2)), (t(2), t(1))]);
        let c = g.cycle_through(t(1)).unwrap();
        assert_eq!(c, vec![t(1), t(2)]);
    }

    #[test]
    fn three_cycle_from_any_member() {
        let g = WaitForGraph::from_edges([(t(1), t(2)), (t(2), t(3)), (t(3), t(1))]);
        for start in [1, 2, 3] {
            let c = g.cycle_through(t(start)).unwrap();
            assert_eq!(c.len(), 3);
            assert_eq!(c[0], t(start));
        }
    }

    #[test]
    fn cycle_not_through_start_is_ignored() {
        // 1 -> 2, and 2 <-> 3 form a cycle that does not include 1.
        let g = WaitForGraph::from_edges([(t(1), t(2)), (t(2), t(3)), (t(3), t(2))]);
        assert_eq!(g.cycle_through(t(1)), None);
        assert!(g.cycle_through(t(2)).is_some());
    }

    #[test]
    fn self_edges_dropped() {
        let g = WaitForGraph::from_edges([(t(1), t(1))]);
        assert_eq!(g.cycle_through(t(1)), None);
    }

    #[test]
    fn branching_paths() {
        // 1 -> {2, 3}; only the 3-path loops back.
        let g = WaitForGraph::from_edges([(t(1), t(2)), (t(1), t(3)), (t(3), t(4)), (t(4), t(1))]);
        let c = g.cycle_through(t(1)).unwrap();
        assert_eq!(c, vec![t(1), t(3), t(4)]);
    }
}
