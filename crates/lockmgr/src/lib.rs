//! The lock manager: conventional two-phase locks plus the paper's
//! *assertional* lock mode, in one integrated ("one-level") table.
//!
//! # Design
//!
//! The manager is a pure state machine — no threads, no blocking, no clocks.
//! [`LockManager::request`] either grants, enqueues (FIFO), or reports a
//! deadlock; [`LockManager::release_where`] hands back the wait tickets that
//! became grantable. Three different frontends drive it:
//!
//! * the threaded engine parks the calling session on a condvar per ticket,
//! * the deterministic stepper reschedules the step,
//! * the discrete-event simulator turns grant notices into events.
//!
//! # Lock kinds
//!
//! [`LockKind::Conventional`] carries a classic `IS/IX/S/SIX/X` mode and
//! follows the textbook compatibility matrix. [`LockKind::Assertional`]
//! carries an [`acc_common::AssertionTemplateId`]; compatibility against writers is *not*
//! fixed but decided by an [`InterferenceOracle`] — the run-time image of the
//! paper's design-time interference tables. The oracle makes exactly three
//! kinds of decisions:
//!
//! * does step type `s` *invalidate* (write-interfere with) assertion
//!   template `t`? — consulted when a writer meets an assertional lock,
//! * does step type `s` *read-interfere* with `t`? — used only by pseudo
//!   assertions such as the `DIRTY` template that isolates legacy
//!   transactions from uncommitted data,
//! * compensation protection: a grant acquired by a write of a compensatable
//!   transaction carries the compensating step type; an assertional request
//!   whose template that compensating step would invalidate is refused, so a
//!   compensating step never waits on an assertional lock (paper §3.4).
//!
//! # Deadlock
//!
//! A wait-for graph is derived from the queues on demand. When a new waiter
//! closes a cycle, the *requester's current step* is the victim — unless the
//! requester is executing a compensating step, in which case the cycle's
//! other members are the victims and the compensating request stays queued
//! (paper §3.4: a compensating step is never aborted).

pub mod manager;
pub mod mode;
pub mod oracle;
pub mod registry;
pub mod request;
pub mod sharded;
mod waitfor;

pub use manager::{Detection, GrantNotice, LockManager, RequestOutcome, Ticket};
pub use mode::LockMode;
pub use oracle::{InterferenceOracle, NoInterference, TotalInterference};
pub use registry::{
    EpochPin, InstallOutcome, InterferenceRegistry, PinAttempt, SharedOracle, SwitchStats,
};
pub use request::{LockKind, Request, RequestCtx};
pub use sharded::{CycleResolution, ShardedLockManager};
