//! Lock requests and the context that travels with them.

use crate::mode::LockMode;
use acc_common::{AssertionTemplateId, ResourceId, StepTypeId, TxnId};

/// What kind of lock is being requested or held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// A conventional two-phase lock.
    Conventional(LockMode),
    /// An assertional lock pinning the named assertion template on the item.
    Assertional(AssertionTemplateId),
}

impl LockKind {
    /// Shorthand for `Conventional(S)`.
    pub const S: LockKind = LockKind::Conventional(LockMode::S);
    /// Shorthand for `Conventional(X)`.
    pub const X: LockKind = LockKind::Conventional(LockMode::X);

    /// The conventional mode inside, if any.
    pub fn mode(&self) -> Option<LockMode> {
        match self {
            LockKind::Conventional(m) => Some(*m),
            LockKind::Assertional(_) => None,
        }
    }

    /// The assertion template inside, if any.
    pub fn template(&self) -> Option<AssertionTemplateId> {
        match self {
            LockKind::Assertional(t) => Some(*t),
            LockKind::Conventional(_) => None,
        }
    }

    /// True for conventional locks (released at step end under the ACC).
    pub fn is_conventional(&self) -> bool {
        matches!(self, LockKind::Conventional(_))
    }
}

/// Context carried by every request and remembered on every grant.
///
/// The oracle's decisions are functions of this context: the step type that
/// made the request, the compensating step type the owning transaction would
/// run if rolled back (compensation protection, §3.4), and whether the
/// requester is currently *executing* a compensating step (deadlock victim
/// inversion, §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestCtx {
    /// Step type issuing the request.
    pub step_type: StepTypeId,
    /// Compensating step type of the owning transaction, if it is a
    /// decomposed transaction with registered compensation. Carried on
    /// write-acquired grants so future assertional requests can be screened.
    pub comp_step: Option<StepTypeId>,
    /// True while the owner is executing a compensating step.
    pub compensating: bool,
}

impl RequestCtx {
    /// Context for a plain (non-compensatable) step.
    pub fn plain(step_type: StepTypeId) -> Self {
        RequestCtx {
            step_type,
            comp_step: None,
            compensating: false,
        }
    }
}

/// A lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Requesting transaction.
    pub txn: TxnId,
    /// Resource to lock.
    pub resource: ResourceId,
    /// Kind of lock.
    pub kind: LockKind,
    /// Request context.
    pub ctx: RequestCtx,
}

impl Request {
    /// Convenience constructor.
    pub fn new(txn: TxnId, resource: ResourceId, kind: LockKind, ctx: RequestCtx) -> Self {
        Request {
            txn,
            resource,
            kind,
            ctx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessors() {
        assert_eq!(LockKind::S.mode(), Some(LockMode::S));
        assert_eq!(LockKind::X.mode(), Some(LockMode::X));
        assert!(LockKind::S.is_conventional());
        let a = LockKind::Assertional(AssertionTemplateId(3));
        assert_eq!(a.template(), Some(AssertionTemplateId(3)));
        assert_eq!(a.mode(), None);
        assert!(!a.is_conventional());
        assert_eq!(LockKind::X.template(), None);
    }

    #[test]
    fn plain_ctx() {
        let c = RequestCtx::plain(StepTypeId(4));
        assert_eq!(c.step_type, StepTypeId(4));
        assert_eq!(c.comp_step, None);
        assert!(!c.compensating);
    }
}
