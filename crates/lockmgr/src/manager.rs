//! The lock manager state machine.

use crate::mode::{conv_compatible, LockMode};
use crate::oracle::InterferenceOracle;
use crate::request::{LockKind, Request, RequestCtx};
use crate::waitfor::WaitForGraph;
use acc_common::events::{Event, EventSink, KindRepr, TxnList};
use acc_common::{ResourceId, TxnId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Identifies a waiting request; returned on enqueue, echoed on grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(pub u64);

/// The result of [`LockManager::request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The lock is held; proceed.
    Granted,
    /// The request is queued; the caller parks until the ticket appears in a
    /// [`GrantNotice`].
    Waiting(Ticket),
    /// Enqueuing this request closed a wait-for cycle.
    Deadlock {
        /// Transactions whose current steps must be aborted to break the
        /// cycle. If the requester was executing a compensating step these
        /// are the *other* cycle members (paper §3.4); otherwise it is the
        /// requester itself.
        victims: Vec<TxnId>,
        /// `Some` if the request stayed queued (compensating requester) and
        /// will be granted once the victims release.
        ticket: Option<Ticket>,
    },
}

/// What [`LockManager::grant_or_enqueue`] did with a request: granted it or
/// queued it. Deadlock detection is the caller's next move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EnqueueOutcome {
    /// The lock is held; proceed.
    Granted,
    /// The request is queued under this ticket.
    Waiting(Ticket),
}

/// A formerly waiting request that has now been granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantNotice {
    /// The ticket returned when the request was enqueued.
    pub ticket: Ticket,
    /// The transaction whose request was granted.
    pub txn: TxnId,
    /// The resource it now holds.
    pub resource: ResourceId,
}

/// The result of [`LockManager::detect_from`] when a cycle was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Transactions whose current steps must be aborted to break the cycle.
    pub victims: Vec<TxnId>,
    /// True if the caller itself is the victim: its queued requests have been
    /// withdrawn and it must undo its step and retry. False means the caller
    /// is compensating; the victims are the parties delaying it and the
    /// caller keeps waiting.
    pub self_is_victim: bool,
    /// Waiters that became grantable because the victim's withdrawn requests
    /// were unclogging their queues. The caller MUST deliver these exactly
    /// like release notices, or those waiters stall.
    pub notices: Vec<GrantNotice>,
}

#[derive(Debug, Clone)]
struct Grant {
    txn: TxnId,
    kind: LockKind,
    ctx: RequestCtx,
    count: u32,
}

#[derive(Debug, Clone)]
struct Waiter {
    ticket: Ticket,
    req: Request,
}

#[derive(Debug, Default)]
struct LockHead {
    granted: Vec<Grant>,
    waiting: VecDeque<Waiter>,
}

/// The lock manager. Pure state machine: see the crate docs for how the
/// threaded engine, the deterministic stepper and the simulator drive it.
#[derive(Debug, Default)]
pub struct LockManager {
    heads: HashMap<ResourceId, LockHead>,
    held: HashMap<TxnId, HashSet<ResourceId>>,
    next_ticket: u64,
    /// Observability sink; disabled by default, so the hot path pays one
    /// relaxed atomic load per instrumented site.
    sink: Arc<EventSink>,
}

impl LockManager {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Route this manager's events into `sink` (shared with whoever reads
    /// counters/dumps from it).
    pub fn set_sink(&mut self, sink: Arc<EventSink>) {
        self.sink = sink;
    }

    /// The manager's event sink.
    pub fn sink(&self) -> &Arc<EventSink> {
        &self.sink
    }

    /// The observability image of a lock kind.
    pub fn kind_repr(kind: LockKind) -> KindRepr {
        match kind {
            LockKind::Conventional(LockMode::IS) => KindRepr::IS,
            LockKind::Conventional(LockMode::IX) => KindRepr::IX,
            LockKind::Conventional(LockMode::S) => KindRepr::S,
            LockKind::Conventional(LockMode::SIX) => KindRepr::SIX,
            LockKind::Conventional(LockMode::X) => KindRepr::X,
            LockKind::Assertional(t) => KindRepr::assertional(t),
        }
    }

    /// Start ticket numbering at `base`. The sharded front end gives each
    /// shard a disjoint namespace (shard index in the high bits) so a ticket
    /// alone identifies its shard and tickets never collide across shards.
    pub fn set_ticket_base(&mut self, base: u64) {
        debug_assert_eq!(self.next_ticket, 0, "set the base before any request");
        self.next_ticket = base;
    }

    /// Request a lock. See [`RequestOutcome`].
    pub fn request(&mut self, req: Request, oracle: &dyn InterferenceOracle) -> RequestOutcome {
        match self.grant_or_enqueue(req, oracle) {
            EnqueueOutcome::Granted => RequestOutcome::Granted,
            EnqueueOutcome::Waiting(ticket) => self.detect_enqueued(req, ticket, oracle),
        }
    }

    /// The grant-or-enqueue half of [`LockManager::request`]: grants
    /// immediately when compatible, otherwise queues the request — but runs
    /// *no* deadlock detection. The sharded front end uses this directly and
    /// then detects across all shards; [`LockManager::request`] composes it
    /// with local detection.
    pub(crate) fn grant_or_enqueue(
        &mut self,
        req: Request,
        oracle: &dyn InterferenceOracle,
    ) -> EnqueueOutcome {
        if self.sink.is_enabled() {
            self.sink.emit(Event::LockRequest {
                txn: req.txn,
                resource: req.resource,
                kind: Self::kind_repr(req.kind),
                step_type: req.ctx.step_type,
                compensating: req.ctx.compensating,
            });
        }
        let head = self.heads.entry(req.resource).or_default();

        // Re-entrant and covered requests.
        if let Some(g) = head
            .granted
            .iter_mut()
            .find(|g| g.txn == req.txn && Self::same_class(g.kind, req.kind))
        {
            match (g.kind, req.kind) {
                (LockKind::Conventional(held), LockKind::Conventional(want))
                    if held.covers(want) =>
                {
                    g.count += 1;
                    self.sink.emit(Event::LockGranted {
                        txn: req.txn,
                        resource: req.resource,
                        kind: Self::kind_repr(req.kind),
                        step_type: req.ctx.step_type,
                        compensating: req.ctx.compensating,
                    });
                    return EnqueueOutcome::Granted;
                }
                (LockKind::Assertional(a), LockKind::Assertional(b)) if a == b => {
                    g.count += 1;
                    self.sink.emit(Event::LockGranted {
                        txn: req.txn,
                        resource: req.resource,
                        kind: Self::kind_repr(req.kind),
                        step_type: req.ctx.step_type,
                        compensating: req.ctx.compensating,
                    });
                    return EnqueueOutcome::Granted;
                }
                _ => {} // conventional upgrade, handled below
            }
        }

        let upgrade = Self::upgrade_target(head, &req);
        let effective_kind = upgrade.map(LockKind::Conventional).unwrap_or(req.kind);

        let blocked_by_grant = head
            .granted
            .iter()
            .any(|g| g.txn != req.txn && Self::conflicts(effective_kind, &req.ctx, g, oracle));
        // Strict FIFO: a brand-new request waits behind any queued waiter —
        // UNLESS the requester already holds a grant on this resource
        // (conventional upgrade, or an assertional pin added next to an
        // existing conventional lock). Such requests must jump the queue:
        // the queued waiters are blocked by the requester's own grant and
        // could never be granted first, so queueing behind them would be a
        // guaranteed deadlock.
        let own_grant = head.granted.iter().any(|g| g.txn == req.txn);
        let priority = upgrade.is_some() || own_grant;
        let blocked_by_queue = !priority && !head.waiting.is_empty();

        if !blocked_by_grant && !blocked_by_queue {
            Self::install_grant(head, &req, effective_kind);
            self.held.entry(req.txn).or_default().insert(req.resource);
            if self.sink.is_enabled() {
                Self::emit_grant(&self.sink, req.txn, req.resource, effective_kind, &req.ctx);
            }
            return EnqueueOutcome::Granted;
        }

        // Queue-cause analysis for the event log (off the disabled-sink hot
        // path): was the wait forced by a real interference-table hit, or
        // purely by FIFO position behind an earlier waiter?
        if self.sink.is_enabled() {
            let mut blocked_by_assertion = false;
            for g in head.granted.iter() {
                if g.txn == req.txn || !Self::conflicts(effective_kind, &req.ctx, g, oracle) {
                    continue;
                }
                if let LockKind::Assertional(template) = g.kind {
                    blocked_by_assertion = true;
                    self.sink.emit(Event::InterferenceHit {
                        txn: req.txn,
                        step_type: req.ctx.step_type,
                        template,
                        resource: req.resource,
                    });
                }
            }
            self.sink.emit(Event::LockWait {
                txn: req.txn,
                resource: req.resource,
                kind: Self::kind_repr(effective_kind),
                compensating: req.ctx.compensating,
                blocked_by_assertion,
                conservative: !blocked_by_grant && blocked_by_queue,
            });
        }

        // Enqueue.
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let mut queued_req = req;
        queued_req.kind = effective_kind;
        let waiter = Waiter {
            ticket,
            req: queued_req,
        };
        if priority {
            head.waiting.push_front(waiter);
        } else {
            head.waiting.push_back(waiter);
        }
        EnqueueOutcome::Waiting(ticket)
    }

    /// The enqueue-time deadlock check of [`LockManager::request`], run after
    /// [`LockManager::grant_or_enqueue`] returned a ticket.
    fn detect_enqueued(
        &mut self,
        req: Request,
        ticket: Ticket,
        oracle: &dyn InterferenceOracle,
    ) -> RequestOutcome {
        let graph = self.wait_graph(oracle);
        match graph.cycle_through(req.txn) {
            None => RequestOutcome::Waiting(ticket),
            Some(cycle) => {
                if req.ctx.compensating {
                    // A compensating step is never the victim: abort the
                    // steps delaying it and keep its request queued. Other
                    // *compensating* cycle members are equally unabortable —
                    // exclude them (they resolve their own sub-cycle).
                    let victims: Vec<TxnId> = cycle
                        .iter()
                        .copied()
                        .filter(|&t| t != req.txn && !self.has_compensating_waiter(t))
                        .collect();
                    if self.sink.is_enabled() {
                        self.sink.emit(Event::Deadlock {
                            cycle: TxnList::from_slice(&cycle),
                            victims: TxnList::from_slice(if victims.is_empty() {
                                std::slice::from_ref(&req.txn)
                            } else {
                                &victims
                            }),
                            compensating_requester: true,
                        });
                        // The degenerate comp-vs-comp retry below is NOT a
                        // victimization (no step is aborted, the requester
                        // just re-runs its lock acquisition), so victim
                        // events are emitted only for real victims.
                        for &v in &victims {
                            self.sink.emit(Event::DeadlockVictim {
                                txn: v,
                                compensating: false,
                            });
                        }
                    }
                    if victims.is_empty() {
                        // Degenerate compensating-vs-compensating deadlock:
                        // somebody must retry; the requester's conventional
                        // locks are step-scoped, so retrying it is safe.
                        self.withdraw_ticket(req.resource, ticket);
                        return RequestOutcome::Deadlock {
                            victims: vec![req.txn],
                            ticket: None,
                        };
                    }
                    RequestOutcome::Deadlock {
                        victims,
                        ticket: Some(ticket),
                    }
                } else {
                    if std::env::var_os("LOCKMGR_DEBUG").is_some() {
                        eprintln!("cycle through {:?}: {cycle:?}", req.txn);
                        for member in &cycle {
                            eprintln!(
                                "  {member:?} blocked by {:?} held: {:?}",
                                self.blockers_of(*member, oracle),
                                self.held_resources(*member)
                            );
                        }
                    }
                    if self.sink.is_enabled() {
                        self.sink.emit(Event::Deadlock {
                            cycle: TxnList::from_slice(&cycle),
                            victims: TxnList::from_slice(std::slice::from_ref(&req.txn)),
                            compensating_requester: false,
                        });
                        self.sink.emit(Event::DeadlockVictim {
                            txn: req.txn,
                            compensating: false,
                        });
                    }
                    // The requester's step is the victim; withdraw the
                    // request (the caller will undo the step and retry).
                    self.withdraw_ticket(req.resource, ticket);
                    RequestOutcome::Deadlock {
                        victims: vec![req.txn],
                        ticket: None,
                    }
                }
            }
        }
    }

    /// Release every grant of `txn` for which `pred` returns true. Returns
    /// the waiters that became grantable.
    pub fn release_where(
        &mut self,
        txn: TxnId,
        oracle: &dyn InterferenceOracle,
        pred: impl Fn(LockKind, &RequestCtx) -> bool,
    ) -> Vec<GrantNotice> {
        let mut resources: Vec<ResourceId> = self
            .held
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        // Same ordering requirement as `cancel_waiting`: release (and hence
        // wake) in resource order, not hash order.
        resources.sort_unstable();
        let mut notices = Vec::new();
        for r in resources {
            let head = self.heads.get_mut(&r).expect("held resource has a head");
            let before = head.granted.len();
            if self.sink.is_enabled() {
                for g in head.granted.iter() {
                    if g.txn == txn && pred(g.kind, &g.ctx) {
                        self.sink.emit(Event::LockReleased {
                            txn,
                            resource: r,
                            kind: Self::kind_repr(g.kind),
                        });
                    }
                }
            }
            head.granted
                .retain(|g| !(g.txn == txn && pred(g.kind, &g.ctx)));
            let changed = head.granted.len() != before;
            if !head.granted.iter().any(|g| g.txn == txn) {
                if let Some(set) = self.held.get_mut(&txn) {
                    set.remove(&r);
                }
            }
            if changed {
                self.process_queue(r, oracle, &mut notices);
            }
        }
        if self.held.get(&txn).is_some_and(|s| s.is_empty()) {
            self.held.remove(&txn);
        }
        notices
    }

    /// Release everything `txn` holds and cancel anything it is waiting for.
    pub fn release_all(&mut self, txn: TxnId, oracle: &dyn InterferenceOracle) -> Vec<GrantNotice> {
        let mut notices = self.cancel_waiting(txn, oracle);
        notices.extend(self.release_where(txn, oracle, |_, _| true));
        notices
    }

    /// Remove `txn`'s queued (not yet granted) requests. Returns waiters that
    /// became grantable because a queue blocker disappeared.
    pub fn cancel_waiting(
        &mut self,
        txn: TxnId,
        oracle: &dyn InterferenceOracle,
    ) -> Vec<GrantNotice> {
        let mut resources: Vec<ResourceId> = self
            .heads
            .iter()
            .filter(|(_, h)| h.waiting.iter().any(|w| w.req.txn == txn))
            .map(|(r, _)| *r)
            .collect();
        // Hash-map iteration order varies between processes; grant notices
        // must not (the simulator replays them deterministically).
        resources.sort_unstable();
        let mut notices = Vec::new();
        for r in resources {
            let head = self.heads.get_mut(&r).expect("resource has a head");
            head.waiting.retain(|w| w.req.txn != txn);
            self.process_queue(r, oracle, &mut notices);
        }
        notices
    }

    /// True if `txn` holds a grant of `kind` on `resource`.
    pub fn holds(&self, txn: TxnId, resource: ResourceId, kind: LockKind) -> bool {
        self.heads.get(&resource).is_some_and(|h| {
            h.granted.iter().any(|g| {
                g.txn == txn
                    && match (g.kind, kind) {
                        (LockKind::Conventional(a), LockKind::Conventional(b)) => a.covers(b),
                        (a, b) => a == b,
                    }
            })
        })
    }

    /// Resources `txn` currently holds grants on.
    pub fn held_resources(&self, txn: TxnId) -> Vec<ResourceId> {
        let mut v: Vec<ResourceId> = self
            .held
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// True if `txn` has a queued request anywhere.
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.heads
            .values()
            .any(|h| h.waiting.iter().any(|w| w.req.txn == txn))
    }

    /// Number of queued requests on `resource`.
    pub fn queue_len(&self, resource: ResourceId) -> usize {
        self.heads.get(&resource).map_or(0, |h| h.waiting.len())
    }

    /// Total grants across all resources (diagnostics).
    pub fn total_grants(&self) -> usize {
        self.heads.values().map(|h| h.granted.len()).sum()
    }

    /// True if no transaction holds or waits for anything here. Exact:
    /// lock heads and per-transaction hold sets are removed as they drain,
    /// so two empty maps mean an empty manager.
    pub(crate) fn is_empty(&self) -> bool {
        self.heads.is_empty() && self.held.is_empty()
    }

    /// Transactions the given waiting transaction is currently blocked by
    /// (conflicting holders and earlier queued waiters).
    pub fn blockers_of(&self, txn: TxnId, oracle: &dyn InterferenceOracle) -> Vec<TxnId> {
        let mut out = HashSet::new();
        for head in self.heads.values() {
            for (i, w) in head.waiting.iter().enumerate() {
                if w.req.txn != txn {
                    continue;
                }
                for g in &head.granted {
                    if g.txn != txn && Self::conflicts(w.req.kind, &w.req.ctx, g, oracle) {
                        out.insert(g.txn);
                    }
                }
                for e in head.waiting.iter().take(i) {
                    if e.req.txn != txn {
                        out.insert(e.req.txn);
                    }
                }
            }
        }
        let mut v: Vec<TxnId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Re-run deadlock detection from a currently waiting transaction.
    ///
    /// Enqueue-time detection sees the graph at the moment a waiter joins; a
    /// cycle assembled by a later grant/queue mutation on another resource
    /// can slip past it. Blocked frontends call this periodically from their
    /// wait loops (timeout-based re-detection, as classic systems did) and
    /// resolve exactly like [`LockManager::request`] would have:
    ///
    /// * `self_is_victim` — the caller's step is the victim; its queued
    ///   requests have been withdrawn, undo and retry;
    /// * otherwise — the caller is compensating: the listed other parties
    ///   must be doomed; the caller keeps waiting;
    /// * `None` — no cycle through `txn`.
    ///
    /// Withdrawing the victim's queued requests can make waiters queued
    /// behind them grantable; those grants come back in
    /// [`Detection::notices`] and the caller must deliver them exactly like
    /// release notices — dropping them strands the newly granted waiters.
    pub fn detect_from(
        &mut self,
        txn: TxnId,
        oracle: &dyn InterferenceOracle,
    ) -> Option<Detection> {
        if !self.is_waiting(txn) {
            return None;
        }
        let cycle = self.wait_graph(oracle).cycle_through(txn)?;
        let compensating = self.has_compensating_waiter(txn);
        if compensating {
            let victims: Vec<TxnId> = cycle
                .iter()
                .copied()
                .filter(|&t| t != txn && !self.has_compensating_waiter(t))
                .collect();
            if self.sink.is_enabled() {
                self.sink.emit(Event::Deadlock {
                    cycle: TxnList::from_slice(&cycle),
                    victims: TxnList::from_slice(if victims.is_empty() {
                        std::slice::from_ref(&txn)
                    } else {
                        &victims
                    }),
                    compensating_requester: true,
                });
                for &v in &victims {
                    self.sink.emit(Event::DeadlockVictim {
                        txn: v,
                        compensating: false,
                    });
                }
            }
            if victims.is_empty() {
                // Compensating-vs-compensating: the caller retries.
                let notices = self.cancel_waiting(txn, oracle);
                return Some(Detection {
                    victims: vec![txn],
                    self_is_victim: true,
                    notices,
                });
            }
            Some(Detection {
                victims,
                self_is_victim: false,
                notices: Vec::new(),
            })
        } else {
            if self.sink.is_enabled() {
                self.sink.emit(Event::Deadlock {
                    cycle: TxnList::from_slice(&cycle),
                    victims: TxnList::from_slice(std::slice::from_ref(&txn)),
                    compensating_requester: false,
                });
                self.sink.emit(Event::DeadlockVictim {
                    txn,
                    compensating: false,
                });
            }
            let notices = self.cancel_waiting(txn, oracle);
            Some(Detection {
                victims: vec![txn],
                self_is_victim: true,
                notices,
            })
        }
    }

    /// Every transaction currently holding at least one grant (diagnostics).
    pub fn all_holders(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self.held.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Every granted (txn, resource, kind) triple straight from the lock
    /// heads (diagnostics; cross-check against [`LockManager::all_holders`]).
    pub fn all_grants(&self) -> Vec<(TxnId, ResourceId, LockKind)> {
        let mut v: Vec<(TxnId, ResourceId, LockKind)> = self
            .heads
            .iter()
            .flat_map(|(r, h)| h.granted.iter().map(|g| (g.txn, *r, g.kind)))
            .collect();
        v.sort_unstable_by_key(|(t, _, _)| *t);
        v
    }

    /// Every queued (txn, resource, kind) triple (diagnostics).
    pub fn all_waiters(&self) -> Vec<(TxnId, ResourceId, LockKind)> {
        let mut v: Vec<(TxnId, ResourceId, LockKind)> = self
            .heads
            .iter()
            .flat_map(|(r, h)| h.waiting.iter().map(|w| (w.req.txn, *r, w.req.kind)))
            .collect();
        v.sort_unstable_by_key(|(t, _, _)| *t);
        v
    }

    /// Withdraw one queued request by ticket, *without* processing the
    /// queue — exactly what enqueue-time victim resolution does: the ticket
    /// was pushed moments ago, so nothing behind it can have been waiting on
    /// it yet. Returns true if the ticket was still queued.
    pub(crate) fn withdraw_ticket(&mut self, resource: ResourceId, ticket: Ticket) -> bool {
        let Some(head) = self.heads.get_mut(&resource) else {
            return false;
        };
        let before = head.waiting.len();
        head.waiting.retain(|w| w.ticket != ticket);
        head.waiting.len() != before
    }

    /// True if the ticket is still queued on `resource` (it has neither been
    /// granted nor withdrawn).
    pub(crate) fn is_ticket_waiting(&self, resource: ResourceId, ticket: Ticket) -> bool {
        self.heads
            .get(&resource)
            .is_some_and(|h| h.waiting.iter().any(|w| w.ticket == ticket))
    }

    /// True if `txn` has a queued request issued by a compensating step.
    pub fn has_compensating_waiter(&self, txn: TxnId) -> bool {
        self.heads.values().any(|h| {
            h.waiting
                .iter()
                .any(|w| w.req.txn == txn && w.req.ctx.compensating)
        })
    }

    // ----- internals -------------------------------------------------------

    /// Emit the grant (and, for assertional kinds, pin) events for a newly
    /// installed grant. Callers gate on `sink.is_enabled()` themselves.
    fn emit_grant(
        sink: &EventSink,
        txn: TxnId,
        resource: ResourceId,
        kind: LockKind,
        ctx: &RequestCtx,
    ) {
        sink.emit(Event::LockGranted {
            txn,
            resource,
            kind: Self::kind_repr(kind),
            step_type: ctx.step_type,
            compensating: ctx.compensating,
        });
        if let LockKind::Assertional(template) = kind {
            sink.emit(Event::AssertionPinned {
                txn,
                resource,
                template,
            });
        }
    }

    /// True if the two kinds belong to the same "slot" for re-entrancy
    /// purposes: one conventional grant per txn per resource, one assertional
    /// grant per template per txn per resource.
    fn same_class(a: LockKind, b: LockKind) -> bool {
        match (a, b) {
            (LockKind::Conventional(_), LockKind::Conventional(_)) => true,
            (LockKind::Assertional(x), LockKind::Assertional(y)) => x == y,
            _ => false,
        }
    }

    /// If the request is a conventional upgrade (txn already holds a weaker
    /// conventional mode), the mode it must be upgraded to.
    fn upgrade_target(head: &LockHead, req: &Request) -> Option<LockMode> {
        let want = req.kind.mode()?;
        let held = head
            .granted
            .iter()
            .find(|g| g.txn == req.txn && g.kind.is_conventional())?
            .kind
            .mode()
            .expect("conventional grant has a mode");
        Some(held.supremum(want))
    }

    /// Install a grant (fresh or upgrade-merge) for `req`.
    fn install_grant(head: &mut LockHead, req: &Request, kind: LockKind) {
        if let Some(g) = head
            .granted
            .iter_mut()
            .find(|g| g.txn == req.txn && Self::same_class(g.kind, kind))
        {
            g.kind = kind;
            g.ctx = req.ctx;
            g.count += 1;
        } else {
            head.granted.push(Grant {
                txn: req.txn,
                kind,
                ctx: req.ctx,
                count: 1,
            });
        }
    }

    /// Does a request of `kind`/`ctx` conflict with an existing grant of
    /// another transaction?
    fn conflicts(
        kind: LockKind,
        ctx: &RequestCtx,
        grant: &Grant,
        oracle: &dyn InterferenceOracle,
    ) -> bool {
        match (kind, grant.kind) {
            (LockKind::Conventional(a), LockKind::Conventional(b)) => !conv_compatible(a, b),
            // Intention modes declare "I will lock finer items below this
            // resource" — the finer request is where the interference check
            // happens, so they pass assertional grants freely (otherwise a
            // table-granularity guard pin would block every key access to
            // the table instead of only accesses to the pinned pages).
            (LockKind::Conventional(LockMode::IS | LockMode::IX), LockKind::Assertional(_)) => {
                false
            }
            // A writer meets a pinned assertion: consult the interference
            // table for the writer's step type; a reader conflicts only with
            // read-interfering pseudo-assertions (legacy isolation). At
            // table granularity this is what makes a *scan* (S, no finer
            // locks) honour the guard pins of in-flight writers.
            (LockKind::Conventional(m), LockKind::Assertional(t)) => {
                if m.is_write() {
                    oracle.write_interferes(ctx.step_type, t)
                } else {
                    oracle.read_interferes(ctx.step_type, t)
                }
            }
            // Symmetrically, pinning next to an intention grant is free: the
            // holder's real writes carry their own finer-granularity locks.
            (LockKind::Assertional(_), LockKind::Conventional(LockMode::IS | LockMode::IX)) => {
                false
            }
            // Pinning an assertion on an item some other step is writing:
            // refuse if that in-flight write invalidates the assertion.
            (LockKind::Assertional(t), LockKind::Conventional(m)) => {
                m.is_write() && oracle.write_interferes(grant.ctx.step_type, t)
            }
            // Assertional vs assertional: predicates coexist freely, except
            // for compensation protection — if either side's registered
            // compensating step would invalidate the other side's assertion,
            // block now so the compensating step never has to wait (§3.4).
            (LockKind::Assertional(t), LockKind::Assertional(u)) => {
                grant
                    .ctx
                    .comp_step
                    .is_some_and(|cs| oracle.write_interferes(cs, t))
                    || ctx
                        .comp_step
                        .is_some_and(|cs| oracle.write_interferes(cs, u))
            }
        }
    }

    /// Grant queued requests in FIFO order until the first one that still
    /// conflicts.
    fn process_queue(
        &mut self,
        resource: ResourceId,
        oracle: &dyn InterferenceOracle,
        notices: &mut Vec<GrantNotice>,
    ) {
        let head = match self.heads.get_mut(&resource) {
            Some(h) => h,
            None => return,
        };
        while let Some(w) = head.waiting.front() {
            let blocked = head
                .granted
                .iter()
                .any(|g| g.txn != w.req.txn && Self::conflicts(w.req.kind, &w.req.ctx, g, oracle));
            if blocked {
                break;
            }
            let w = head.waiting.pop_front().expect("front exists");
            Self::install_grant(head, &w.req, w.req.kind);
            self.held
                .entry(w.req.txn)
                .or_default()
                .insert(w.req.resource);
            if self.sink.is_enabled() {
                Self::emit_grant(
                    &self.sink,
                    w.req.txn,
                    w.req.resource,
                    w.req.kind,
                    &w.req.ctx,
                );
            }
            notices.push(GrantNotice {
                ticket: w.ticket,
                txn: w.req.txn,
                resource: w.req.resource,
            });
        }
        if head.granted.is_empty() && head.waiting.is_empty() {
            self.heads.remove(&resource);
        }
    }

    /// The wait-for edges of this manager's queues: a waiter waits on
    /// conflicting holders and on every earlier waiter in the same queue
    /// (strict FIFO). The sharded front end concatenates per-shard edge
    /// lists into one cross-shard graph.
    pub(crate) fn wait_edges(&self, oracle: &dyn InterferenceOracle) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for head in self.heads.values() {
            for (i, w) in head.waiting.iter().enumerate() {
                for g in &head.granted {
                    if g.txn != w.req.txn && Self::conflicts(w.req.kind, &w.req.ctx, g, oracle) {
                        edges.push((w.req.txn, g.txn));
                    }
                }
                for e in head.waiting.iter().take(i) {
                    if e.req.txn != w.req.txn {
                        edges.push((w.req.txn, e.req.txn));
                    }
                }
            }
        }
        edges
    }

    /// Build the wait-for graph from the current queues.
    fn wait_graph(&self, oracle: &dyn InterferenceOracle) -> WaitForGraph {
        WaitForGraph::from_edges(self.wait_edges(oracle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FnOracle, NoInterference, TotalInterference};
    use acc_common::{AssertionTemplateId, StepTypeId};

    const R: ResourceId = ResourceId::Named(1);
    const R2: ResourceId = ResourceId::Named(2);

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    fn req(txn: u64, r: ResourceId, kind: LockKind) -> Request {
        Request::new(t(txn), r, kind, RequestCtx::plain(StepTypeId(0)))
    }

    fn a(template: u32) -> LockKind {
        LockKind::Assertional(AssertionTemplateId(template))
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(req(1, R, LockKind::S), &NoInterference),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(req(2, R, LockKind::S), &NoInterference),
            RequestOutcome::Granted
        );
        assert!(lm.holds(t(1), R, LockKind::S));
        assert!(lm.holds(t(2), R, LockKind::S));
    }

    #[test]
    fn exclusive_blocks_and_fifo_grants() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        let w2 = lm.request(req(2, R, LockKind::X), &NoInterference);
        let w3 = lm.request(req(3, R, LockKind::X), &NoInterference);
        let (t2, t3) = match (w2, w3) {
            (RequestOutcome::Waiting(a), RequestOutcome::Waiting(b)) => (a, b),
            other => panic!("expected waits, got {other:?}"),
        };
        let notices = lm.release_where(t(1), &NoInterference, |_, _| true);
        assert_eq!(notices.len(), 1);
        assert_eq!(notices[0].ticket, t2);
        assert!(lm.holds(t(2), R, LockKind::X));
        assert!(!lm.holds(t(3), R, LockKind::X));
        let notices = lm.release_where(t(2), &NoInterference, |_, _| true);
        assert_eq!(notices[0].ticket, t3);
    }

    #[test]
    fn release_grants_multiple_compatible_waiters() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.request(req(2, R, LockKind::S), &NoInterference);
        lm.request(req(3, R, LockKind::S), &NoInterference);
        let notices = lm.release_where(t(1), &NoInterference, |_, _| true);
        assert_eq!(notices.len(), 2, "both shared waiters wake");
        assert!(lm.holds(t(2), R, LockKind::S));
        assert!(lm.holds(t(3), R, LockKind::S));
    }

    #[test]
    fn reentrant_requests_count() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(req(1, R, LockKind::S), &NoInterference),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(req(1, R, LockKind::S), &NoInterference),
            RequestOutcome::Granted
        );
        // X covers S: re-request of S after upgrade is also a no-op grant.
        assert_eq!(
            lm.request(req(1, R, LockKind::X), &NoInterference),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(req(1, R, LockKind::S), &NoInterference),
            RequestOutcome::Granted
        );
        assert!(lm.holds(t(1), R, LockKind::X));
    }

    #[test]
    fn upgrade_waits_for_other_readers_then_merges() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::S), &NoInterference);
        lm.request(req(2, R, LockKind::S), &NoInterference);
        let out = lm.request(req(1, R, LockKind::X), &NoInterference);
        assert!(matches!(out, RequestOutcome::Waiting(_)));
        let notices = lm.release_where(t(2), &NoInterference, |_, _| true);
        assert_eq!(notices.len(), 1);
        assert!(lm.holds(t(1), R, LockKind::X));
    }

    #[test]
    fn upgrade_jumps_queue() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::S), &NoInterference);
        lm.request(req(2, R, LockKind::S), &NoInterference);
        // Txn 3 queues for X behind the two readers.
        assert!(matches!(
            lm.request(req(3, R, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        // Txn 1 upgrades: goes to the queue front.
        assert!(matches!(
            lm.request(req(1, R, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        let notices = lm.release_where(t(2), &NoInterference, |_, _| true);
        assert_eq!(notices.len(), 1);
        assert!(
            lm.holds(t(1), R, LockKind::X),
            "upgrader granted before txn 3"
        );
        assert!(!lm.holds(t(3), R, LockKind::X));
    }

    #[test]
    fn new_request_queues_behind_waiters_even_if_compatible() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::S), &NoInterference);
        lm.request(req(2, R, LockKind::X), &NoInterference); // waits
                                                             // S would be compatible with the S holder, but FIFO fairness queues it.
        assert!(matches!(
            lm.request(req(3, R, LockKind::S), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        let notices = lm.release_where(t(1), &NoInterference, |_, _| true);
        // X granted first (FIFO), S still waiting behind it.
        assert_eq!(notices.len(), 1);
        assert!(lm.holds(t(2), R, LockKind::X));
    }

    #[test]
    fn assertional_coexists_with_readers_and_assertions() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(req(1, R, a(1)), &TotalInterference),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(req(2, R, a(2)), &NoInterference),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(req(3, R, LockKind::S), &NoInterference),
            RequestOutcome::Granted
        );
    }

    #[test]
    fn writer_blocked_by_interfering_assertion_only() {
        // Step 7 interferes with template 1; step 8 does not.
        let oracle = FnOracle {
            write: |s, t| s == StepTypeId(7) && t == AssertionTemplateId(1),
            read: |_, _| false,
        };
        let mut lm = LockManager::new();
        lm.request(req(1, R, a(1)), &oracle);

        let mut interfering = req(2, R, LockKind::X);
        interfering.ctx = RequestCtx::plain(StepTypeId(7));
        assert!(matches!(
            lm.request(interfering, &oracle),
            RequestOutcome::Waiting(_)
        ));

        let mut benign = req(3, R2, LockKind::X);
        benign.ctx = RequestCtx::plain(StepTypeId(8));
        assert_eq!(lm.request(benign, &oracle), RequestOutcome::Granted);

        // Same benign step type on the assertionally locked resource: the
        // interference table says no conflict, but FIFO queues it behind the
        // interfering writer.
        let mut benign_same = req(4, R, LockKind::X);
        benign_same.ctx = RequestCtx::plain(StepTypeId(8));
        assert!(matches!(
            lm.request(benign_same, &oracle),
            RequestOutcome::Waiting(_)
        ));

        // Releasing the assertion lets the first writer through; the second
        // stays queued behind its X.
        let notices = lm.release_where(t(1), &oracle, |_, _| true);
        assert_eq!(notices.len(), 1);
        assert!(lm.holds(t(2), R, LockKind::X));
        assert!(!lm.holds(t(4), R, LockKind::X));
    }

    #[test]
    fn reader_passes_assertion_unless_read_interfering() {
        // Template 0 acts like DIRTY: legacy step 9 read-interferes.
        let oracle = FnOracle {
            write: |_, _| false,
            read: |s, t| s == StepTypeId(9) && t == AssertionTemplateId(0),
        };
        let mut lm = LockManager::new();
        lm.request(req(1, R, a(0)), &oracle);

        let mut analyzed = req(2, R, LockKind::S);
        analyzed.ctx = RequestCtx::plain(StepTypeId(3));
        assert_eq!(lm.request(analyzed, &oracle), RequestOutcome::Granted);

        let mut legacy = req(3, R, LockKind::S);
        legacy.ctx = RequestCtx::plain(StepTypeId(9));
        assert!(matches!(
            lm.request(legacy, &oracle),
            RequestOutcome::Waiting(_)
        ));
    }

    #[test]
    fn assertion_refused_while_interfering_write_in_flight() {
        let oracle = FnOracle {
            write: |s, t| s == StepTypeId(7) && t == AssertionTemplateId(1),
            read: |_, _| false,
        };
        let mut lm = LockManager::new();
        let mut w = req(1, R, LockKind::X);
        w.ctx = RequestCtx::plain(StepTypeId(7));
        lm.request(w, &oracle);
        // Pinning template 1 on the item mid-write must wait.
        assert!(matches!(
            lm.request(req(2, R, a(1)), &oracle),
            RequestOutcome::Waiting(_)
        ));
        // Template 2 is not invalidated by step 7: granted... but FIFO places
        // it behind the queued template-1 request, so it waits too.
        assert!(matches!(
            lm.request(req(3, R, a(2)), &oracle),
            RequestOutcome::Waiting(_)
        ));
        // On a fresh resource template 2 coexists with the same writer.
        let mut w2 = req(1, R2, LockKind::X);
        w2.ctx = RequestCtx::plain(StepTypeId(7));
        lm.request(w2, &oracle);
        assert_eq!(
            lm.request(req(3, R2, a(2)), &oracle),
            RequestOutcome::Granted
        );
    }

    #[test]
    fn compensation_protection_blocks_vulnerable_assertions() {
        // Compensating step 50 invalidates template 4.
        let oracle = FnOracle {
            write: |s, t| s == StepTypeId(50) && t == AssertionTemplateId(4),
            read: |_, _| false,
        };
        let mut lm = LockManager::new();
        // Txn 1 wrote the item; its DIRTY-style grant carries comp_step 50.
        let mut dirty = req(1, R, a(0));
        dirty.ctx = RequestCtx {
            step_type: StepTypeId(10),
            comp_step: Some(StepTypeId(50)),
            compensating: false,
        };
        assert_eq!(lm.request(dirty, &oracle), RequestOutcome::Granted);

        // Txn 2 may not pin template 4 on the item: if txn 1 rolls back, its
        // compensating step would invalidate it and would have to wait.
        assert!(matches!(
            lm.request(req(2, R, a(4)), &oracle),
            RequestOutcome::Waiting(_)
        ));
        // Template 5 is safe.
        assert_eq!(
            lm.request(req(3, R2, a(5)), &oracle),
            RequestOutcome::Granted
        );

        // Symmetric direction: txn 4 holds template 4 on R2; txn 5's
        // compensatable DIRTY request must wait there.
        lm.request(req(4, R2, a(4)), &oracle);
        let mut dirty2 = req(5, R2, a(0));
        dirty2.ctx = RequestCtx {
            step_type: StepTypeId(10),
            comp_step: Some(StepTypeId(50)),
            compensating: false,
        };
        assert!(matches!(
            lm.request(dirty2, &oracle),
            RequestOutcome::Waiting(_)
        ));
    }

    #[test]
    fn classic_deadlock_victimizes_requester() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.request(req(2, R2, LockKind::X), &NoInterference);
        assert!(matches!(
            lm.request(req(1, R2, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        let out = lm.request(req(2, R, LockKind::X), &NoInterference);
        assert_eq!(
            out,
            RequestOutcome::Deadlock {
                victims: vec![t(2)],
                ticket: None
            }
        );
        // The victim's request was withdrawn; txn 2 releasing its locks
        // unblocks txn 1.
        let notices = lm.release_all(t(2), &NoInterference);
        assert_eq!(notices.len(), 1);
        assert!(lm.holds(t(1), R2, LockKind::X));
    }

    #[test]
    fn compensating_requester_victimizes_others_and_stays_queued() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.request(req(2, R2, LockKind::X), &NoInterference);
        assert!(matches!(
            lm.request(req(1, R2, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        let mut comp = req(2, R, LockKind::X);
        comp.ctx.compensating = true;
        let out = lm.request(comp, &NoInterference);
        let ticket = match out {
            RequestOutcome::Deadlock {
                victims,
                ticket: Some(tk),
            } => {
                assert_eq!(victims, vec![t(1)]);
                tk
            }
            other => panic!("expected compensating deadlock, got {other:?}"),
        };
        // Aborting the victim grants the compensating step's request.
        let notices = lm.release_all(t(1), &NoInterference);
        assert!(notices.iter().any(|n| n.ticket == ticket && n.txn == t(2)));
        assert!(lm.holds(t(2), R, LockKind::X));
    }

    #[test]
    fn compensating_never_victimizes_another_compensating_step() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.request(req(2, R2, LockKind::X), &NoInterference);
        // Txn 1's compensating step waits on R2.
        let mut c1 = req(1, R2, LockKind::X);
        c1.ctx.compensating = true;
        assert!(matches!(
            lm.request(c1, &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        // Txn 2's compensating step closes the cycle on R: neither side is
        // abortable, so the requester itself retries (withdrawn request).
        let mut c2 = req(2, R, LockKind::X);
        c2.ctx.compensating = true;
        let out = lm.request(c2, &NoInterference);
        assert_eq!(
            out,
            RequestOutcome::Deadlock {
                victims: vec![t(2)],
                ticket: None
            }
        );
        assert!(lm.has_compensating_waiter(t(1)));
        assert!(!lm.has_compensating_waiter(t(2)));
    }

    #[test]
    fn release_where_filters_by_kind() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.request(req(1, R, a(1)), &NoInterference);
        // Step end: release conventional locks only.
        lm.release_where(t(1), &NoInterference, |k, _| k.is_conventional());
        assert!(!lm.holds(t(1), R, LockKind::X));
        assert!(lm.holds(t(1), R, a(1)));
        assert_eq!(lm.held_resources(t(1)), vec![R]);
        // Commit: release the rest.
        lm.release_where(t(1), &NoInterference, |_, _| true);
        assert!(lm.held_resources(t(1)).is_empty());
        assert_eq!(lm.total_grants(), 0);
    }

    #[test]
    fn cancel_waiting_unblocks_queue() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::S), &NoInterference);
        lm.request(req(2, R, LockKind::X), &NoInterference); // waits
        lm.request(req(3, R, LockKind::S), &NoInterference); // waits behind X
        let notices = lm.cancel_waiting(t(2), &NoInterference);
        assert_eq!(notices.len(), 1);
        assert_eq!(notices[0].txn, t(3));
        assert!(lm.holds(t(3), R, LockKind::S));
        assert!(!lm.is_waiting(t(2)));
    }

    #[test]
    fn blockers_reflect_queue_order() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.request(req(2, R, LockKind::X), &NoInterference);
        lm.request(req(3, R, LockKind::S), &NoInterference);
        assert_eq!(lm.blockers_of(t(2), &NoInterference), vec![t(1)]);
        assert_eq!(lm.blockers_of(t(3), &NoInterference), vec![t(1), t(2)]);
        assert!(lm.blockers_of(t(1), &NoInterference).is_empty());
        assert_eq!(lm.queue_len(R), 2);
    }

    #[test]
    fn three_party_deadlock() {
        let mut lm = LockManager::new();
        let r3 = ResourceId::Named(3);
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.request(req(2, R2, LockKind::X), &NoInterference);
        lm.request(req(3, r3, LockKind::X), &NoInterference);
        assert!(matches!(
            lm.request(req(1, R2, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        assert!(matches!(
            lm.request(req(2, r3, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        let out = lm.request(req(3, R, LockKind::X), &NoInterference);
        assert_eq!(
            out,
            RequestOutcome::Deadlock {
                victims: vec![t(3)],
                ticket: None
            }
        );
    }

    #[test]
    fn deadlock_through_assertional_lock() {
        // Txn 1 pins template 1 on R (interstep). Txn 2's writer step waits
        // on it. Txn 1 then waits on txn 2's X elsewhere: cycle.
        let oracle = FnOracle {
            write: |s, t| s == StepTypeId(7) && t == AssertionTemplateId(1),
            read: |_, _| false,
        };
        let mut lm = LockManager::new();
        lm.request(req(1, R, a(1)), &oracle);
        let mut held = req(2, R2, LockKind::X);
        held.ctx = RequestCtx::plain(StepTypeId(8));
        lm.request(held, &oracle);
        let mut blocked_writer = req(2, R, LockKind::X);
        blocked_writer.ctx = RequestCtx::plain(StepTypeId(7));
        assert!(matches!(
            lm.request(blocked_writer, &oracle),
            RequestOutcome::Waiting(_)
        ));
        let out = lm.request(req(1, R2, LockKind::X), &oracle);
        assert_eq!(
            out,
            RequestOutcome::Deadlock {
                victims: vec![t(1)],
                ticket: None
            }
        );
    }

    #[test]
    fn pin_next_to_own_grant_jumps_queue() {
        // Txn 1 holds X and then adds an assertional pin while txn 2 is
        // queued for X. The pin must NOT queue behind txn 2 (txn 2 is blocked
        // by txn 1's own X — queueing would deadlock txn 1 against itself).
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        assert!(matches!(
            lm.request(req(2, R, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        assert_eq!(
            lm.request(req(1, R, a(0)), &NoInterference),
            RequestOutcome::Granted,
            "guard pin next to own X must bypass the FIFO queue"
        );
        // Releasing everything still hands the X to txn 2.
        let notices = lm.release_all(t(1), &NoInterference);
        assert_eq!(notices.len(), 1);
        assert!(lm.holds(t(2), R, LockKind::X));
    }

    #[test]
    fn pin_next_to_own_grant_still_respects_real_conflicts() {
        // The queue jump does not override grant conflicts: a pin that
        // conflicts with another holder's grant must still wait.
        let oracle = FnOracle {
            write: |s, t| s == StepTypeId(7) && t == AssertionTemplateId(1),
            read: |_, _| false,
        };
        let mut lm = LockManager::new();
        // Txn 1 holds S; txn 2 queues an interfering write (step 7).
        lm.request(req(1, R, LockKind::S), &oracle);
        let mut w = req(2, R, LockKind::X);
        w.ctx = RequestCtx::plain(StepTypeId(7));
        assert!(matches!(lm.request(w, &oracle), RequestOutcome::Waiting(_)));
        // Txn 1 pins template 1 next to its S: no grant conflicts (only the
        // *queued* step-7 X would interfere), so it is granted ahead of the
        // queue…
        assert_eq!(
            lm.request(req(1, R, a(1)), &oracle),
            RequestOutcome::Granted
        );
        // …and the queued interfering writer now waits on the pin as well.
        let notices = lm.release_where(t(1), &oracle, |k, _| k.is_conventional());
        assert!(notices.is_empty(), "writer still blocked by the pin");
        let notices = lm.release_all(t(1), &oracle);
        assert_eq!(notices.len(), 1);
        assert!(lm.holds(t(2), R, LockKind::X));
    }

    #[test]
    fn detect_from_victim_withdrawal_wakes_queued_waiters() {
        // Regression: detect_from used to withdraw the victim's queued
        // requests without draining the queues, stranding waiters that were
        // blocked only by the victim's FIFO position.
        //
        // tC holds S on R. tV (holding X on R2) queues X on R; tW queues S
        // on R behind it — compatible with tC's S, blocked purely by FIFO.
        // tC then issues a compensating X request on R2: cycle tC→tV→tC,
        // with tV doomed but still queued. Timeout re-detection from tV must
        // victimize tV AND hand back a grant notice for tW.
        let mut lm = LockManager::new();
        let (tc, tv, tw) = (t(1), t(2), t(3));
        lm.request(req(1, R, LockKind::S), &NoInterference);
        lm.request(req(2, R2, LockKind::X), &NoInterference);
        assert!(matches!(
            lm.request(req(2, R, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        let tw_ticket = match lm.request(req(3, R, LockKind::S), &NoInterference) {
            RequestOutcome::Waiting(tk) => tk,
            other => panic!("expected wait, got {other:?}"),
        };
        let mut comp = req(1, R2, LockKind::X);
        comp.ctx.compensating = true;
        assert!(matches!(
            lm.request(comp, &NoInterference),
            RequestOutcome::Deadlock {
                ticket: Some(_),
                ..
            }
        ));
        // The cycle persists (tV stays queued); re-detection from tV fires.
        let det = lm.detect_from(tv, &NoInterference).expect("cycle persists");
        assert!(det.self_is_victim);
        assert_eq!(det.victims, vec![tv]);
        assert!(
            det.notices
                .iter()
                .any(|n| n.ticket == tw_ticket && n.txn == tw),
            "waiter behind the withdrawn victim must be granted: {:?}",
            det.notices
        );
        assert!(lm.holds(tw, R, LockKind::S));
        assert!(lm.holds(tc, R, LockKind::S));
        assert!(!lm.is_waiting(tv));
    }

    #[test]
    fn detect_from_compensating_caller_keeps_waiting() {
        // Same shape, but re-detection is run from the *compensating* waiter:
        // the other party is the victim and the caller's request stays put.
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.request(req(2, R2, LockKind::X), &NoInterference);
        assert!(matches!(
            lm.request(req(2, R, LockKind::X), &NoInterference),
            RequestOutcome::Waiting(_)
        ));
        let mut comp = req(1, R2, LockKind::X);
        comp.ctx.compensating = true;
        assert!(matches!(
            lm.request(comp, &NoInterference),
            RequestOutcome::Deadlock {
                ticket: Some(_),
                ..
            }
        ));
        let det = lm
            .detect_from(t(1), &NoInterference)
            .expect("cycle persists");
        assert!(!det.self_is_victim);
        assert_eq!(det.victims, vec![t(2)]);
        assert!(det.notices.is_empty());
        assert!(lm.is_waiting(t(1)), "compensating request stays queued");
    }

    #[test]
    fn sink_records_lock_lifecycle_and_wait_causes() {
        use acc_common::events::{Event, EventSink};

        let oracle = FnOracle {
            write: |s, tpl| s == StepTypeId(7) && tpl == AssertionTemplateId(1),
            read: |_, _| false,
        };
        let sink = EventSink::enabled(128);
        let mut lm = LockManager::new();
        lm.set_sink(Arc::clone(&sink));

        // Pin an assertion, then block an interfering writer on it.
        lm.request(req(1, R, a(1)), &oracle);
        let mut w = req(2, R, LockKind::X);
        w.ctx = RequestCtx::plain(StepTypeId(7));
        assert!(matches!(lm.request(w, &oracle), RequestOutcome::Waiting(_)));
        // A compatible reader queues behind it: conservative FIFO denial.
        let mut rdr = req(3, R, LockKind::S);
        rdr.ctx = RequestCtx::plain(StepTypeId(8));
        assert!(matches!(
            lm.request(rdr, &oracle),
            RequestOutcome::Waiting(_)
        ));
        lm.release_all(t(1), &oracle);

        let c = sink.counters();
        assert_eq!(c.assertion_pins, 1);
        assert_eq!(c.interference_hits, 1);
        assert_eq!(c.conservative_denials, 1, "reader blocked by FIFO only");
        assert_eq!(c.lock_waits, 2);
        assert!(c.lock_releases >= 1);
        // Queue drain after the release granted the writer (the reader stays
        // queued behind the new X): pin grant + writer grant.
        assert_eq!(c.lock_grants, 2);

        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::InterferenceHit {
                txn: TxnId(2),
                template: AssertionTemplateId(1),
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::LockWait {
                txn: TxnId(3),
                conservative: true,
                blocked_by_assertion: false,
                ..
            }
        )));

        // Deadlock events carry the cycle and victim.
        lm.request(req(4, R, LockKind::X), &oracle);
        lm.request(req(5, R2, LockKind::X), &oracle);
        assert!(matches!(
            lm.request(req(4, R2, LockKind::X), &oracle),
            RequestOutcome::Waiting(_)
        ));
        assert!(matches!(
            lm.request(req(5, R, LockKind::X), &oracle),
            RequestOutcome::Deadlock { .. }
        ));
        let c = sink.counters();
        assert_eq!(c.deadlocks, 1);
        assert_eq!(c.deadlock_victims, 1);
        assert!(sink.events().iter().any(|e| matches!(
            e,
            Event::DeadlockVictim {
                txn: TxnId(5),
                compensating: false,
            }
        )));
    }

    #[test]
    fn head_garbage_collected_when_empty() {
        let mut lm = LockManager::new();
        lm.request(req(1, R, LockKind::X), &NoInterference);
        lm.release_all(t(1), &NoInterference);
        assert_eq!(lm.total_grants(), 0);
        assert!(lm.heads.is_empty());
    }
}
