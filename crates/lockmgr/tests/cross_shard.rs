//! Cross-shard deadlock detection must agree with the unsharded manager:
//! same victim choice, same §3.4 compensating rule, same grant-notice
//! stream — the sharding is a pure performance decomposition.

use acc_common::{AssertionTemplateId, ResourceId, StepTypeId, TxnId};
use acc_lockmgr::{
    LockKind, LockManager, Request, RequestCtx, RequestOutcome, ShardedLockManager,
    TotalInterference,
};

fn t(n: u64) -> TxnId {
    TxnId(n)
}

fn plain(txn: u64, r: ResourceId, kind: LockKind) -> Request {
    Request::new(t(txn), r, kind, RequestCtx::plain(StepTypeId(0)))
}

fn compensating(txn: u64, r: ResourceId, kind: LockKind) -> Request {
    let ctx = RequestCtx {
        step_type: StepTypeId(0),
        comp_step: None,
        compensating: true,
    };
    Request::new(t(txn), r, kind, ctx)
}

/// Three `Named` resources that land on three distinct shards of `lm`.
fn three_shards(lm: &ShardedLockManager) -> [ResourceId; 3] {
    let mut picked: Vec<ResourceId> = Vec::new();
    let mut shards = std::collections::HashSet::new();
    for i in 0..256u32 {
        let r = ResourceId::Named(i);
        if shards.insert(lm.shard_of(r)) {
            picked.push(r);
            if picked.len() == 3 {
                return [picked[0], picked[1], picked[2]];
            }
        }
    }
    panic!("could not find three distinct shards");
}

const TEMPLATE: LockKind = LockKind::Assertional(AssertionTemplateId(1));

/// Build the same 3-party cycle in both managers: T1 pins an assertional
/// lock on r1, T2 and T3 hold X on r2/r3, then T2→r1 (assertional edge,
/// writer vs template), T3→r2, and finally T1→r3 closes the cycle. Returns
/// the outcome of the closing request.
fn drive_cycle(
    request: &mut dyn FnMut(Request) -> RequestOutcome,
    rs: [ResourceId; 3],
    closing: Request,
) -> RequestOutcome {
    let [r1, r2, r3] = rs;
    assert_eq!(request(plain(1, r1, TEMPLATE)), RequestOutcome::Granted);
    assert_eq!(request(plain(2, r2, LockKind::X)), RequestOutcome::Granted);
    assert_eq!(request(plain(3, r3, LockKind::X)), RequestOutcome::Granted);
    // T2's write meets T1's assertional lock; TotalInterference makes every
    // writer invalidate every template, so this edge is assertional.
    assert!(matches!(
        request(plain(2, r1, LockKind::X)),
        RequestOutcome::Waiting(_)
    ));
    assert!(matches!(
        request(plain(3, r2, LockKind::X)),
        RequestOutcome::Waiting(_)
    ));
    request(closing)
}

#[test]
fn three_shard_cycle_matches_unsharded_victims_and_notices() {
    let oracle = TotalInterference;
    let sharded = ShardedLockManager::new(8);
    let rs = three_shards(&sharded);
    let mut unsharded = LockManager::new();

    let closing = plain(1, rs[2], LockKind::X);
    let sharded_out = drive_cycle(&mut |r| sharded.request(r, &oracle), rs, closing);
    let unsharded_out = drive_cycle(&mut |r| unsharded.request(r, &oracle), rs, closing);

    // Same victim set (the non-compensating requester) in both managers.
    match (&sharded_out, &unsharded_out) {
        (
            RequestOutcome::Deadlock {
                victims: sv,
                ticket: st,
            },
            RequestOutcome::Deadlock {
                victims: uv,
                ticket: ut,
            },
        ) => {
            assert_eq!(sv, uv, "victim sets differ");
            assert_eq!(sv, &vec![t(1)]);
            assert!(st.is_none() && ut.is_none(), "victim stays queued");
        }
        other => panic!("expected deadlock from both managers, got {other:?}"),
    }
    assert!(!sharded.is_waiting(t(1)));
    assert!(!unsharded.is_waiting(t(1)));

    // Unwind: releasing T1 unblocks T2 (assertional edge), releasing T2
    // unblocks T3. The (txn, resource) notice streams must be identical;
    // tickets differ by design (shard bits).
    let mut sharded_notices = Vec::new();
    sharded.release_all(t(1), &oracle, &mut |n| {
        sharded_notices.push((n.txn, n.resource));
    });
    sharded.release_all(t(2), &oracle, &mut |n| {
        sharded_notices.push((n.txn, n.resource));
    });
    let mut unsharded_notices = Vec::new();
    for txn in [t(1), t(2)] {
        for n in unsharded.release_all(txn, &oracle) {
            unsharded_notices.push((n.txn, n.resource));
        }
    }
    assert_eq!(sharded_notices, unsharded_notices);
    assert_eq!(sharded_notices, vec![(t(2), rs[0]), (t(3), rs[1])]);

    sharded.release_all(t(3), &oracle, &mut |_| ());
    unsharded.release_all(t(3), &oracle);
    assert_eq!(sharded.total_grants(), 0);
    assert_eq!(unsharded.total_grants(), 0);
}

#[test]
fn compensating_closer_dooms_cycle_members_across_shards() {
    // §3.4: when the request that closes the cross-shard cycle belongs to a
    // compensating step, the *other* members are the victims and the
    // compensating request stays queued — same as unsharded.
    let oracle = TotalInterference;
    let sharded = ShardedLockManager::new(8);
    let rs = three_shards(&sharded);
    let mut unsharded = LockManager::new();

    let closing = compensating(1, rs[2], LockKind::X);
    let sharded_out = drive_cycle(&mut |r| sharded.request(r, &oracle), rs, closing);
    let unsharded_out = drive_cycle(&mut |r| unsharded.request(r, &oracle), rs, closing);

    match (&sharded_out, &unsharded_out) {
        (
            RequestOutcome::Deadlock {
                victims: sv,
                ticket: st,
            },
            RequestOutcome::Deadlock {
                victims: uv,
                ticket: ut,
            },
        ) => {
            assert_eq!(sv, uv, "victim sets differ");
            assert!(!sv.contains(&t(1)), "compensating step victimized");
            assert!(
                st.is_some() && ut.is_some(),
                "compensating request must stay queued"
            );
        }
        other => panic!("expected deadlock from both managers, got {other:?}"),
    }
    assert!(sharded.is_waiting(t(1)), "compensating T1 still queued");
    assert!(unsharded.is_waiting(t(1)));
}
