//! Randomized property tests for the lock manager (seeded, dependency-free).
//!
//! A random workload of requests/releases must never produce two conflicting
//! grants on the same resource, and releasing everything must drain the
//! table.

use acc_common::{AssertionTemplateId, ResourceId, SeededRng, StepTypeId, TxnId};
use acc_lockmgr::{
    InterferenceOracle, LockKind, LockManager, LockMode, Request, RequestCtx, RequestOutcome,
};

/// Deterministic "pseudo-random" interference table: step s interferes with
/// template t iff (s + t) divisible by 3.
struct HashOracle;

impl InterferenceOracle for HashOracle {
    fn write_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool {
        (step.raw() + assertion.raw()).is_multiple_of(3)
    }
    fn read_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool {
        (step.raw() + assertion.raw()).is_multiple_of(7)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Request {
        txn: u64,
        resource: u32,
        kind_sel: u8,
        step: u32,
    },
    ReleaseAll {
        txn: u64,
    },
    ReleaseConventional {
        txn: u64,
    },
    CancelWaiting {
        txn: u64,
    },
}

fn random_op(rng: &mut SeededRng) -> Op {
    match rng.index(4) {
        0 => Op::Request {
            txn: rng.int_range(0, 5) as u64,
            resource: rng.int_range(0, 3) as u32,
            kind_sel: rng.int_range(0, 7) as u8,
            step: rng.int_range(0, 4) as u32,
        },
        1 => Op::ReleaseAll {
            txn: rng.int_range(0, 5) as u64,
        },
        2 => Op::ReleaseConventional {
            txn: rng.int_range(0, 5) as u64,
        },
        _ => Op::CancelWaiting {
            txn: rng.int_range(0, 5) as u64,
        },
    }
}

fn kind_of(sel: u8) -> LockKind {
    match sel {
        0 => LockKind::Conventional(LockMode::IS),
        1 => LockKind::Conventional(LockMode::IX),
        2 => LockKind::Conventional(LockMode::S),
        3 => LockKind::Conventional(LockMode::SIX),
        4 => LockKind::Conventional(LockMode::X),
        n => LockKind::Assertional(AssertionTemplateId((n - 5) as u32)),
    }
}

#[test]
fn random_workload_preserves_invariants() {
    let mut meta_rng = SeededRng::new(0x10c_4a11);
    for _case in 0..256 {
        let n_ops = 1 + meta_rng.index(119);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut meta_rng)).collect();

        let oracle = HashOracle;
        let mut lm = LockManager::new();
        // Track which txns hold which (resource, kind, step) so we can check
        // pairwise compatibility of everything granted.
        let mut grants: Vec<(u64, u32, LockKind, u32)> = Vec::new();

        let note_granted = |grants: &mut Vec<(u64, u32, LockKind, u32)>,
                            txn: u64,
                            r: u32,
                            kind: LockKind,
                            step: u32| {
            grants.push((txn, r, kind, step));
        };

        // Remember queued requests so grant notices can be mapped back.
        let mut queued: Vec<(u64, u64, u32, LockKind, u32)> = Vec::new(); // (ticket, txn, r, kind, step)

        for op in &ops {
            match *op {
                Op::Request {
                    txn,
                    resource,
                    kind_sel,
                    step,
                } => {
                    let kind = kind_of(kind_sel);
                    let req = Request::new(
                        TxnId(txn),
                        ResourceId::Named(resource),
                        kind,
                        RequestCtx::plain(StepTypeId(step)),
                    );
                    match lm.request(req, &oracle) {
                        RequestOutcome::Granted => {
                            note_granted(&mut grants, txn, resource, kind, step)
                        }
                        RequestOutcome::Waiting(t) => queued.push((t.0, txn, resource, kind, step)),
                        RequestOutcome::Deadlock { victims, ticket } => {
                            assert!(ticket.is_none());
                            assert_eq!(victims, vec![TxnId(txn)]);
                            // Resolve like the runtime would: abort the victim.
                            lm.release_all(TxnId(txn), &oracle);
                            grants.retain(|g| g.0 != txn);
                            queued.retain(|q| q.1 != txn);
                        }
                    }
                }
                Op::ReleaseAll { txn } => {
                    let notices = lm.release_all(TxnId(txn), &oracle);
                    grants.retain(|g| g.0 != txn);
                    queued.retain(|q| q.1 != txn);
                    for n in notices {
                        let i = queued.iter().position(|q| q.0 == n.ticket.0);
                        assert!(i.is_some(), "grant notice for unknown ticket");
                        let q = queued.remove(i.unwrap());
                        note_granted(&mut grants, q.1, q.2, q.3, q.4);
                    }
                }
                Op::ReleaseConventional { txn } => {
                    let notices = lm.release_where(TxnId(txn), &oracle, |k, _| k.is_conventional());
                    grants.retain(|g| !(g.0 == txn && g.2.is_conventional()));
                    for n in notices {
                        let i = queued.iter().position(|q| q.0 == n.ticket.0);
                        assert!(i.is_some(), "grant notice for unknown ticket");
                        let q = queued.remove(i.unwrap());
                        note_granted(&mut grants, q.1, q.2, q.3, q.4);
                    }
                }
                Op::CancelWaiting { txn } => {
                    let notices = lm.cancel_waiting(TxnId(txn), &oracle);
                    queued.retain(|q| q.1 != txn);
                    for n in notices {
                        let i = queued.iter().position(|q| q.0 == n.ticket.0);
                        assert!(i.is_some(), "grant notice for unknown ticket");
                        let q = queued.remove(i.unwrap());
                        note_granted(&mut grants, q.1, q.2, q.3, q.4);
                    }
                }
            }

            // Invariant: all co-granted conventional locks on a resource are
            // pairwise compatible across transactions (mode dominance makes
            // our mirror an over-approximation for same-txn upgrades, so we
            // only check across txns and take each txn's strongest mode).
            for i in 0..grants.len() {
                for j in (i + 1)..grants.len() {
                    let (ta, ra, ka, _) = grants[i];
                    let (tb, rb, kb, _) = grants[j];
                    if ta == tb || ra != rb {
                        continue;
                    }
                    if let (LockKind::Conventional(ma), LockKind::Conventional(mb)) = (ka, kb) {
                        // The manager may have upgraded a grant; query it for
                        // the authoritative answer.
                        if lm.holds(TxnId(ta), ResourceId::Named(ra), ka)
                            && lm.holds(TxnId(tb), ResourceId::Named(rb), kb)
                        {
                            assert!(
                                ma.compatible(mb),
                                "incompatible co-grants: txn{ta} {ma:?} vs txn{tb} {mb:?} on {ra}"
                            );
                        }
                    }
                }
            }
        }

        // Drain: releasing every transaction empties the table.
        for txn in 0..6u64 {
            lm.release_all(TxnId(txn), &oracle);
        }
        assert_eq!(lm.total_grants(), 0);
        for txn in 0..6u64 {
            assert!(!lm.is_waiting(TxnId(txn)));
            assert!(lm.held_resources(TxnId(txn)).is_empty());
        }
    }
}
