#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
#
# Everything runs offline against the vendored workspace — no network, no
# extra components beyond rustfmt and clippy from the pinned toolchain.
# Workload tests are seeded deterministically, so a green run here is
# reproducible bit-for-bit.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== durable WAL tests (sector framing, devices, group commit) =="
cargo test -p acc-wal -p acc-txn --offline -q --test sector_prop --test group_commit

echo "== oracle edge cases + epoch registry tests =="
cargo test -p acc-core --offline -q --test oracle_edges
cargo test -p acc-lockmgr --offline -q registry

echo "== interference inference: brute-force soundness + differential vs hand tables =="
cargo test -p acc-core --offline -q --test infer_prop
cargo test -p acc-tpcc --offline -q --test infer_diff

echo "== bring-your-own workloads: inferred-table torture + switchover + 8-thread burns =="
cargo test -p acc-workloads --offline -q

echo "== MVCC-lite visibility property tests + version-read observability =="
cargo test -p acc-storage --offline -q --test visibility_prop
cargo test --offline -q --test observability

echo "== paged storage: pager + B-tree units, model-based tree property tests =="
cargo test -p acc-storage --offline -q --lib pager
cargo test -p acc-storage --offline -q --lib btree
cargo test -p acc-storage --offline -q --lib table
cargo test -p acc-storage --offline -q --test tree_prop

echo "== pagebench smoke (page-latch protocol, release) =="
cargo run -p acc-bench --release --offline --bin figures -- pagebench --quick >/dev/null

echo "== crash-torture smoke (bounded sweep) =="
cargo run -p acc-bench --release --offline --bin figures -- torture --quick >/dev/null

echo "== fsync-boundary torture smoke (both devices) =="
cargo run -p acc-bench --release --offline --bin figures -- torture --fsync --quick

echo "== reanalysis torture smoke (epoch switchover at step boundaries) =="
cargo run -p acc-bench --release --offline --bin figures -- torture --reanalysis --quick

echo "== WAL-shipping replication tests (shipper, follower, transports, pump) =="
cargo test -p acc-repl --offline -q

echo "== ship torture smoke (every ship boundary, both sides) =="
cargo run -p acc-bench --release --offline --bin figures -- torture --ship --quick

echo "== multi-thread stress smoke (8-terminal closed loop, release) =="
cargo run -p acc-bench --release --offline --bin figures -- stress --quick

echo "== server front-end: wire/session/admission units + TCP round-trip smoke =="
cargo test -p acc-server --offline -q
cargo test -p acc-server --offline -q --test frontend tcp_round_trip

echo "== network torture smoke (connection faults + crashes at protocol boundaries) =="
cargo run -p acc-bench --release --offline --bin figures -- torture --net --quick

echo "== determinism: two consecutive 'figures -- tables' runs byte-identical =="
t1="$(mktemp)"; t2="$(mktemp)"
trap 'rm -f "$t1" "$t2"' EXIT
cargo run -p acc-bench --release --offline --bin figures -- tables > "$t1"
cargo run -p acc-bench --release --offline --bin figures -- tables > "$t2"
cmp "$t1" "$t2"

echo "== determinism: two consecutive 'figures -- infer' runs byte-identical =="
cargo run -p acc-bench --release --offline --bin figures -- infer > "$t1"
cargo run -p acc-bench --release --offline --bin figures -- infer > "$t2"
cmp "$t1" "$t2"

echo "== determinism: seeded open-loop arrival schedule byte-identical =="
cargo run -p acc-bench --release --offline --bin figures -- saturate --schedule --quick > "$t1"
cargo run -p acc-bench --release --offline --bin figures -- saturate --schedule --quick > "$t2"
cmp "$t1" "$t2"

echo "== README vs figures --help drift =="
# Every `figures -- <subcommand>` the README advertises must exist in the
# binary's --help output, so docs can't drift from the dispatcher.
help_out="$(cargo run -p acc-bench --release --offline --bin figures -- --help)"
missing=0
for sub in $(grep -o 'figures -- [a-z0-9]*' README.md | awk '{print $3}' | sort -u); do
    if ! grep -qw "$sub" <<<"$help_out"; then
        echo "README mentions 'figures -- $sub' but --help does not list it" >&2
        missing=1
    fi
done
[ "$missing" -eq 0 ] || exit 1

echo "All checks passed."
