#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
#
# Everything runs offline against the vendored workspace — no network, no
# extra components beyond rustfmt and clippy from the pinned toolchain.
# Workload tests are seeded deterministically, so a green run here is
# reproducible bit-for-bit.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test --workspace --offline -q

echo "== durable WAL tests (sector framing, devices, group commit) =="
cargo test -p acc-wal -p acc-txn --offline -q --test sector_prop --test group_commit

echo "== crash-torture smoke (bounded sweep) =="
cargo run -p acc-bench --release --offline --bin figures -- torture --quick >/dev/null

echo "== fsync-boundary torture smoke (both devices) =="
cargo run -p acc-bench --release --offline --bin figures -- torture --fsync --quick

echo "== multi-thread stress smoke (8-terminal closed loop, release) =="
cargo run -p acc-bench --release --offline --bin figures -- stress --quick

echo "All checks passed."
