#!/usr/bin/env bash
# Diff two `figures -- mtbench` runs by their machine-readable JSON lines.
#
# Usage:
#   cargo run -p acc-bench --release --offline --bin figures -- mtbench > before.txt
#   ... make changes ...
#   cargo run -p acc-bench --release --offline --bin figures -- mtbench > after.txt
#   scripts/mtbench_diff.sh before.txt after.txt
#
# Rows are joined on (bench, threads|readers); every shared numeric metric is
# printed as before → after with the relative delta. Plain awk — no jq, no
# network, nothing beyond coreutils.

set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 <before-file> <after-file>" >&2
    exit 2
fi

# Pull only the JSON lines (one object per line, flat key:value pairs).
awk '
FNR == 1 { file++ }
/^\{/ {
    line = $0
    gsub(/[{}"]/, "", line)
    n = split(line, kv, ",")
    bench = ""; slot = ""
    for (i = 1; i <= n; i++) {
        split(kv[i], p, ":")
        if (p[1] == "bench") bench = p[2]
        if (p[1] == "threads" || p[1] == "readers") slot = p[1] "=" p[2]
    }
    key = bench "|" slot
    keyorder[key] = keyorder[key] ? keyorder[key] : ++seen
    for (i = 1; i <= n; i++) {
        split(kv[i], p, ":")
        if (p[1] == "bench" || p[1] == "threads" || p[1] == "readers") continue
        metorder[key SUBSEP p[1]] = metorder[key SUBSEP p[1]] ? metorder[key SUBSEP p[1]] : ++mseen
        val[file, key, p[1]] = p[2]
        metrics[key SUBSEP p[1]] = 1
    }
    keys[key] = 1
}
END {
    if (file < 2) {
        print "error: one of the inputs has no JSON benchmark lines" > "/dev/stderr"
        exit 1
    }
    # Stable order: first-seen row, then first-seen metric.
    nk = 0
    for (k in keys) { order[keyorder[k]] = k; if (keyorder[k] > nk) nk = keyorder[k] }
    for (oi = 1; oi <= nk; oi++) {
        k = order[oi]
        if (k == "") continue
        split(k, parts, "|")
        printf "\n%s %s\n", parts[1], parts[2]
        for (mk in metrics) {
            split(mk, mp, SUBSEP)
            if (mp[1] != k) continue
            morder[metorder[mk]] = mp[2]
        }
        nm = 0
        for (mk in metrics) {
            split(mk, mp, SUBSEP)
            if (mp[1] == k && metorder[mk] > nm) nm = metorder[mk]
        }
        for (mi = 1; mi <= nm; mi++) {
            m = morder[mi]
            if (m == "" || !((k SUBSEP m) in metrics)) continue
            a = val[1, k, m]; b = val[2, k, m]
            if (a == "" || b == "") continue
            if (a + 0 == 0) {
                printf "  %-28s %14s -> %-14s\n", m, a, b
            } else {
                printf "  %-28s %14s -> %-14s %+7.1f%%\n", m, a, b, (b - a) * 100.0 / a
            }
            delete morder[mi]
        }
    }
}
' "$1" "$2"
