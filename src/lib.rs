//! # assertional-acc
//!
//! A from-scratch reproduction of *"Design and Performance of an Assertional
//! Concurrency Control System"* (Bernstein, Gerstl, Leung, Lewis — ICDE
//! 1998): a transaction system in which long transactions are decomposed
//! into atomic steps scheduled by an **assertional concurrency control**
//! that guarantees *semantic correctness* — every transaction satisfies its
//! specification — instead of serializability.
//!
//! This crate is the façade over the workspace:
//!
//! * [`common`] — values, ids, seeded RNG, clocks;
//! * [`storage`] — the in-memory relational engine (tables, indices, pages);
//! * [`lockmgr`] — conventional + assertional lock modes, deadlock
//!   detection;
//! * [`wal`] — write-ahead logging with end-of-step records and recovery;
//! * [`txn`] — step-decomposed transaction programs, the strict-2PL
//!   baseline, compensation;
//! * [`acc`] — the paper's contribution: assertion templates, the
//!   design-time interference analysis, and the one-level ACC policy;
//! * [`engine`] — a deterministic interleaving explorer and a threaded
//!   closed-loop engine;
//! * [`sim`] — the discrete-event simulator behind the figure
//!   reproductions;
//! * [`tpcc`] — the TPC-C workload, decomposed as in the paper's
//!   evaluation.
//!
//! ## Quick start
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use assertional_acc::prelude::*;
//! use std::sync::Arc;
//!
//! // A one-table database…
//! let mut catalog = Catalog::new();
//! let t = catalog.add_table(
//!     TableSchema::builder("counters")
//!         .column("id", ColumnType::Int)
//!         .column("value", ColumnType::Int)
//!         .key(&["id"])
//!         .build(),
//! );
//! let mut db = Database::new(&catalog);
//! db.table_mut(t).unwrap()
//!     .insert(Row(vec![Value::Int(0), Value::Int(41)])).unwrap();
//!
//! // …a system around it, and a one-step transaction.
//! let shared = SharedDb::new(db, Arc::new(NoInterference));
//! struct Bump;
//! impl TxnProgram for Bump {
//!     fn txn_type(&self) -> TxnTypeId { TxnTypeId(0) }
//!     fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
//!         ctx.update_key(TableId(0), &Key::ints(&[0]), |r| {
//!             let v = r.int(1);
//!             r.set(1, Value::Int(v + 1));
//!         })?;
//!         Ok(StepOutcome::Done)
//!     }
//! }
//! let out = run(&shared, &TwoPhase, &mut Bump, WaitMode::Block).unwrap();
//! assert!(matches!(out, RunOutcome::Committed { .. }));
//! ```

pub use acc_common as common;
pub use acc_core as acc;
pub use acc_engine as engine;
pub use acc_lockmgr as lockmgr;
pub use acc_sim as sim;
pub use acc_storage as storage;
pub use acc_tpcc as tpcc;
pub use acc_txn as txn;
pub use acc_wal as wal;

/// The most common imports in one place.
pub mod prelude {
    pub use acc_common::{
        AssertionTemplateId, Decimal, Error, ResourceId, Result, StepTypeId, TableId, TxnId,
        TxnTypeId, Value,
    };
    pub use acc_core::{
        Acc, Analysis, AssertionInstance, AssertionRegistry, InterferenceTables, StepFootprint,
        StepSpec, TableFootprint, TxnSpec, DIRTY,
    };
    pub use acc_engine::{Stepper, StepperConfig};
    pub use acc_lockmgr::{InterferenceOracle, LockKind, LockMode, NoInterference};
    pub use acc_storage::{Catalog, ColumnType, Database, Key, Predicate, Row, TableSchema};
    pub use acc_txn::{
        run, AbortReason, ConcurrencyControl, RunOutcome, SharedDb, StepCtx, StepOutcome,
        Transaction, TwoPhase, TxnProgram, WaitMode,
    };
    pub use acc_wal::{recover, LogRecord, RecoveryReport, Wal};
}
