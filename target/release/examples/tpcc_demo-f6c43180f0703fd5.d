/root/repo/target/release/examples/tpcc_demo-f6c43180f0703fd5.d: examples/tpcc_demo.rs

/root/repo/target/release/examples/tpcc_demo-f6c43180f0703fd5: examples/tpcc_demo.rs

examples/tpcc_demo.rs:
