/root/repo/target/release/deps/acc_common-f26ee87bc40b78c9.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/error.rs crates/common/src/events.rs crates/common/src/faults.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/value.rs

/root/repo/target/release/deps/libacc_common-f26ee87bc40b78c9.rlib: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/error.rs crates/common/src/events.rs crates/common/src/faults.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/value.rs

/root/repo/target/release/deps/libacc_common-f26ee87bc40b78c9.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/error.rs crates/common/src/events.rs crates/common/src/faults.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/error.rs:
crates/common/src/events.rs:
crates/common/src/faults.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/value.rs:
