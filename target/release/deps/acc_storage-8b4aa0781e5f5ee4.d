/root/repo/target/release/deps/acc_storage-8b4aa0781e5f5ee4.d: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs

/root/repo/target/release/deps/libacc_storage-8b4aa0781e5f5ee4.rlib: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs

/root/repo/target/release/deps/libacc_storage-8b4aa0781e5f5ee4.rmeta: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs

crates/storage/src/lib.rs:
crates/storage/src/predicate.rs:
crates/storage/src/row.rs:
crates/storage/src/schema.rs:
crates/storage/src/table.rs:
crates/storage/src/undo.rs:
