/root/repo/target/release/deps/acc_bench-c77bdb688f32b035.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libacc_bench-c77bdb688f32b035.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libacc_bench-c77bdb688f32b035.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/microbench.rs:
