/root/repo/target/release/deps/acc_wal-250dc0289061a319.d: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs

/root/repo/target/release/deps/libacc_wal-250dc0289061a319.rlib: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs

/root/repo/target/release/deps/libacc_wal-250dc0289061a319.rmeta: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs

crates/wal/src/lib.rs:
crates/wal/src/buf.rs:
crates/wal/src/codec.rs:
crates/wal/src/log.rs:
crates/wal/src/record.rs:
crates/wal/src/recovery.rs:
