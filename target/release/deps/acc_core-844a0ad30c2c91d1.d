/root/repo/target/release/deps/acc_core-844a0ad30c2c91d1.d: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs

/root/repo/target/release/deps/libacc_core-844a0ad30c2c91d1.rlib: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs

/root/repo/target/release/deps/libacc_core-844a0ad30c2c91d1.rmeta: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs

crates/acc/src/lib.rs:
crates/acc/src/analysis.rs:
crates/acc/src/assertion.rs:
crates/acc/src/footprint.rs:
crates/acc/src/policy.rs:
crates/acc/src/tables.rs:
