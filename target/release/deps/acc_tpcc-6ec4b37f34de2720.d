/root/repo/target/release/deps/acc_tpcc-6ec4b37f34de2720.d: crates/tpcc/src/lib.rs crates/tpcc/src/consistency.rs crates/tpcc/src/decompose.rs crates/tpcc/src/input.rs crates/tpcc/src/populate.rs crates/tpcc/src/recovery.rs crates/tpcc/src/schema.rs crates/tpcc/src/torture.rs crates/tpcc/src/trace.rs crates/tpcc/src/txns.rs

/root/repo/target/release/deps/libacc_tpcc-6ec4b37f34de2720.rlib: crates/tpcc/src/lib.rs crates/tpcc/src/consistency.rs crates/tpcc/src/decompose.rs crates/tpcc/src/input.rs crates/tpcc/src/populate.rs crates/tpcc/src/recovery.rs crates/tpcc/src/schema.rs crates/tpcc/src/torture.rs crates/tpcc/src/trace.rs crates/tpcc/src/txns.rs

/root/repo/target/release/deps/libacc_tpcc-6ec4b37f34de2720.rmeta: crates/tpcc/src/lib.rs crates/tpcc/src/consistency.rs crates/tpcc/src/decompose.rs crates/tpcc/src/input.rs crates/tpcc/src/populate.rs crates/tpcc/src/recovery.rs crates/tpcc/src/schema.rs crates/tpcc/src/torture.rs crates/tpcc/src/trace.rs crates/tpcc/src/txns.rs

crates/tpcc/src/lib.rs:
crates/tpcc/src/consistency.rs:
crates/tpcc/src/decompose.rs:
crates/tpcc/src/input.rs:
crates/tpcc/src/populate.rs:
crates/tpcc/src/recovery.rs:
crates/tpcc/src/schema.rs:
crates/tpcc/src/torture.rs:
crates/tpcc/src/trace.rs:
crates/tpcc/src/txns.rs:
