/root/repo/target/release/deps/assertional_acc-e567bd96e08372c9.d: src/lib.rs

/root/repo/target/release/deps/libassertional_acc-e567bd96e08372c9.rlib: src/lib.rs

/root/repo/target/release/deps/libassertional_acc-e567bd96e08372c9.rmeta: src/lib.rs

src/lib.rs:
