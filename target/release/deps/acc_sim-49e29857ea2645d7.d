/root/repo/target/release/deps/acc_sim-49e29857ea2645d7.d: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libacc_sim-49e29857ea2645d7.rlib: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libacc_sim-49e29857ea2645d7.rmeta: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/driver.rs:
crates/sim/src/metrics.rs:
crates/sim/src/trace.rs:
