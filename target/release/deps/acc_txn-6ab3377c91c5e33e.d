/root/repo/target/release/deps/acc_txn-6ab3377c91c5e33e.d: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs

/root/repo/target/release/deps/libacc_txn-6ab3377c91c5e33e.rlib: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs

/root/repo/target/release/deps/libacc_txn-6ab3377c91c5e33e.rmeta: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs

crates/txn/src/lib.rs:
crates/txn/src/cc.rs:
crates/txn/src/program.rs:
crates/txn/src/runner.rs:
crates/txn/src/shared.rs:
crates/txn/src/step.rs:
crates/txn/src/transaction.rs:
