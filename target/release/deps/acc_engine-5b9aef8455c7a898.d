/root/repo/target/release/deps/acc_engine-5b9aef8455c7a898.d: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs

/root/repo/target/release/deps/libacc_engine-5b9aef8455c7a898.rlib: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs

/root/repo/target/release/deps/libacc_engine-5b9aef8455c7a898.rmeta: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs

crates/engine/src/lib.rs:
crates/engine/src/stats.rs:
crates/engine/src/stepper.rs:
crates/engine/src/threaded.rs:
