/root/repo/target/release/deps/figures-59d5fa99e6abd1f4.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-59d5fa99e6abd1f4: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
