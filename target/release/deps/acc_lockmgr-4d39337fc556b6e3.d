/root/repo/target/release/deps/acc_lockmgr-4d39337fc556b6e3.d: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs

/root/repo/target/release/deps/libacc_lockmgr-4d39337fc556b6e3.rlib: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs

/root/repo/target/release/deps/libacc_lockmgr-4d39337fc556b6e3.rmeta: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs

crates/lockmgr/src/lib.rs:
crates/lockmgr/src/manager.rs:
crates/lockmgr/src/mode.rs:
crates/lockmgr/src/oracle.rs:
crates/lockmgr/src/request.rs:
crates/lockmgr/src/waitfor.rs:
