/root/repo/target/release/deps/lockmgr-2b6efec8d072ce5a.d: crates/bench/benches/lockmgr.rs

/root/repo/target/release/deps/lockmgr-2b6efec8d072ce5a: crates/bench/benches/lockmgr.rs

crates/bench/benches/lockmgr.rs:
