/root/repo/target/debug/examples/order_processing-b8e60681fa832846.d: examples/order_processing.rs Cargo.toml

/root/repo/target/debug/examples/liborder_processing-b8e60681fa832846.rmeta: examples/order_processing.rs Cargo.toml

examples/order_processing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
