/root/repo/target/debug/examples/tpcc_demo-0df18f7ddbb99f74.d: examples/tpcc_demo.rs

/root/repo/target/debug/examples/tpcc_demo-0df18f7ddbb99f74: examples/tpcc_demo.rs

examples/tpcc_demo.rs:
