/root/repo/target/debug/examples/order_processing-aa30fb4788f24235.d: examples/order_processing.rs

/root/repo/target/debug/examples/order_processing-aa30fb4788f24235: examples/order_processing.rs

examples/order_processing.rs:
