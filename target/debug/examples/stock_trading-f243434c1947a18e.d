/root/repo/target/debug/examples/stock_trading-f243434c1947a18e.d: examples/stock_trading.rs

/root/repo/target/debug/examples/stock_trading-f243434c1947a18e: examples/stock_trading.rs

examples/stock_trading.rs:
