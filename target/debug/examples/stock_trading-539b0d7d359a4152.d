/root/repo/target/debug/examples/stock_trading-539b0d7d359a4152.d: examples/stock_trading.rs Cargo.toml

/root/repo/target/debug/examples/libstock_trading-539b0d7d359a4152.rmeta: examples/stock_trading.rs Cargo.toml

examples/stock_trading.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
