/root/repo/target/debug/examples/crash_recovery-ddac49d864095742.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-ddac49d864095742: examples/crash_recovery.rs

examples/crash_recovery.rs:
