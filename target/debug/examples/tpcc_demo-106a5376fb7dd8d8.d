/root/repo/target/debug/examples/tpcc_demo-106a5376fb7dd8d8.d: examples/tpcc_demo.rs Cargo.toml

/root/repo/target/debug/examples/libtpcc_demo-106a5376fb7dd8d8.rmeta: examples/tpcc_demo.rs Cargo.toml

examples/tpcc_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
