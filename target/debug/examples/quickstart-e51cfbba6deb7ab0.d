/root/repo/target/debug/examples/quickstart-e51cfbba6deb7ab0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e51cfbba6deb7ab0: examples/quickstart.rs

examples/quickstart.rs:
