/root/repo/target/debug/deps/acc_sim-59d27d7118f723f3.d: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libacc_sim-59d27d7118f723f3.rlib: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libacc_sim-59d27d7118f723f3.rmeta: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/driver.rs:
crates/sim/src/metrics.rs:
crates/sim/src/trace.rs:
