/root/repo/target/debug/deps/acc_lockmgr-0903575abc4f833c.d: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs

/root/repo/target/debug/deps/libacc_lockmgr-0903575abc4f833c.rlib: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs

/root/repo/target/debug/deps/libacc_lockmgr-0903575abc4f833c.rmeta: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs

crates/lockmgr/src/lib.rs:
crates/lockmgr/src/manager.rs:
crates/lockmgr/src/mode.rs:
crates/lockmgr/src/oracle.rs:
crates/lockmgr/src/request.rs:
crates/lockmgr/src/waitfor.rs:
