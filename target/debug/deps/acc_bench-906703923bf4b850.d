/root/repo/target/debug/deps/acc_bench-906703923bf4b850.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libacc_bench-906703923bf4b850.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
