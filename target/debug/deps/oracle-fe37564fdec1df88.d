/root/repo/target/debug/deps/oracle-fe37564fdec1df88.d: crates/bench/benches/oracle.rs

/root/repo/target/debug/deps/oracle-fe37564fdec1df88: crates/bench/benches/oracle.rs

crates/bench/benches/oracle.rs:
