/root/repo/target/debug/deps/acc_txn-55044c5505996932.d: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs

/root/repo/target/debug/deps/libacc_txn-55044c5505996932.rlib: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs

/root/repo/target/debug/deps/libacc_txn-55044c5505996932.rmeta: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs

crates/txn/src/lib.rs:
crates/txn/src/cc.rs:
crates/txn/src/program.rs:
crates/txn/src/runner.rs:
crates/txn/src/shared.rs:
crates/txn/src/step.rs:
crates/txn/src/transaction.rs:
