/root/repo/target/debug/deps/acc_txn-c5351aa66a4a7f0d.d: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs Cargo.toml

/root/repo/target/debug/deps/libacc_txn-c5351aa66a4a7f0d.rmeta: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs Cargo.toml

crates/txn/src/lib.rs:
crates/txn/src/cc.rs:
crates/txn/src/program.rs:
crates/txn/src/runner.rs:
crates/txn/src/shared.rs:
crates/txn/src/step.rs:
crates/txn/src/transaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
