/root/repo/target/debug/deps/semantic_oracle-f886b8fe60780fa4.d: tests/semantic_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libsemantic_oracle-f886b8fe60780fa4.rmeta: tests/semantic_oracle.rs Cargo.toml

tests/semantic_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
