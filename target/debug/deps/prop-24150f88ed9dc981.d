/root/repo/target/debug/deps/prop-24150f88ed9dc981.d: crates/wal/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-24150f88ed9dc981.rmeta: crates/wal/tests/prop.rs Cargo.toml

crates/wal/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
