/root/repo/target/debug/deps/acc_txn-57a57309876b3e12.d: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs

/root/repo/target/debug/deps/acc_txn-57a57309876b3e12: crates/txn/src/lib.rs crates/txn/src/cc.rs crates/txn/src/program.rs crates/txn/src/runner.rs crates/txn/src/shared.rs crates/txn/src/step.rs crates/txn/src/transaction.rs

crates/txn/src/lib.rs:
crates/txn/src/cc.rs:
crates/txn/src/program.rs:
crates/txn/src/runner.rs:
crates/txn/src/shared.rs:
crates/txn/src/step.rs:
crates/txn/src/transaction.rs:
