/root/repo/target/debug/deps/acc_lockmgr-ffc64d7978d4d342.d: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs Cargo.toml

/root/repo/target/debug/deps/libacc_lockmgr-ffc64d7978d4d342.rmeta: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs Cargo.toml

crates/lockmgr/src/lib.rs:
crates/lockmgr/src/manager.rs:
crates/lockmgr/src/mode.rs:
crates/lockmgr/src/oracle.rs:
crates/lockmgr/src/request.rs:
crates/lockmgr/src/waitfor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
