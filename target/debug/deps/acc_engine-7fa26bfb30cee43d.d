/root/repo/target/debug/deps/acc_engine-7fa26bfb30cee43d.d: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libacc_engine-7fa26bfb30cee43d.rmeta: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/stats.rs:
crates/engine/src/stepper.rs:
crates/engine/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
