/root/repo/target/debug/deps/stepctx-9f2526347941496a.d: crates/txn/tests/stepctx.rs

/root/repo/target/debug/deps/stepctx-9f2526347941496a: crates/txn/tests/stepctx.rs

crates/txn/tests/stepctx.rs:
