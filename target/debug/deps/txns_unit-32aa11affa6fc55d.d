/root/repo/target/debug/deps/txns_unit-32aa11affa6fc55d.d: crates/tpcc/tests/txns_unit.rs

/root/repo/target/debug/deps/txns_unit-32aa11affa6fc55d: crates/tpcc/tests/txns_unit.rs

crates/tpcc/tests/txns_unit.rs:
