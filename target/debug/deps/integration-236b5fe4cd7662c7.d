/root/repo/target/debug/deps/integration-236b5fe4cd7662c7.d: crates/tpcc/tests/integration.rs

/root/repo/target/debug/deps/integration-236b5fe4cd7662c7: crates/tpcc/tests/integration.rs

crates/tpcc/tests/integration.rs:
