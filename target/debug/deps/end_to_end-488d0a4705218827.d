/root/repo/target/debug/deps/end_to_end-488d0a4705218827.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-488d0a4705218827: tests/end_to_end.rs

tests/end_to_end.rs:
