/root/repo/target/debug/deps/lockmgr-0218c5a54c0d8f7c.d: crates/bench/benches/lockmgr.rs Cargo.toml

/root/repo/target/debug/deps/liblockmgr-0218c5a54c0d8f7c.rmeta: crates/bench/benches/lockmgr.rs Cargo.toml

crates/bench/benches/lockmgr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
