/root/repo/target/debug/deps/prop-e1ec6b9b4cd4996c.d: crates/lockmgr/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-e1ec6b9b4cd4996c.rmeta: crates/lockmgr/tests/prop.rs Cargo.toml

crates/lockmgr/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
