/root/repo/target/debug/deps/costs-ce16a067b95884f9.d: crates/sim/tests/costs.rs Cargo.toml

/root/repo/target/debug/deps/libcosts-ce16a067b95884f9.rmeta: crates/sim/tests/costs.rs Cargo.toml

crates/sim/tests/costs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
