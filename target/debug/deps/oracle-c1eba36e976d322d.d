/root/repo/target/debug/deps/oracle-c1eba36e976d322d.d: crates/bench/benches/oracle.rs Cargo.toml

/root/repo/target/debug/deps/liboracle-c1eba36e976d322d.rmeta: crates/bench/benches/oracle.rs Cargo.toml

crates/bench/benches/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
