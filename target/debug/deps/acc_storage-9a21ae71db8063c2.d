/root/repo/target/debug/deps/acc_storage-9a21ae71db8063c2.d: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs

/root/repo/target/debug/deps/acc_storage-9a21ae71db8063c2: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs

crates/storage/src/lib.rs:
crates/storage/src/predicate.rs:
crates/storage/src/row.rs:
crates/storage/src/schema.rs:
crates/storage/src/table.rs:
crates/storage/src/undo.rs:
