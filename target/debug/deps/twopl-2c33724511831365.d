/root/repo/target/debug/deps/twopl-2c33724511831365.d: crates/txn/tests/twopl.rs Cargo.toml

/root/repo/target/debug/deps/libtwopl-2c33724511831365.rmeta: crates/txn/tests/twopl.rs Cargo.toml

crates/txn/tests/twopl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
