/root/repo/target/debug/deps/torture-c377a268739a1778.d: crates/tpcc/tests/torture.rs Cargo.toml

/root/repo/target/debug/deps/libtorture-c377a268739a1778.rmeta: crates/tpcc/tests/torture.rs Cargo.toml

crates/tpcc/tests/torture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
