/root/repo/target/debug/deps/acc_storage-9892ae937fb1cc2c.d: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs

/root/repo/target/debug/deps/libacc_storage-9892ae937fb1cc2c.rlib: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs

/root/repo/target/debug/deps/libacc_storage-9892ae937fb1cc2c.rmeta: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs

crates/storage/src/lib.rs:
crates/storage/src/predicate.rs:
crates/storage/src/row.rs:
crates/storage/src/schema.rs:
crates/storage/src/table.rs:
crates/storage/src/undo.rs:
