/root/repo/target/debug/deps/acc_wal-6a89075c3533819e.d: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs

/root/repo/target/debug/deps/acc_wal-6a89075c3533819e: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs

crates/wal/src/lib.rs:
crates/wal/src/buf.rs:
crates/wal/src/codec.rs:
crates/wal/src/log.rs:
crates/wal/src/record.rs:
crates/wal/src/recovery.rs:
