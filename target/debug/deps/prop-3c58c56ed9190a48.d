/root/repo/target/debug/deps/prop-3c58c56ed9190a48.d: crates/wal/tests/prop.rs

/root/repo/target/debug/deps/prop-3c58c56ed9190a48: crates/wal/tests/prop.rs

crates/wal/tests/prop.rs:
