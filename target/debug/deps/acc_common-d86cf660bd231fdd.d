/root/repo/target/debug/deps/acc_common-d86cf660bd231fdd.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/error.rs crates/common/src/events.rs crates/common/src/faults.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libacc_common-d86cf660bd231fdd.rlib: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/error.rs crates/common/src/events.rs crates/common/src/faults.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libacc_common-d86cf660bd231fdd.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/error.rs crates/common/src/events.rs crates/common/src/faults.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/error.rs:
crates/common/src/events.rs:
crates/common/src/faults.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/value.rs:
