/root/repo/target/debug/deps/acc_tpcc-b6e80ddc417a4e84.d: crates/tpcc/src/lib.rs crates/tpcc/src/consistency.rs crates/tpcc/src/decompose.rs crates/tpcc/src/input.rs crates/tpcc/src/populate.rs crates/tpcc/src/recovery.rs crates/tpcc/src/schema.rs crates/tpcc/src/torture.rs crates/tpcc/src/trace.rs crates/tpcc/src/txns.rs Cargo.toml

/root/repo/target/debug/deps/libacc_tpcc-b6e80ddc417a4e84.rmeta: crates/tpcc/src/lib.rs crates/tpcc/src/consistency.rs crates/tpcc/src/decompose.rs crates/tpcc/src/input.rs crates/tpcc/src/populate.rs crates/tpcc/src/recovery.rs crates/tpcc/src/schema.rs crates/tpcc/src/torture.rs crates/tpcc/src/trace.rs crates/tpcc/src/txns.rs Cargo.toml

crates/tpcc/src/lib.rs:
crates/tpcc/src/consistency.rs:
crates/tpcc/src/decompose.rs:
crates/tpcc/src/input.rs:
crates/tpcc/src/populate.rs:
crates/tpcc/src/recovery.rs:
crates/tpcc/src/schema.rs:
crates/tpcc/src/torture.rs:
crates/tpcc/src/trace.rs:
crates/tpcc/src/txns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
