/root/repo/target/debug/deps/acc_bench-28fea07a3094495a.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/acc_bench-28fea07a3094495a: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/microbench.rs:
