/root/repo/target/debug/deps/closed_loop-1a6d8259f1208b6e.d: crates/tpcc/tests/closed_loop.rs

/root/repo/target/debug/deps/closed_loop-1a6d8259f1208b6e: crates/tpcc/tests/closed_loop.rs

crates/tpcc/tests/closed_loop.rs:
