/root/repo/target/debug/deps/acc_core-3bcfa9ffc0000bf3.d: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libacc_core-3bcfa9ffc0000bf3.rmeta: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs Cargo.toml

crates/acc/src/lib.rs:
crates/acc/src/analysis.rs:
crates/acc/src/assertion.rs:
crates/acc/src/footprint.rs:
crates/acc/src/policy.rs:
crates/acc/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
