/root/repo/target/debug/deps/decomposed-38706e49886ecf4a.d: crates/txn/tests/decomposed.rs Cargo.toml

/root/repo/target/debug/deps/libdecomposed-38706e49886ecf4a.rmeta: crates/txn/tests/decomposed.rs Cargo.toml

crates/txn/tests/decomposed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
