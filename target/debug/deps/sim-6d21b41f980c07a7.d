/root/repo/target/debug/deps/sim-6d21b41f980c07a7.d: crates/sim/tests/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsim-6d21b41f980c07a7.rmeta: crates/sim/tests/sim.rs Cargo.toml

crates/sim/tests/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
