/root/repo/target/debug/deps/assertional_acc-90df02ed7f8fe52e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libassertional_acc-90df02ed7f8fe52e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
