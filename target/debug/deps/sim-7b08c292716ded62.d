/root/repo/target/debug/deps/sim-7b08c292716ded62.d: crates/sim/tests/sim.rs

/root/repo/target/debug/deps/sim-7b08c292716ded62: crates/sim/tests/sim.rs

crates/sim/tests/sim.rs:
