/root/repo/target/debug/deps/observability-aa7917f91c33df0f.d: tests/observability.rs

/root/repo/target/debug/deps/observability-aa7917f91c33df0f: tests/observability.rs

tests/observability.rs:
