/root/repo/target/debug/deps/figures-5cb5cb8e2c8017be.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-5cb5cb8e2c8017be: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
