/root/repo/target/debug/deps/wedged-223abaf8fadcefc1.d: crates/txn/tests/wedged.rs Cargo.toml

/root/repo/target/debug/deps/libwedged-223abaf8fadcefc1.rmeta: crates/txn/tests/wedged.rs Cargo.toml

crates/txn/tests/wedged.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
