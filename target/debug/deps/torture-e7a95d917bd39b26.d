/root/repo/target/debug/deps/torture-e7a95d917bd39b26.d: crates/tpcc/tests/torture.rs

/root/repo/target/debug/deps/torture-e7a95d917bd39b26: crates/tpcc/tests/torture.rs

crates/tpcc/tests/torture.rs:
