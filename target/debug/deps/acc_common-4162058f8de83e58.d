/root/repo/target/debug/deps/acc_common-4162058f8de83e58.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/error.rs crates/common/src/events.rs crates/common/src/faults.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libacc_common-4162058f8de83e58.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/error.rs crates/common/src/events.rs crates/common/src/faults.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/value.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/error.rs:
crates/common/src/events.rs:
crates/common/src/faults.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
