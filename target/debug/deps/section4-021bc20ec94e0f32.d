/root/repo/target/debug/deps/section4-021bc20ec94e0f32.d: crates/acc/tests/section4.rs Cargo.toml

/root/repo/target/debug/deps/libsection4-021bc20ec94e0f32.rmeta: crates/acc/tests/section4.rs Cargo.toml

crates/acc/tests/section4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
