/root/repo/target/debug/deps/assertional_acc-d61b266c9e6556c4.d: src/lib.rs

/root/repo/target/debug/deps/libassertional_acc-d61b266c9e6556c4.rlib: src/lib.rs

/root/repo/target/debug/deps/libassertional_acc-d61b266c9e6556c4.rmeta: src/lib.rs

src/lib.rs:
