/root/repo/target/debug/deps/acc_engine-a53ffd77012c1db6.d: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs

/root/repo/target/debug/deps/acc_engine-a53ffd77012c1db6: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs

crates/engine/src/lib.rs:
crates/engine/src/stats.rs:
crates/engine/src/stepper.rs:
crates/engine/src/threaded.rs:
