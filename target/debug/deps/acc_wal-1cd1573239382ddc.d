/root/repo/target/debug/deps/acc_wal-1cd1573239382ddc.d: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs

/root/repo/target/debug/deps/libacc_wal-1cd1573239382ddc.rlib: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs

/root/repo/target/debug/deps/libacc_wal-1cd1573239382ddc.rmeta: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs

crates/wal/src/lib.rs:
crates/wal/src/buf.rs:
crates/wal/src/codec.rs:
crates/wal/src/log.rs:
crates/wal/src/record.rs:
crates/wal/src/recovery.rs:
