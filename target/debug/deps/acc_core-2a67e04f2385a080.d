/root/repo/target/debug/deps/acc_core-2a67e04f2385a080.d: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs

/root/repo/target/debug/deps/acc_core-2a67e04f2385a080: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs

crates/acc/src/lib.rs:
crates/acc/src/analysis.rs:
crates/acc/src/assertion.rs:
crates/acc/src/footprint.rs:
crates/acc/src/policy.rs:
crates/acc/src/tables.rs:
