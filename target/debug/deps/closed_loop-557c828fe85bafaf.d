/root/repo/target/debug/deps/closed_loop-557c828fe85bafaf.d: crates/engine/tests/closed_loop.rs Cargo.toml

/root/repo/target/debug/deps/libclosed_loop-557c828fe85bafaf.rmeta: crates/engine/tests/closed_loop.rs Cargo.toml

crates/engine/tests/closed_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
