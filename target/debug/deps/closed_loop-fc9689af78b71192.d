/root/repo/target/debug/deps/closed_loop-fc9689af78b71192.d: crates/engine/tests/closed_loop.rs

/root/repo/target/debug/deps/closed_loop-fc9689af78b71192: crates/engine/tests/closed_loop.rs

crates/engine/tests/closed_loop.rs:
