/root/repo/target/debug/deps/acc_storage-b55a0de98a6cfcce.d: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs Cargo.toml

/root/repo/target/debug/deps/libacc_storage-b55a0de98a6cfcce.rmeta: crates/storage/src/lib.rs crates/storage/src/predicate.rs crates/storage/src/row.rs crates/storage/src/schema.rs crates/storage/src/table.rs crates/storage/src/undo.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/predicate.rs:
crates/storage/src/row.rs:
crates/storage/src/schema.rs:
crates/storage/src/table.rs:
crates/storage/src/undo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
