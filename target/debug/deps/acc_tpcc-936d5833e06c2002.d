/root/repo/target/debug/deps/acc_tpcc-936d5833e06c2002.d: crates/tpcc/src/lib.rs crates/tpcc/src/consistency.rs crates/tpcc/src/decompose.rs crates/tpcc/src/input.rs crates/tpcc/src/populate.rs crates/tpcc/src/recovery.rs crates/tpcc/src/schema.rs crates/tpcc/src/torture.rs crates/tpcc/src/trace.rs crates/tpcc/src/txns.rs

/root/repo/target/debug/deps/libacc_tpcc-936d5833e06c2002.rlib: crates/tpcc/src/lib.rs crates/tpcc/src/consistency.rs crates/tpcc/src/decompose.rs crates/tpcc/src/input.rs crates/tpcc/src/populate.rs crates/tpcc/src/recovery.rs crates/tpcc/src/schema.rs crates/tpcc/src/torture.rs crates/tpcc/src/trace.rs crates/tpcc/src/txns.rs

/root/repo/target/debug/deps/libacc_tpcc-936d5833e06c2002.rmeta: crates/tpcc/src/lib.rs crates/tpcc/src/consistency.rs crates/tpcc/src/decompose.rs crates/tpcc/src/input.rs crates/tpcc/src/populate.rs crates/tpcc/src/recovery.rs crates/tpcc/src/schema.rs crates/tpcc/src/torture.rs crates/tpcc/src/trace.rs crates/tpcc/src/txns.rs

crates/tpcc/src/lib.rs:
crates/tpcc/src/consistency.rs:
crates/tpcc/src/decompose.rs:
crates/tpcc/src/input.rs:
crates/tpcc/src/populate.rs:
crates/tpcc/src/recovery.rs:
crates/tpcc/src/schema.rs:
crates/tpcc/src/torture.rs:
crates/tpcc/src/trace.rs:
crates/tpcc/src/txns.rs:
