/root/repo/target/debug/deps/acc_core-4216d9d31cb68f62.d: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs

/root/repo/target/debug/deps/libacc_core-4216d9d31cb68f62.rlib: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs

/root/repo/target/debug/deps/libacc_core-4216d9d31cb68f62.rmeta: crates/acc/src/lib.rs crates/acc/src/analysis.rs crates/acc/src/assertion.rs crates/acc/src/footprint.rs crates/acc/src/policy.rs crates/acc/src/tables.rs

crates/acc/src/lib.rs:
crates/acc/src/analysis.rs:
crates/acc/src/assertion.rs:
crates/acc/src/footprint.rs:
crates/acc/src/policy.rs:
crates/acc/src/tables.rs:
