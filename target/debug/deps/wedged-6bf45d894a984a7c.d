/root/repo/target/debug/deps/wedged-6bf45d894a984a7c.d: crates/txn/tests/wedged.rs

/root/repo/target/debug/deps/wedged-6bf45d894a984a7c: crates/txn/tests/wedged.rs

crates/txn/tests/wedged.rs:
