/root/repo/target/debug/deps/assertional_acc-06e213bfb120ca40.d: src/lib.rs

/root/repo/target/debug/deps/assertional_acc-06e213bfb120ca40: src/lib.rs

src/lib.rs:
