/root/repo/target/debug/deps/stepctx-bf86c72c212a02fd.d: crates/txn/tests/stepctx.rs Cargo.toml

/root/repo/target/debug/deps/libstepctx-bf86c72c212a02fd.rmeta: crates/txn/tests/stepctx.rs Cargo.toml

crates/txn/tests/stepctx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
