/root/repo/target/debug/deps/semantic_oracle-69a2ad887cb02256.d: tests/semantic_oracle.rs

/root/repo/target/debug/deps/semantic_oracle-69a2ad887cb02256: tests/semantic_oracle.rs

tests/semantic_oracle.rs:
