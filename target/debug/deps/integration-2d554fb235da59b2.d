/root/repo/target/debug/deps/integration-2d554fb235da59b2.d: crates/tpcc/tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-2d554fb235da59b2.rmeta: crates/tpcc/tests/integration.rs Cargo.toml

crates/tpcc/tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
