/root/repo/target/debug/deps/acc_wal-7b9b1be2546aae25.d: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs Cargo.toml

/root/repo/target/debug/deps/libacc_wal-7b9b1be2546aae25.rmeta: crates/wal/src/lib.rs crates/wal/src/buf.rs crates/wal/src/codec.rs crates/wal/src/log.rs crates/wal/src/record.rs crates/wal/src/recovery.rs Cargo.toml

crates/wal/src/lib.rs:
crates/wal/src/buf.rs:
crates/wal/src/codec.rs:
crates/wal/src/log.rs:
crates/wal/src/record.rs:
crates/wal/src/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
