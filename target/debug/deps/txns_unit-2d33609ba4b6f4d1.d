/root/repo/target/debug/deps/txns_unit-2d33609ba4b6f4d1.d: crates/tpcc/tests/txns_unit.rs Cargo.toml

/root/repo/target/debug/deps/libtxns_unit-2d33609ba4b6f4d1.rmeta: crates/tpcc/tests/txns_unit.rs Cargo.toml

crates/tpcc/tests/txns_unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
