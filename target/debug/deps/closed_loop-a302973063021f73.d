/root/repo/target/debug/deps/closed_loop-a302973063021f73.d: crates/tpcc/tests/closed_loop.rs Cargo.toml

/root/repo/target/debug/deps/libclosed_loop-a302973063021f73.rmeta: crates/tpcc/tests/closed_loop.rs Cargo.toml

crates/tpcc/tests/closed_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
