/root/repo/target/debug/deps/lockmgr-1d6bf8788bb68761.d: crates/bench/benches/lockmgr.rs

/root/repo/target/debug/deps/lockmgr-1d6bf8788bb68761: crates/bench/benches/lockmgr.rs

crates/bench/benches/lockmgr.rs:
