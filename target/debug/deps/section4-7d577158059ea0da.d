/root/repo/target/debug/deps/section4-7d577158059ea0da.d: crates/acc/tests/section4.rs

/root/repo/target/debug/deps/section4-7d577158059ea0da: crates/acc/tests/section4.rs

crates/acc/tests/section4.rs:
