/root/repo/target/debug/deps/prop-b01b191b09af8277.d: crates/storage/tests/prop.rs

/root/repo/target/debug/deps/prop-b01b191b09af8277: crates/storage/tests/prop.rs

crates/storage/tests/prop.rs:
