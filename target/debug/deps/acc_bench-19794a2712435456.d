/root/repo/target/debug/deps/acc_bench-19794a2712435456.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libacc_bench-19794a2712435456.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libacc_bench-19794a2712435456.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/microbench.rs:
