/root/repo/target/debug/deps/acc_sim-0d07031279ff6780.d: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libacc_sim-0d07031279ff6780.rmeta: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/driver.rs:
crates/sim/src/metrics.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
