/root/repo/target/debug/deps/acc_sim-b2a8dadfbe4bc516.d: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/acc_sim-b2a8dadfbe4bc516: crates/sim/src/lib.rs crates/sim/src/driver.rs crates/sim/src/metrics.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/driver.rs:
crates/sim/src/metrics.rs:
crates/sim/src/trace.rs:
