/root/repo/target/debug/deps/stepper-cd46b521a4205bb2.d: crates/engine/tests/stepper.rs Cargo.toml

/root/repo/target/debug/deps/libstepper-cd46b521a4205bb2.rmeta: crates/engine/tests/stepper.rs Cargo.toml

crates/engine/tests/stepper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
