/root/repo/target/debug/deps/acc_lockmgr-426da137f9050685.d: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs

/root/repo/target/debug/deps/acc_lockmgr-426da137f9050685: crates/lockmgr/src/lib.rs crates/lockmgr/src/manager.rs crates/lockmgr/src/mode.rs crates/lockmgr/src/oracle.rs crates/lockmgr/src/request.rs crates/lockmgr/src/waitfor.rs

crates/lockmgr/src/lib.rs:
crates/lockmgr/src/manager.rs:
crates/lockmgr/src/mode.rs:
crates/lockmgr/src/oracle.rs:
crates/lockmgr/src/request.rs:
crates/lockmgr/src/waitfor.rs:
