/root/repo/target/debug/deps/acc_engine-64e4dfac2ebe4a74.d: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs

/root/repo/target/debug/deps/libacc_engine-64e4dfac2ebe4a74.rlib: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs

/root/repo/target/debug/deps/libacc_engine-64e4dfac2ebe4a74.rmeta: crates/engine/src/lib.rs crates/engine/src/stats.rs crates/engine/src/stepper.rs crates/engine/src/threaded.rs

crates/engine/src/lib.rs:
crates/engine/src/stats.rs:
crates/engine/src/stepper.rs:
crates/engine/src/threaded.rs:
