/root/repo/target/debug/deps/twopl-374751fabd7d1e1e.d: crates/txn/tests/twopl.rs

/root/repo/target/debug/deps/twopl-374751fabd7d1e1e: crates/txn/tests/twopl.rs

crates/txn/tests/twopl.rs:
