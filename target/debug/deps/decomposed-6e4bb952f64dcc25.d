/root/repo/target/debug/deps/decomposed-6e4bb952f64dcc25.d: crates/txn/tests/decomposed.rs

/root/repo/target/debug/deps/decomposed-6e4bb952f64dcc25: crates/txn/tests/decomposed.rs

crates/txn/tests/decomposed.rs:
