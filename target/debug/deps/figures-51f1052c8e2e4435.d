/root/repo/target/debug/deps/figures-51f1052c8e2e4435.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-51f1052c8e2e4435: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
