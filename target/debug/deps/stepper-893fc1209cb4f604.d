/root/repo/target/debug/deps/stepper-893fc1209cb4f604.d: crates/engine/tests/stepper.rs

/root/repo/target/debug/deps/stepper-893fc1209cb4f604: crates/engine/tests/stepper.rs

crates/engine/tests/stepper.rs:
