/root/repo/target/debug/deps/district_conflict-18f6d47aec086ba6.d: crates/bench/benches/district_conflict.rs

/root/repo/target/debug/deps/district_conflict-18f6d47aec086ba6: crates/bench/benches/district_conflict.rs

crates/bench/benches/district_conflict.rs:
