/root/repo/target/debug/deps/district_conflict-fbff03c538487cfb.d: crates/bench/benches/district_conflict.rs Cargo.toml

/root/repo/target/debug/deps/libdistrict_conflict-fbff03c538487cfb.rmeta: crates/bench/benches/district_conflict.rs Cargo.toml

crates/bench/benches/district_conflict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
