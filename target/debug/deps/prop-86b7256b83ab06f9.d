/root/repo/target/debug/deps/prop-86b7256b83ab06f9.d: crates/lockmgr/tests/prop.rs

/root/repo/target/debug/deps/prop-86b7256b83ab06f9: crates/lockmgr/tests/prop.rs

crates/lockmgr/tests/prop.rs:
