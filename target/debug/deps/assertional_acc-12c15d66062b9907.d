/root/repo/target/debug/deps/assertional_acc-12c15d66062b9907.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libassertional_acc-12c15d66062b9907.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
