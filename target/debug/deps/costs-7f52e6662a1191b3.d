/root/repo/target/debug/deps/costs-7f52e6662a1191b3.d: crates/sim/tests/costs.rs

/root/repo/target/debug/deps/costs-7f52e6662a1191b3: crates/sim/tests/costs.rs

crates/sim/tests/costs.rs:
