//! TPC-C on real threads: the same transaction mix under strict 2PL and
//! under the ACC, with wall-clock response times and a consistency audit.
//!
//! ```text
//! cargo run --release --example tpcc_demo [terminals] [seconds]
//! ```
//!
//! This is the live-engine counterpart of the deterministic figure harness
//! (`cargo run -p acc-bench --release --bin figures`). Expect the same
//! qualitative picture, with wall-clock noise.

use acc_engine::{run_closed_loop, ClosedLoopConfig, RetryPolicy, Workload};
use assertional_acc::prelude::*;
use assertional_acc::tpcc;
use std::sync::Arc;
use std::time::Duration;

struct TpccWorkload {
    gen: tpcc::InputGen,
    districts: i64,
}

impl Workload for TpccWorkload {
    fn next_program(&self, rng: &mut acc_common::rng::SeededRng) -> Box<dyn TxnProgram + Send> {
        tpcc::txns::program_for(self.gen.next_input(rng), self.districts)
    }
}

fn build_shared(seed: u64) -> (Arc<SharedDb>, tpcc::TpccSystem, tpcc::Scale) {
    let sys = tpcc::TpccSystem::build();
    let scale = tpcc::Scale::benchmark();
    let mut db = Database::new(&tpcc::tpcc_catalog());
    tpcc::populate(&mut db, &scale, seed);
    let shared = Arc::new(
        SharedDb::new(db, Arc::clone(&sys.tables) as _).with_wait_cap(Duration::from_secs(30)),
    );
    (shared, sys, scale)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let terminals: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(16);
    let seconds: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(3);

    println!(
        "TPC-C demo: {terminals} terminals, {seconds}s per system, 1 warehouse × 10 districts"
    );
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "system", "commits", "aborts", "retries", "mean (ms)", "p95 (ms)", "tps"
    );

    let mut means = Vec::new();
    for (name, use_acc) in [("strict-2pl", false), ("acc", true)] {
        let (shared, sys, scale) = build_shared(42);
        let cc: Arc<dyn ConcurrencyControl> = if use_acc {
            Arc::clone(&sys.acc) as _
        } else {
            Arc::new(TwoPhase)
        };
        let workload: Arc<dyn Workload> = Arc::new(TpccWorkload {
            gen: tpcc::InputGen::new(tpcc::TpccConfig::standard(scale), 7),
            districts: scale.districts,
        });
        let report = run_closed_loop(
            &shared,
            &cc,
            &workload,
            &ClosedLoopConfig {
                terminals,
                duration: Duration::from_secs(seconds),
                think_time: Duration::from_millis(10),
                seed: 99,
                retry: RetryPolicy::standard(),
            },
        );
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>10.2} {:>10.2} {:>9.0}",
            name,
            report.committed,
            report.aborted,
            report.retries,
            report.latency.mean_ms,
            report.latency.p95_ms,
            report.throughput_tps
        );
        means.push(report.latency.mean_ms);

        // Audit at quiescence: strict conditions for 2PL, the semantic
        // (gap-tolerant) conditions for the ACC.
        let violations = tpcc::consistency::check(&shared.snapshot_db(), !use_acc);
        if violations.is_empty() {
            println!("           consistency: OK");
        } else {
            println!("           consistency VIOLATIONS: {violations:#?}");
            std::process::exit(1);
        }
    }
    if means[1] > 0.0 {
        println!(
            "\nnon-ACC / ACC mean response ratio: {:.2}",
            means[0] / means[1]
        );
    }
}
