//! Crash recovery with compensating steps.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```
//!
//! 1. Run TPC-C transactions under the ACC, capturing the WAL's durable
//!    image as it would sit on disk.
//! 2. "Crash": truncate the image at an arbitrary byte (here: right after a
//!    new-order's second end-of-step record, so the transaction is in
//!    flight with durable steps).
//! 3. Recover into a fresh database: committed work replayed, the
//!    incomplete step discarded, the in-flight transaction reported.
//! 4. Resume compensation from the recovered work area and verify the
//!    consistency conditions.

use assertional_acc::prelude::*;
use assertional_acc::tpcc;
use assertional_acc::tpcc::input::{NewOrderInput, OrderLineInput, PaymentInput};
use std::sync::Arc;

fn fresh_base(scale: &tpcc::Scale, seed: u64) -> Database {
    let mut db = Database::new(&tpcc::tpcc_catalog());
    tpcc::populate(&mut db, scale, seed);
    db
}

fn main() -> Result<()> {
    let scale = tpcc::Scale::test();
    let sys = tpcc::TpccSystem::build();
    let shared = Arc::new(SharedDb::new(
        fresh_base(&scale, 11),
        Arc::clone(&sys.tables) as _,
    ));

    // --- 1. live traffic --------------------------------------------------
    let mut pay = tpcc::txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 1,
        c_d_id: 1,
        customer: tpcc::input::CustomerSelector::ById(2),
        amount: Decimal::from_int(75),
    });
    run(&shared, &*sys.acc, &mut pay, WaitMode::Block)?;
    println!("payment committed");

    let mut no = tpcc::txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 2,
        c_id: 3,
        lines: (0..5)
            .map(|k| OrderLineInput {
                i_id: k + 1,
                supply_w_id: 1,
                qty: 2,
            })
            .collect(),
        rollback: false,
    });

    // Drive the new-order manually so we can crash it mid-flight: run its
    // header step and two line steps, each followed by an end-of-step
    // record, then stop.
    let mut txn = Transaction::new(
        shared.begin_txn(tpcc::decompose::ty::NEW_ORDER),
        tpcc::decompose::ty::NEW_ORDER,
    );
    for _ in 0..3 {
        let mut ctx = StepCtx::new(&shared, &*sys.acc, &mut txn, WaitMode::Block);
        let step_index = ctx.txn().step_index;
        let out = no.step(step_index, &mut ctx)?;
        assert!(matches!(out, StepOutcome::Continue));
        acc_txn::runner::end_step(&shared, &*sys.acc, &mut txn, no.work_area());
    }
    println!(
        "new-order {} in flight: 3 steps durable (header + 2 of 5 lines)",
        txn.id
    );

    // --- 2. crash ----------------------------------------------------------
    let disk_image = shared.wal_bytes();
    // Lose the tail of the log too, for good measure: cut 10 bytes into the
    // last record.
    let cut = disk_image.len() - 10;
    let salvaged = Wal::from_bytes(&disk_image[..cut]);
    println!(
        "crash: salvaged {} of {} log records from a {}-byte image cut at {cut}",
        salvaged.len(),
        shared.wal_len(),
        disk_image.len()
    );

    // --- 3. recovery ---------------------------------------------------------
    let mut recovered_db = fresh_base(&scale, 11);
    let report = recover(&mut recovered_db, &salvaged)?;
    println!(
        "recovery: {} committed, {} redone updates, {} skipped (incomplete steps)",
        report.committed.len(),
        report.redone_updates,
        report.skipped_updates
    );
    for inf in &report.needs_compensation {
        println!(
            "  in flight: {} ({}), {} durable steps — compensation required",
            inf.txn,
            if inf.txn_type == tpcc::decompose::ty::NEW_ORDER {
                "new-order"
            } else {
                "other"
            },
            inf.steps_completed
        );
    }

    // --- 4. resume compensation -------------------------------------------
    let recovered = Arc::new(SharedDb::new(recovered_db, Arc::clone(&sys.tables) as _));
    let n = tpcc::recovery::resume_compensation(&recovered, &*sys.acc, &report.needs_compensation)?;
    println!("compensated {n} in-flight transaction(s)");

    let db = recovered.snapshot_db();
    let violations = tpcc::consistency::check(&db, false);
    assert!(violations.is_empty(), "{violations:#?}");
    // The in-flight order is gone; the committed payment survived.
    assert!(db
        .table(tpcc::schema::TABLES.order)
        .expect("order table")
        .get(&Key::ints(&[1, 2, 5]))
        .is_none());
    let w = db
        .table(tpcc::schema::TABLES.warehouse)
        .expect("warehouse table")
        .get(&Key::ints(&[1]))
        .expect("warehouse 1")
        .1
        .decimal(tpcc::schema::col::w::YTD);
    assert_eq!(w, Decimal::from_int(75));
    println!("post-recovery consistency: OK");
    println!("crash_recovery OK");
    Ok(())
}
