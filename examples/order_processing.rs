//! The paper's §4 order-processing example, narrated.
//!
//! ```text
//! cargo run --example order_processing
//! ```
//!
//! Demonstrates, in order:
//! 1. concurrent `new_order`s interleaving arbitrarily (non-serializable but
//!    semantically correct partial fills);
//! 2. `bill` being delayed exactly while "the corresponding new_order is
//!    executing" — and running freely against other orders;
//! 3. a legacy (unanalyzed, strict-2PL) transaction kept away from
//!    uncommitted state;
//! 4. compensation returning stock after a new_order aborts.

use assertional_acc::prelude::*;
use std::sync::{Arc, Barrier};

const COUNTERS: TableId = TableId(0);
const ORDERS: TableId = TableId(1);
const STOCK: TableId = TableId(2);
const PRICES: TableId = TableId(3);
const LINES: TableId = TableId(4);

const NO_S1: StepTypeId = StepTypeId(1);
const NO_S2: StepTypeId = StepTypeId(2);
const BILL_S: StepTypeId = StepTypeId(3);
const NO_CS: StepTypeId = StepTypeId(4);
const TY_NEW_ORDER: TxnTypeId = TxnTypeId(1);
const TY_BILL: TxnTypeId = TxnTypeId(2);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("counters")
            .column("id", ColumnType::Int)
            .column("value", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("orders")
            .column("order_id", ColumnType::Int)
            .column("customer_id", ColumnType::Int)
            .column("num_items", ColumnType::Int)
            .column("price", ColumnType::Decimal)
            .key(&["order_id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("stock")
            .column("item_id", ColumnType::Int)
            .column("s_level", ColumnType::Int)
            .key(&["item_id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("prices")
            .column("item_id", ColumnType::Int)
            .column("price", ColumnType::Decimal)
            .key(&["item_id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("orderlines")
            .column("order_id", ColumnType::Int)
            .column("line_no", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("ordered", ColumnType::Int)
            .column("filled", ColumnType::Int)
            .key(&["order_id", "line_no"])
            .rows_per_page(1)
            .build(),
    );
    c
}

struct NewOrder {
    cust: i64,
    items: Vec<(i64, i64)>,
    o_num: Option<i64>,
    abort_at_last: bool,
    pause: Option<Arc<Barrier>>,
}

impl NewOrder {
    fn new(cust: i64, items: Vec<(i64, i64)>) -> Self {
        NewOrder {
            cust,
            items,
            o_num: None,
            abort_at_last: false,
            pause: None,
        }
    }
}

impl TxnProgram for NewOrder {
    fn txn_type(&self) -> TxnTypeId {
        TY_NEW_ORDER
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        if i == 0 {
            let counter = ctx
                .read_for_update(COUNTERS, &Key::ints(&[0]))?
                .expect("counter row");
            let o_num = counter.int(1);
            ctx.update_key(COUNTERS, &Key::ints(&[0]), |r| {
                r.set(1, Value::Int(o_num + 1));
            })?;
            self.o_num = Some(o_num);
            ctx.insert(
                ORDERS,
                Row(vec![
                    Value::Int(o_num),
                    Value::Int(self.cust),
                    Value::Int(self.items.len() as i64),
                    Value::Null,
                ]),
            )?;
            return Ok(StepOutcome::Continue);
        }
        let idx = (i - 1) as usize;
        if let Some(b) = &self.pause {
            if idx == 0 {
                b.wait();
                b.wait();
            }
        }
        let last = idx + 1 == self.items.len();
        if last && self.abort_at_last {
            return Ok(StepOutcome::Abort);
        }
        let (item, qty) = self.items[idx];
        let o_num = self.o_num.expect("step 0 ran");
        let stock = ctx
            .read_for_update(STOCK, &Key::ints(&[item]))?
            .expect("stock row");
        let fill = qty.min(stock.int(1));
        ctx.update_key(STOCK, &Key::ints(&[item]), |r| {
            let level = r.int(1);
            r.set(1, Value::Int(level - fill));
        })?;
        ctx.insert(
            LINES,
            Row(vec![
                Value::Int(o_num),
                Value::Int(i as i64),
                Value::Int(item),
                Value::Int(qty),
                Value::Int(fill),
            ]),
        )?;
        Ok(if last {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let o_num = self.o_num.expect("compensating after step 0");
        for line_no in (1..steps_completed as i64).rev() {
            if let Some(line) = ctx.read_for_update(LINES, &Key::ints(&[o_num, line_no]))? {
                let (item, fill) = (line.int(2), line.int(4));
                ctx.update_key(STOCK, &Key::ints(&[item]), |r| {
                    let level = r.int(1);
                    r.set(1, Value::Int(level + fill));
                })?;
                ctx.delete_key(LINES, &Key::ints(&[o_num, line_no]))?;
            }
        }
        ctx.delete_key(ORDERS, &Key::ints(&[o_num]))?;
        Ok(())
    }
}

struct Bill {
    o_num: i64,
    total: Option<Decimal>,
}

impl TxnProgram for Bill {
    fn txn_type(&self) -> TxnTypeId {
        TY_BILL
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let order = ctx
            .read_for_update(ORDERS, &Key::ints(&[self.o_num]))?
            .ok_or_else(|| Error::NotFound(format!("order {}", self.o_num)))?;
        let mut total = Decimal::ZERO;
        for line_no in 1..=order.int(2) {
            let line = ctx.read_existing(LINES, &Key::ints(&[self.o_num, line_no]))?;
            let price = ctx
                .read_existing(PRICES, &Key::ints(&[line.int(2)]))?
                .decimal(1);
            total += price.mul_int(line.int(4));
        }
        ctx.update_key(ORDERS, &Key::ints(&[self.o_num]), |r| {
            r.set(3, Value::from(total));
        })?;
        self.total = Some(total);
        Ok(StepOutcome::Done)
    }
}

fn build_system() -> (Arc<SharedDb>, Arc<Acc>) {
    let mut reg = AssertionRegistry::new();
    let i1 = reg.define(
        "I1: order's line count matches num_items",
        vec![
            TableFootprint::columns(ORDERS, [2]),
            TableFootprint::rows(LINES, []),
        ],
        None,
    );
    let no_loop = reg.define(
        "new-order loop invariant",
        vec![
            TableFootprint::columns(ORDERS, [2]),
            TableFootprint::rows(LINES, []),
        ],
        None,
    );
    let (tables, _) = Analysis::new(&reg)
        .step(StepFootprint::new(
            NO_S1,
            "new-order: counter + header",
            vec![
                TableFootprint::columns(COUNTERS, [1]),
                TableFootprint::rows(ORDERS, [0, 1, 2, 3]),
            ],
        ))
        .step(StepFootprint::new(
            NO_S2,
            "new-order: one line",
            vec![
                TableFootprint::rows(LINES, [0, 1, 2, 3, 4]),
                TableFootprint::columns(STOCK, [1]),
            ],
        ))
        .step(StepFootprint::new(
            BILL_S,
            "bill",
            vec![TableFootprint::columns(ORDERS, [3])],
        ))
        .step(StepFootprint::new(
            NO_CS,
            "new-order compensation",
            vec![
                TableFootprint::rows(ORDERS, []),
                TableFootprint::rows(LINES, []),
                TableFootprint::columns(STOCK, [1]),
            ],
        ))
        .declare_safe(NO_S1, no_loop, "order ids are unique")
        .declare_safe(
            NO_S2,
            no_loop,
            "lines belong to own order; stock decrements commute",
        )
        .declare_safe(NO_CS, no_loop, "compensation removes own rows")
        .declare_safe(
            NO_S1,
            DIRTY,
            "counter increments commute, never compensated",
        )
        .declare_safe(NO_S2, DIRTY, "stock decrements commute; fresh line keys")
        .declare_safe(NO_CS, DIRTY, "restock commutes")
        .build();

    let registry = Arc::new(reg);
    let acc = Arc::new(Acc::new(
        Arc::clone(&registry),
        vec![
            TxnSpec {
                txn_type: TY_NEW_ORDER,
                name: "new-order".into(),
                steps: vec![
                    StepSpec {
                        step_type: NO_S1,
                        active: vec![no_loop],
                    },
                    StepSpec {
                        step_type: NO_S2,
                        active: vec![no_loop],
                    },
                ],
                overflow: Some(1),
                comp_step: Some(NO_CS),
                guard: DIRTY,
                version_safe: false,
            },
            TxnSpec {
                txn_type: TY_BILL,
                name: "bill".into(),
                steps: vec![StepSpec {
                    step_type: BILL_S,
                    active: vec![i1],
                }],
                overflow: None,
                comp_step: None,
                guard: DIRTY,
                version_safe: false,
            },
        ],
    ));

    let cat = catalog();
    let mut db = Database::new(&cat);
    db.table_mut(COUNTERS)
        .expect("counters")
        .insert(Row(vec![Value::Int(0), Value::Int(1)]))
        .expect("fresh counter");
    for i in 0..4i64 {
        db.table_mut(STOCK)
            .expect("stock")
            .insert(Row(vec![Value::Int(i), Value::Int(10)]))
            .expect("fresh stock");
        db.table_mut(PRICES)
            .expect("prices")
            .insert(Row(vec![
                Value::Int(i),
                Value::from(Decimal::from_int(i + 1)),
            ]))
            .expect("fresh price");
    }
    (Arc::new(SharedDb::new(db, Arc::new(tables))), acc)
}

fn main() -> Result<()> {
    let (shared, acc) = build_system();

    println!("— 1. concurrent new_orders interleave (stock example of §3.1) —");
    let mut handles = Vec::new();
    for cust in 0..2i64 {
        let shared = Arc::clone(&shared);
        let acc = Arc::clone(&acc);
        handles.push(std::thread::spawn(move || {
            let mut p = NewOrder::new(cust, vec![(0, 7), (1, 7)]);
            run(&shared, &*acc, &mut p, WaitMode::Block).expect("no hard errors")
        }));
    }
    for h in handles {
        println!("  {:?}", h.join().expect("no panic"));
    }
    shared
        .with_table(LINES, |t| {
            for (_, line) in t.iter() {
                println!(
                    "  order {} line {}: item {} ordered {} filled {}",
                    line.int(0),
                    line.int(1),
                    line.int(2),
                    line.int(3),
                    line.int(4)
                );
            }
        })
        .expect("lines");
    println!(
        "  (interleaved fills: depending on timing this can produce allocations\n   no serial schedule could — e.g. both orders getting part of the cheap stock)"
    );

    println!("— 2. bill waits for the in-flight order only —");
    let barrier = Arc::new(Barrier::new(2));
    let (s2, a2, b2) = (Arc::clone(&shared), Arc::clone(&acc), Arc::clone(&barrier));
    let h = std::thread::spawn(move || {
        let mut p = NewOrder::new(9, vec![(2, 1), (3, 1)]);
        p.pause = Some(b2);
        run(&s2, &*a2, &mut p, WaitMode::Block).expect("no hard errors")
    });
    barrier.wait(); // order 3's header is in, uncommitted
    let err = run(
        &shared,
        &*acc,
        &mut Bill {
            o_num: 3,
            total: None,
        },
        WaitMode::Fail,
    )
    .expect_err("billing the in-flight order must block");
    println!("  bill(order 3, in flight): {err}");
    let mut bill1 = Bill {
        o_num: 1,
        total: None,
    };
    run(&shared, &*acc, &mut bill1, WaitMode::Fail)?;
    println!(
        "  bill(order 1, committed): total {}",
        bill1.total.expect("billed")
    );
    barrier.wait();
    h.join().expect("no panic");
    let mut bill3 = Bill {
        o_num: 3,
        total: None,
    };
    run(&shared, &*acc, &mut bill3, WaitMode::Block)?;
    println!(
        "  bill(order 3, after commit): total {}",
        bill3.total.expect("billed")
    );

    println!("— 3. legacy 2PL transactions never see uncommitted state —");
    let barrier = Arc::new(Barrier::new(2));
    let (s3, a3, b3) = (Arc::clone(&shared), Arc::clone(&acc), Arc::clone(&barrier));
    let h = std::thread::spawn(move || {
        let mut p = NewOrder::new(5, vec![(0, 1), (1, 1)]);
        p.pause = Some(b3);
        run(&s3, &*a3, &mut p, WaitMode::Block).expect("no hard errors")
    });
    barrier.wait();
    struct LegacyRead;
    impl TxnProgram for LegacyRead {
        fn txn_type(&self) -> TxnTypeId {
            TxnTypeId(99)
        }
        fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
            ctx.read(ORDERS, &Key::ints(&[4]))?;
            Ok(StepOutcome::Done)
        }
    }
    let err = run(&shared, &TwoPhase, &mut LegacyRead, WaitMode::Fail)
        .expect_err("legacy read of dirty row must block");
    println!("  legacy read of uncommitted order: {err}");
    barrier.wait();
    h.join().expect("no panic");

    println!("— 4. compensation returns stock after an abort —");
    let stock_before: i64 = shared
        .with_table(STOCK, |t| t.iter().map(|(_, r)| r.int(1)).sum())
        .expect("stock");
    let mut aborting = NewOrder::new(7, vec![(0, 1), (1, 1), (2, 1)]);
    aborting.abort_at_last = true;
    let out = run(&shared, &*acc, &mut aborting, WaitMode::Block)?;
    let stock_after: i64 = shared
        .with_table(STOCK, |t| t.iter().map(|(_, r)| r.int(1)).sum())
        .expect("stock");
    println!("  {out:?}; stock {stock_before} → {stock_after} (restored)");
    assert_eq!(stock_before, stock_after);

    println!("order_processing OK");
    Ok(())
}
