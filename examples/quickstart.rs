//! Quickstart: decompose a transaction into steps, analyze interference,
//! and watch the ACC let steps interleave where 2PL would serialize.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The scenario is a tiny funds-ledger: `transfer` moves money in two steps
//! (debit, then credit) with the interstep assertion "the debited amount is
//! in flight"; `audit` sums all balances and requires the ledger invariant.

use assertional_acc::prelude::*;
use std::sync::Arc;

const ACCOUNTS: TableId = TableId(0);
const TY_TRANSFER: TxnTypeId = TxnTypeId(1);
const TY_AUDIT: TxnTypeId = TxnTypeId(2);
const S_DEBIT: StepTypeId = StepTypeId(1);
const S_CREDIT: StepTypeId = StepTypeId(2);
const S_AUDIT: StepTypeId = StepTypeId(3);
const CS_TRANSFER: StepTypeId = StepTypeId(9);

struct Transfer {
    from: i64,
    to: i64,
    amount: Decimal,
}

impl TxnProgram for Transfer {
    fn txn_type(&self) -> TxnTypeId {
        TY_TRANSFER
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let amount = self.amount;
        if i == 0 {
            ctx.update_key(ACCOUNTS, &Key::ints(&[self.from]), |r| {
                let b = r.decimal(1);
                r.set(1, Value::from(b - amount));
            })?;
            Ok(StepOutcome::Continue) // ← locks on `from` drop HERE under the ACC
        } else {
            ctx.update_key(ACCOUNTS, &Key::ints(&[self.to]), |r| {
                let b = r.decimal(1);
                r.set(1, Value::from(b + amount));
            })?;
            Ok(StepOutcome::Done)
        }
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let amount = self.amount;
        if steps_completed >= 1 {
            ctx.update_key(ACCOUNTS, &Key::ints(&[self.from]), |r| {
                let b = r.decimal(1);
                r.set(1, Value::from(b + amount));
            })?;
        }
        Ok(())
    }
}

struct Audit {
    total: Option<Decimal>,
}

impl TxnProgram for Audit {
    fn txn_type(&self) -> TxnTypeId {
        TY_AUDIT
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let rows = ctx.scan(ACCOUNTS, &Predicate::True)?;
        self.total = Some(rows.iter().map(|(_, r)| r.decimal(1)).sum());
        Ok(StepOutcome::Done)
    }
}

fn main() -> Result<()> {
    // ---- design time: templates, footprints, analysis -------------------
    let mut registry = AssertionRegistry::new();
    // transfer's interstep assertion: "my debited amount is in flight"; it
    // references balances, so the audit (which requires the full invariant)
    // is the transaction that must be kept away.
    let in_flight = registry.define(
        "transfer-in-flight",
        vec![TableFootprint::columns(ACCOUNTS, [1])],
        None,
    );

    let (tables, decisions) = Analysis::new(&registry)
        .step(StepFootprint::new(
            S_DEBIT,
            "transfer: debit",
            vec![TableFootprint::columns(ACCOUNTS, [1])],
        ))
        .step(StepFootprint::new(
            S_CREDIT,
            "transfer: credit",
            vec![TableFootprint::columns(ACCOUNTS, [1])],
        ))
        .step(StepFootprint::new(S_AUDIT, "audit (read-only)", vec![]))
        .step(StepFootprint::new(
            CS_TRANSFER,
            "transfer compensation",
            vec![TableFootprint::columns(ACCOUNTS, [1])],
        ))
        // Concurrent transfers don't invalidate each other's in-flight
        // assertion: balance changes commute with "my debit happened".
        .declare_safe(S_DEBIT, in_flight, "balance deltas commute")
        .declare_safe(S_CREDIT, in_flight, "balance deltas commute")
        .declare_safe(
            CS_TRANSFER,
            in_flight,
            "compensation restores its own debit",
        )
        .declare_safe(
            S_DEBIT,
            DIRTY,
            "deltas commute; compensation restores by addition",
        )
        .declare_safe(S_CREDIT, DIRTY, "deltas commute")
        .declare_safe(CS_TRANSFER, DIRTY, "restores its own debit only")
        // The audit reports totals: it must only see committed money.
        .require_committed_reads(S_AUDIT)
        .build();

    println!(
        "design-time analysis made {} decisions, e.g.:",
        decisions.len()
    );
    for d in decisions.iter().take(3) {
        println!(
            "  step {:>2} vs template {}: {} ({})",
            d.step.raw(),
            d.template.raw(),
            if d.interferes { "INTERFERES" } else { "safe" },
            d.why
        );
    }

    let registry = Arc::new(registry);
    let acc = Acc::new(
        Arc::clone(&registry),
        vec![
            TxnSpec {
                txn_type: TY_TRANSFER,
                name: "transfer".into(),
                steps: vec![
                    StepSpec {
                        step_type: S_DEBIT,
                        active: vec![in_flight],
                    },
                    StepSpec {
                        step_type: S_CREDIT,
                        active: vec![in_flight],
                    },
                ],
                overflow: None,
                comp_step: Some(CS_TRANSFER),
                guard: DIRTY,
                version_safe: false,
            },
            TxnSpec {
                txn_type: TY_AUDIT,
                name: "audit".into(),
                steps: vec![StepSpec {
                    step_type: S_AUDIT,
                    active: vec![],
                }],
                overflow: None,
                comp_step: None,
                guard: DIRTY,
                // Read-only: eligible for coordination-free version reads.
                version_safe: true,
            },
        ],
    );

    // ---- run time --------------------------------------------------------
    let mut catalog = Catalog::new();
    catalog.add_table(
        TableSchema::builder("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Decimal)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    let mut db = Database::new(&catalog);
    for i in 0..4 {
        db.table_mut(ACCOUNTS)?
            .insert(Row(vec![
                Value::Int(i),
                Value::from(Decimal::from_int(100)),
            ]))
            .expect("fresh row");
    }
    let shared = SharedDb::new(db, Arc::new(tables));

    // Run a couple of transfers and an audit under the ACC.
    for (from, to) in [(0, 1), (2, 3), (1, 2)] {
        let mut t = Transfer {
            from,
            to,
            amount: Decimal::from_int(10),
        };
        let out = run(&shared, &acc, &mut t, WaitMode::Block)?;
        println!("transfer {from}→{to}: {out:?}");
    }
    let mut audit = Audit { total: None };
    run(&shared, &acc, &mut audit, WaitMode::Block)?;
    println!(
        "audit total: {} (started with 400.0000)",
        audit.total.expect("audit ran")
    );
    assert_eq!(audit.total, Some(Decimal::from_int(400)));

    // The same programs run unchanged under plain 2PL.
    let mut t = Transfer {
        from: 3,
        to: 0,
        amount: Decimal::from_int(5),
    };
    let out = run(&shared, &TwoPhase, &mut t, WaitMode::Block)?;
    println!("same program under strict 2PL: {out:?}");

    println!("quickstart OK");
    Ok(())
}
