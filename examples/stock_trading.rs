//! The paper's §3.1 motivating example: a stock-trading database where two
//! concurrent `buy` transactions can *both* purchase part of their shares at
//! $30 and part at $31 — a final state no serializable schedule can produce
//! (one of them would have gotten everything at $30) — while each still
//! satisfies its postcondition: *"when each share was bought, no cheaper
//! unbought shares existed in the database."*
//!
//! ```text
//! cargo run --example stock_trading
//! ```

use assertional_acc::prelude::*;
use std::sync::{Arc, Barrier};

const OFFERS: TableId = TableId(0); // sell orders: (price, offer_id) -> shares
const LEDGER: TableId = TableId(1); // purchases: (buyer, seq) -> price, shares

const TY_BUY: TxnTypeId = TxnTypeId(1);
const S_BUY: StepTypeId = StepTypeId(1);
const CS_BUY: StepTypeId = StepTypeId(2);

/// Buy `want` shares, cheapest offers first, one lot per step.
struct Buy {
    buyer: i64,
    want: i64,
    bought: Vec<(Decimal, i64)>, // (price, shares) per completed step
    /// Rendezvous fired between lots so the demo forces the interleaving.
    pause: Option<Arc<Barrier>>,
}

impl Buy {
    fn new(buyer: i64, want: i64) -> Self {
        Buy {
            buyer,
            want,
            bought: Vec::new(),
            pause: None,
        }
    }

    fn still_needed(&self) -> i64 {
        self.want - self.bought.iter().map(|(_, n)| n).sum::<i64>()
    }
}

impl TxnProgram for Buy {
    fn txn_type(&self) -> TxnTypeId {
        TY_BUY
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        self.bought.truncate(i as usize); // idempotent re-execution
        if let (Some(b), true) = (&self.pause, i == 1) {
            b.wait();
            b.wait();
        }
        // Find the cheapest offer with shares left. Offers are keyed
        // (price, offer_id), so the first live row is the cheapest.
        let offers = ctx.scan_prefix(OFFERS, &Key(vec![]))?;
        let Some((_, offer)) = offers.first() else {
            return Ok(StepOutcome::Abort); // market ran dry: undo everything
        };
        let (price_units, offer_id, available) = (offer.int(0), offer.int(1), offer.int(2));
        let take = available.min(self.still_needed());

        if take == available {
            ctx.delete_key(OFFERS, &Key::ints(&[price_units, offer_id]))?;
        } else {
            ctx.update_key(OFFERS, &Key::ints(&[price_units, offer_id]), |r| {
                r.set(2, Value::Int(available - take));
            })?;
        }
        ctx.insert(
            LEDGER,
            Row(vec![
                Value::Int(self.buyer),
                Value::Int(i as i64),
                Value::Int(price_units),
                Value::Int(take),
            ]),
        )?;
        self.bought.push((Decimal::from_int(price_units), take));

        Ok(if self.still_needed() == 0 {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        // Put the shares back on the market and clear the ledger entries.
        for seq in (0..steps_completed as i64).rev() {
            let Some(entry) = ctx.read_for_update(LEDGER, &Key::ints(&[self.buyer, seq]))? else {
                continue;
            };
            let (price, shares) = (entry.int(2), entry.int(3));
            // Re-list under a fresh offer id derived from the ledger entry.
            ctx.insert(
                OFFERS,
                Row(vec![
                    Value::Int(price),
                    Value::Int(1000 + self.buyer * 100 + seq),
                    Value::Int(shares),
                ]),
            )?;
            ctx.delete_key(LEDGER, &Key::ints(&[self.buyer, seq]))?;
        }
        Ok(())
    }
}

fn main() -> Result<()> {
    let mut catalog = Catalog::new();
    catalog.add_table(
        TableSchema::builder("offers")
            .column("price", ColumnType::Int)
            .column("offer_id", ColumnType::Int)
            .column("shares", ColumnType::Int)
            .key(&["price", "offer_id"])
            .rows_per_page(1)
            .build(),
    );
    catalog.add_table(
        TableSchema::builder("ledger")
            .column("buyer", ColumnType::Int)
            .column("seq", ColumnType::Int)
            .column("price", ColumnType::Int)
            .column("shares", ColumnType::Int)
            .key(&["buyer", "seq"])
            .rows_per_page(1)
            .build(),
    );

    // Design time: each buy step's interstep assertion is its postcondition-
    // in-progress — "every lot I bought was cheapest at purchase time".
    // Another buy taking shares cannot falsify that (prices only rise as the
    // book drains), so buys interleave arbitrarily.
    let mut reg = AssertionRegistry::new();
    let cheapest = reg.define(
        "bought-lots-were-cheapest-at-purchase-time",
        vec![TableFootprint::rows(LEDGER, [])],
        None,
    );
    let (tables, _) = Analysis::new(&reg)
        .step(StepFootprint::new(
            S_BUY,
            "buy one lot",
            vec![
                TableFootprint::rows(OFFERS, [0, 1, 2]),
                TableFootprint::rows(LEDGER, [0, 1, 2, 3]),
            ],
        ))
        .step(StepFootprint::new(
            CS_BUY,
            "buy compensation (re-list shares)",
            vec![
                TableFootprint::rows(OFFERS, [0, 1, 2]),
                TableFootprint::rows(LEDGER, []),
            ],
        ))
        .declare_safe(S_BUY, cheapest, "taking offers can only raise the cheapest price; past purchases stay cheapest-at-their-time")
        .declare_safe(CS_BUY, cheapest, "re-listing shares cannot un-cheapen a past purchase")
        .declare_safe(S_BUY, DIRTY, "each lot consumes distinct offer rows; ledger keys are per-buyer")
        .declare_safe(CS_BUY, DIRTY, "re-lists under fresh offer ids; deletes own ledger rows")
        .build();

    let registry = Arc::new(reg);
    let acc = Arc::new(Acc::new(
        Arc::clone(&registry),
        vec![TxnSpec {
            txn_type: TY_BUY,
            name: "buy".into(),
            steps: vec![StepSpec {
                step_type: S_BUY,
                active: vec![cheapest],
            }],
            overflow: Some(0),
            comp_step: Some(CS_BUY),
            guard: DIRTY,
            version_safe: false,
        }],
    ));

    let mut db = Database::new(&catalog);
    // The book: n = 8 shares at $30, plenty at $31.
    db.table_mut(OFFERS)?
        .insert(Row(vec![Value::Int(30), Value::Int(1), Value::Int(4)]))
        .expect("offer");
    db.table_mut(OFFERS)?
        .insert(Row(vec![Value::Int(30), Value::Int(2), Value::Int(4)]))
        .expect("offer");
    db.table_mut(OFFERS)?
        .insert(Row(vec![Value::Int(31), Value::Int(3), Value::Int(100)]))
        .expect("offer");
    let shared = Arc::new(SharedDb::new(db, Arc::new(tables)));

    println!("order book: 8 shares @ $30 (two lots of 4), 100 @ $31");
    println!("T1 and T2 each buy 8 shares, steps interleaved T1,T2,T1,T2…\n");

    // Force the §3.1 interleaving with a pair of barriers: each buyer takes
    // one $30 lot, pauses, then continues — so both finish at $31.
    let b1 = Arc::new(Barrier::new(2));
    let mut handles = Vec::new();
    for buyer in [1i64, 2] {
        let shared = Arc::clone(&shared);
        let acc = Arc::clone(&acc);
        let b = Arc::clone(&b1);
        handles.push(std::thread::spawn(move || {
            let mut buy = Buy::new(buyer, 8);
            buy.pause = Some(b);
            let out = run(&shared, &*acc, &mut buy, WaitMode::Block).expect("buy");
            (buyer, out, buy.bought)
        }));
    }
    for h in handles {
        let (buyer, out, bought) = h.join().expect("buyer thread");
        println!("T{buyer}: {out:?}");
        for (price, shares) in bought {
            println!("    bought {shares} @ ${price}");
        }
    }

    let db = shared.snapshot_db();
    {
        let by_price: Vec<(i64, i64, i64)> = db
            .table(LEDGER)
            .expect("ledger")
            .iter()
            .map(|(_, r)| (r.int(0), r.int(2), r.int(3)))
            .collect();
        let t1_30: i64 = by_price
            .iter()
            .filter(|(b, p, _)| *b == 1 && *p == 30)
            .map(|(_, _, n)| n)
            .sum();
        let t2_30: i64 = by_price
            .iter()
            .filter(|(b, p, _)| *b == 2 && *p == 30)
            .map(|(_, _, n)| n)
            .sum();
        println!("\nledger: T1 got {t1_30} shares @ $30, T2 got {t2_30} @ $30");
        if t1_30 > 0 && t2_30 > 0 {
            println!(
                "→ BOTH buyers got some $30 shares: impossible under any serial\n  schedule (one buyer would have taken all 8), yet each transaction's\n  postcondition holds — the §3.1 semantically-correct outcome."
            );
        } else {
            println!("→ this run happened to serialize; rerun for the interleaved outcome");
        }
        // Conservation: 8 + 8 bought, book shrank accordingly.
        let remaining: i64 = db
            .table(OFFERS)
            .expect("offers")
            .iter()
            .map(|(_, r)| r.int(2))
            .sum();
        assert_eq!(remaining, 108 - 16);
    }
    println!("stock_trading OK");
    Ok(())
}
