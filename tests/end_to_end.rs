//! Cross-crate integration tests: the full stack from workload to WAL.

use assertional_acc::prelude::*;
use assertional_acc::tpcc::{
    self,
    input::{CustomerSelector, NewOrderInput, OrderLineInput, PaymentInput},
};
use std::sync::Arc;

fn fresh_base(scale: &tpcc::Scale, seed: u64) -> Database {
    let mut db = Database::new(&tpcc::tpcc_catalog());
    tpcc::populate(&mut db, scale, seed);
    db
}

/// Build a short ACC history with committed, aborted and in-flight work,
/// and return its durable WAL image.
fn scripted_history(scale: &tpcc::Scale, sys: &tpcc::TpccSystem) -> Vec<u8> {
    let shared = Arc::new(SharedDb::new(
        fresh_base(scale, 5),
        Arc::clone(&sys.tables) as _,
    ));

    // Committed payment.
    let mut pay = tpcc::txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 1,
        c_d_id: 1,
        customer: CustomerSelector::ById(1),
        amount: Decimal::from_int(20),
    });
    run(&shared, &*sys.acc, &mut pay, WaitMode::Block).expect("payment");

    // Committed new-order.
    let mut no = tpcc::txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 1,
        c_id: 2,
        lines: vec![
            OrderLineInput {
                i_id: 1,
                supply_w_id: 1,
                qty: 3,
            },
            OrderLineInput {
                i_id: 2,
                supply_w_id: 1,
                qty: 4,
            },
        ],
        rollback: false,
    });
    run(&shared, &*sys.acc, &mut no, WaitMode::Block).expect("new-order");

    // Aborted (compensated) new-order.
    let mut aborted = tpcc::txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 2,
        c_id: 3,
        lines: vec![
            OrderLineInput {
                i_id: 3,
                supply_w_id: 1,
                qty: 1,
            },
            OrderLineInput {
                i_id: 4,
                supply_w_id: 1,
                qty: 1,
            },
        ],
        rollback: true,
    });
    run(&shared, &*sys.acc, &mut aborted, WaitMode::Block).expect("aborted new-order");

    // In-flight new-order: header + two line steps durable, third line step
    // half done (one update, no end-of-step).
    let mut inflight = tpcc::txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 3,
        c_id: 4,
        lines: (0..5)
            .map(|k| OrderLineInput {
                i_id: 10 + k,
                supply_w_id: 1,
                qty: 2,
            })
            .collect(),
        rollback: false,
    });
    let mut txn = Transaction::new(
        shared.begin_txn(tpcc::decompose::ty::NEW_ORDER),
        tpcc::decompose::ty::NEW_ORDER,
    );
    for _ in 0..3 {
        let mut ctx = StepCtx::new(&shared, &*sys.acc, &mut txn, WaitMode::Block);
        let i = ctx.txn().step_index;
        inflight.step(i, &mut ctx).expect("forward step");
        acc_txn::runner::end_step(&shared, &*sys.acc, &mut txn, inflight.work_area());
    }
    // One more step executed but never ended: its updates are on the log
    // without an end-of-step record — the "incomplete current step" that
    // recovery must discard.
    {
        let mut ctx = StepCtx::new(&shared, &*sys.acc, &mut txn, WaitMode::Block);
        let i = ctx.txn().step_index;
        inflight.step(i, &mut ctx).expect("half-done step");
    }

    shared.wal_bytes()
}

#[test]
fn recovery_is_sound_at_every_crash_point() {
    let scale = tpcc::Scale::test();
    let sys = tpcc::TpccSystem::build();
    let image = scripted_history(&scale, &sys);

    // Sample every 7th byte plus the exact end; each prefix is a possible
    // crash. Recovery + resumed compensation must always restore semantic
    // consistency.
    let cuts: Vec<usize> = (0..=image.len()).step_by(7).chain([image.len()]).collect();
    for cut in cuts {
        let salvaged = Wal::from_bytes(&image[..cut]);
        let mut db = fresh_base(&scale, 5);
        let report = recover(&mut db, &salvaged)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));

        let shared = SharedDb::new(db, Arc::clone(&sys.tables) as _);
        let n = tpcc::recovery::resume_compensation(&shared, &*sys.acc, &report.needs_compensation)
            .unwrap_or_else(|e| panic!("compensation failed at cut {cut}: {e}"));
        assert_eq!(n, report.needs_compensation.len());

        let violations = tpcc::consistency::check(&shared.snapshot_db(), false);
        assert!(
            violations.is_empty(),
            "cut {cut}: {} records salvaged, violations {violations:#?}",
            salvaged.len()
        );
    }
}

#[test]
fn full_image_recovery_matches_live_state_for_committed_work() {
    let scale = tpcc::Scale::test();
    let sys = tpcc::TpccSystem::build();
    let image = scripted_history(&scale, &sys);
    let salvaged = Wal::from_bytes(&image);
    let mut db = fresh_base(&scale, 5);
    let report = recover(&mut db, &salvaged).expect("recovery");
    assert_eq!(report.committed.len(), 2, "payment + new-order");
    assert_eq!(report.aborted.len(), 1, "compensated new-order");
    assert_eq!(report.needs_compensation.len(), 1, "in-flight new-order");
    assert!(report.skipped_updates > 0, "half-done step discarded");

    // District 1 committed new-order is present with both lines.
    let t = db.table(tpcc::schema::TABLES.order_line).expect("lines");
    assert_eq!(t.scan_prefix(&Key::ints(&[1, 1, 5])).count(), 2);
}

#[test]
fn mixed_legacy_and_acc_traffic_stays_consistent() {
    use acc_common::rng::SeededRng;
    let scale = tpcc::Scale::test();
    let sys = tpcc::TpccSystem::build();
    let shared = Arc::new(SharedDb::new(
        fresh_base(&scale, 9),
        Arc::clone(&sys.tables) as _,
    ));
    let gen = Arc::new(tpcc::InputGen::new(tpcc::TpccConfig::standard(scale), 3));

    let mut handles = Vec::new();
    // Two ACC workers and one legacy (2PL) worker share the system.
    for worker in 0..3u64 {
        let shared = Arc::clone(&shared);
        let gen = Arc::clone(&gen);
        let acc: Arc<dyn ConcurrencyControl> = Arc::clone(&sys.acc) as _;
        handles.push(std::thread::spawn(move || {
            let legacy = worker == 2;
            let cc: Arc<dyn ConcurrencyControl> = if legacy { Arc::new(TwoPhase) } else { acc };
            let mut rng = SeededRng::new(worker + 70);
            for _ in 0..15 {
                let mut program = tpcc::txns::program_for(gen.next_input(&mut rng), 3);
                for _ in 0..30 {
                    match run(&shared, &*cc, program.as_mut(), WaitMode::Block)
                        .expect("no hard errors")
                    {
                        RunOutcome::RolledBack(AbortReason::Deadlock)
                        | RunOutcome::RolledBack(AbortReason::Doomed) => continue,
                        _ => break,
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    let violations = tpcc::consistency::check(&shared.snapshot_db(), false);
    assert!(violations.is_empty(), "{violations:#?}");
    assert_eq!(shared.total_grants(), 0);
}

#[test]
fn facade_prelude_compiles_and_runs() {
    // Minimal end-to-end through the re-exports only.
    let mut catalog = Catalog::new();
    let t = catalog.add_table(
        TableSchema::builder("kv")
            .column("k", ColumnType::Int)
            .column("v", ColumnType::Str)
            .key(&["k"])
            .build(),
    );
    let db = Database::new(&catalog);
    let shared = SharedDb::new(db, Arc::new(NoInterference));

    struct Put;
    impl TxnProgram for Put {
        fn txn_type(&self) -> TxnTypeId {
            TxnTypeId(0)
        }
        fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
            ctx.insert(TableId(0), Row(vec![Value::Int(1), Value::str("hello")]))?;
            Ok(StepOutcome::Done)
        }
    }
    let out = run(&shared, &TwoPhase, &mut Put, WaitMode::Block).expect("put");
    assert!(matches!(out, RunOutcome::Committed { .. }));
    assert_eq!(shared.with_table(t, |t| t.len()).expect("kv"), 1);
}
