//! Behavioural properties checked against the observability event stream
//! (DESIGN.md §5, paper §3.4 and §5.1) rather than inferred from end state.

use assertional_acc::common::events::{Event, EventLog, EventSink};
use assertional_acc::prelude::*;
use assertional_acc::tpcc::{
    self,
    decompose::step,
    input::{CustomerSelector, NewOrderInput, OrderLineInput, OrderStatusInput, PaymentInput},
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fresh_shared(sys: &tpcc::TpccSystem, seed: u64) -> Arc<SharedDb> {
    let scale = tpcc::Scale::test();
    let mut db = Database::new(&tpcc::tpcc_catalog());
    tpcc::populate(&mut db, &scale, seed);
    Arc::new(SharedDb::new(db, Arc::clone(&sys.tables) as _))
}

/// Paper §3.4 as a property over random contended histories: compensating
/// steps never wait on assertional locks, are never chosen as deadlock
/// victims, and no write is ever granted against an interfering pinned
/// assertion — all checked from the captured event stream.
#[test]
fn compensation_properties_hold_under_contention() {
    let sys = tpcc::TpccSystem::build();
    for seed in [11u64, 23, 37] {
        let shared = fresh_shared(&sys, seed);
        let sink = EventSink::enabled(1 << 16);
        shared.set_event_sink(Arc::clone(&sink));
        let gen = Arc::new(tpcc::InputGen::new(
            tpcc::TpccConfig::standard(tpcc::Scale::test()),
            seed,
        ));

        let mut handles = Vec::new();
        for worker in 0..4u64 {
            let shared = Arc::clone(&shared);
            let gen = Arc::clone(&gen);
            let acc: Arc<dyn ConcurrencyControl> = Arc::clone(&sys.acc) as _;
            handles.push(std::thread::spawn(move || {
                let mut rng = acc_common::rng::SeededRng::new(seed ^ ((worker + 1) * 0x9e37));
                for j in 0..24 {
                    // Every third transaction is a new-order that aborts
                    // after its last line, forcing a full compensation pass
                    // under live contention.
                    let mut program: Box<dyn TxnProgram + Send> = if j % 3 == 0 {
                        let mut input = gen.new_order(&mut rng);
                        input.rollback = true;
                        Box::new(tpcc::txns::NewOrder::new(input))
                    } else {
                        tpcc::txns::program_for(gen.next_input(&mut rng), 3)
                    };
                    for _ in 0..30 {
                        match run(&shared, &*acc, program.as_mut(), WaitMode::Block)
                            .expect("no hard errors")
                        {
                            RunOutcome::RolledBack(AbortReason::Deadlock)
                            | RunOutcome::RolledBack(AbortReason::Doomed) => continue,
                            _ => break,
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }

        let c = sink.counters();
        assert!(
            c.compensations > 0,
            "seed {seed}: the workload never compensated — property not exercised"
        );
        let log = EventLog::capture(&sink);
        log.assert_compensation_never_waits_on_assertions();
        log.assert_compensation_never_victimized();
        log.assert_writes_respect_assertions(|s, t| sys.tables.write_interferes(s, t));

        let violations = tpcc::consistency::check(&shared.snapshot_db(), false);
        assert!(violations.is_empty(), "seed {seed}: {violations:#?}");
    }
}

/// Paper §5.1: the new-order/payment district-row conflict. Under the ACC the
/// two interleave — payment's district write is granted *through* new-order's
/// pinned uncommitted-data guard because the interference table declares ytd
/// additions safe. A committed reader (order-status) now proceeds too: its
/// reads are served coordination-free from the row version chains at its
/// begin-LSN view, so it sees exactly the committed pre-new-order state
/// without ever touching the lock manager. Withdrawing the `version_safe`
/// declaration restores §5.1's original counter-example: the same reader
/// takes a real interference hit on the DIRTY pin and blocks until commit.
#[test]
fn district_conflict_interleaves_under_acc() {
    let sys = tpcc::TpccSystem::build();
    let shared = fresh_shared(&sys, 5);
    let sink = EventSink::enabled(4096);
    shared.set_event_sink(Arc::clone(&sink));

    // The committed answer before any of this starts: the customer's last
    // order as populated.
    let mut baseline = tpcc::txns::OrderStatus::new(OrderStatusInput {
        w_id: 1,
        d_id: 1,
        customer: CustomerSelector::ById(2),
    });
    run(&shared, &*sys.acc, &mut baseline, WaitMode::Block).expect("baseline order-status");
    let committed_last = baseline.last_order;

    // Start a new-order and stop it after its header step: the district row
    // (d_next_o_id) and the new order header are written and DIRTY-pinned,
    // conventional locks released at the step boundary.
    let mut no = tpcc::txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 1,
        c_id: 2,
        lines: vec![
            OrderLineInput {
                i_id: 1,
                supply_w_id: 1,
                qty: 3,
            },
            OrderLineInput {
                i_id: 2,
                supply_w_id: 1,
                qty: 1,
            },
        ],
        rollback: false,
    });
    let mut txn = Transaction::new(
        shared.begin_txn(tpcc::decompose::ty::NEW_ORDER),
        tpcc::decompose::ty::NEW_ORDER,
    );
    {
        let mut ctx = StepCtx::new(&shared, &*sys.acc, &mut txn, WaitMode::Block);
        no.step(0, &mut ctx).expect("new-order header step");
    }
    acc_txn::runner::end_step(&shared, &*sys.acc, &mut txn, no.work_area());

    // Payment on the *same district row*, in fail-fast mode: committing
    // without ever waiting proves the interleave.
    let mut pay = tpcc::txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 1,
        c_d_id: 1,
        customer: CustomerSelector::ById(1),
        amount: Decimal::from_int(7),
    });
    let out = run(&shared, &*sys.acc, &mut pay, WaitMode::Fail)
        .expect("payment must not block on the pinned district row");
    assert!(matches!(out, RunOutcome::Committed { .. }));
    let mid = sink.counters();
    assert!(mid.assertion_pins > 0, "new-order pinned no assertions");
    assert_eq!(
        mid.interference_hits, 0,
        "payment vs new-order is declared safe — no hit expected"
    );

    // A committed reader of the same order data no longer needs the lock
    // manager at all: its reads come from the version chains at its begin
    // view. Fail-fast mode proves it never waited, and it must see the
    // committed pre-new-order state, not the pinned uncommitted header.
    let fast_before = sink.counters();
    let mut fast_ost = tpcc::txns::OrderStatus::new(OrderStatusInput {
        w_id: 1,
        d_id: 1,
        customer: CustomerSelector::ById(2),
    });
    let out = run(&shared, &*sys.acc, &mut fast_ost, WaitMode::Fail)
        .expect("version-read order-status must not block on the pinned district");
    assert!(matches!(out, RunOutcome::Committed { .. }));
    let fast_after = sink.counters();
    assert!(
        fast_after.version_reads > fast_before.version_reads,
        "order-status never took the version-read fast path"
    );
    assert_eq!(
        fast_after.version_fallbacks, fast_before.version_fallbacks,
        "a read fell back to the lock manager"
    );
    assert_eq!(
        fast_after.lock_waits, fast_before.lock_waits,
        "the fast path must not wait"
    );
    assert_eq!(
        fast_after.lock_requests, fast_before.lock_requests,
        "the fast path performed lock-manager acquisitions"
    );
    assert_eq!(
        fast_ost.last_order, committed_last,
        "order-status saw uncommitted new-order data"
    );

    // The same program under the same policy minus the `version_safe`
    // declarations is §5.1's original counter-example: the committed reader
    // takes a real interference-table hit on the DIRTY pin and must wait for
    // new-order to finish.
    let no_mvcc: Arc<dyn ConcurrencyControl> = Arc::new(sys.acc.without_version_reads());
    let ost_done = Arc::new(AtomicBool::new(false));
    let ost_handle = {
        let shared = Arc::clone(&shared);
        let acc = Arc::clone(&no_mvcc);
        let done = Arc::clone(&ost_done);
        std::thread::spawn(move || {
            let mut ost = tpcc::txns::OrderStatus::new(OrderStatusInput {
                w_id: 1,
                d_id: 1,
                customer: CustomerSelector::ById(2),
            });
            let out = run(&shared, &*acc, &mut ost, WaitMode::Block).expect("order-status");
            done.store(true, Ordering::SeqCst);
            (out, ost.last_order)
        })
    };
    std::thread::sleep(Duration::from_millis(60));
    assert!(
        !ost_done.load(Ordering::SeqCst),
        "order-status read uncommitted new-order data"
    );

    // Finish the new-order; commit releases the pins and unblocks the reader.
    loop {
        let outcome = {
            let mut ctx = StepCtx::new(&shared, &*sys.acc, &mut txn, WaitMode::Block);
            let i = ctx.txn().step_index;
            no.step(i, &mut ctx).expect("new-order line step")
        };
        match outcome {
            StepOutcome::Continue => {
                acc_txn::runner::end_step(&shared, &*sys.acc, &mut txn, no.work_area());
            }
            StepOutcome::Done => {
                acc_txn::runner::commit(&shared, &mut txn).unwrap();
                break;
            }
            StepOutcome::Abort => panic!("unexpected abort"),
        }
    }
    let (out, slow_last) = ost_handle.join().expect("order-status thread");
    assert!(ost_done.load(Ordering::SeqCst));
    assert!(matches!(out, RunOutcome::Committed { .. }));
    // The blocked reader resumed after commit, so it sees the new order.
    assert_ne!(
        slow_last, committed_last,
        "the post-commit read should include the freshly committed order"
    );

    let log = EventLog::capture(&sink);
    assert!(
        log.any(|e| matches!(
            e,
            Event::VersionRead { table, .. } if *table == tpcc::schema::TABLES.order
        )),
        "no version-read event recorded for the fast reader"
    );
    assert!(
        log.any(|e| matches!(
            e,
            Event::InterferenceHit { step_type, template, .. }
                if *step_type == step::OST && *template == DIRTY
        )),
        "no interference-table hit recorded for the committed reader"
    );
    assert!(
        log.any(|e| matches!(
            e,
            Event::LockWait {
                compensating: false,
                blocked_by_assertion: true,
                ..
            }
        )),
        "order-status never waited on the assertional pin"
    );
    log.assert_writes_respect_assertions(|s, t| sys.tables.write_interferes(s, t));
}

/// The same district conflict under strict 2PL: new-order's held X on the
/// district page serializes payment behind the whole transaction.
#[test]
fn district_conflict_serializes_under_2pl() {
    let sys = tpcc::TpccSystem::build();
    let shared = fresh_shared(&sys, 5);
    let sink = EventSink::enabled(4096);
    shared.set_event_sink(Arc::clone(&sink));

    // In-flight undecomposed new-order: after its first program step it
    // holds conventional locks (district X among them) until commit.
    let mut no = tpcc::txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 1,
        c_id: 2,
        lines: vec![OrderLineInput {
            i_id: 1,
            supply_w_id: 1,
            qty: 3,
        }],
        rollback: false,
    });
    let mut txn = Transaction::new(
        shared.begin_txn(tpcc::decompose::ty::NEW_ORDER),
        tpcc::decompose::ty::NEW_ORDER,
    );
    {
        let mut ctx = StepCtx::new(&shared, &TwoPhase, &mut txn, WaitMode::Block);
        no.step(0, &mut ctx).expect("new-order first step");
    }

    // Payment on the same district must block (here: fail fast).
    let mut pay = tpcc::txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 1,
        c_d_id: 1,
        customer: CustomerSelector::ById(1),
        amount: Decimal::from_int(7),
    });
    let err = run(&shared, &TwoPhase, &mut pay, WaitMode::Fail)
        .expect_err("payment must block behind 2PL's district lock");
    assert!(matches!(err, Error::WouldBlock { .. }));

    // A read-only order-status is no better off: 2PL has no version-read
    // path, so its order lookup needs S against new-order's held X and
    // blocks for the whole transaction.
    let mut ost = tpcc::txns::OrderStatus::new(OrderStatusInput {
        w_id: 1,
        d_id: 1,
        customer: CustomerSelector::ById(2),
    });
    let err = run(&shared, &TwoPhase, &mut ost, WaitMode::Fail)
        .expect_err("order-status must block behind 2PL's order locks");
    assert!(matches!(err, Error::WouldBlock { .. }));

    let c = sink.counters();
    assert!(c.lock_waits >= 1, "the conflict never produced a wait");
    assert_eq!(c.assertion_pins, 0, "2PL pins no assertions");
    assert_eq!(c.interference_hits, 0);
    assert!(
        EventLog::capture(&sink).any(|e| matches!(
            e,
            Event::LockWait { kind, blocked_by_assertion: false, .. } if kind.is_write_mode()
        )),
        "expected a conventional write-write wait"
    );
    // Roll the new-order back; the same payment now goes through untouched.
    acc_txn::runner::rollback(&shared, &TwoPhase, &mut no, &mut txn).expect("rollback");
    let mut pay2 = tpcc::txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 1,
        c_d_id: 1,
        customer: CustomerSelector::ById(1),
        amount: Decimal::from_int(7),
    });
    let out = run(&shared, &TwoPhase, &mut pay2, WaitMode::Fail).expect("payment after release");
    assert!(matches!(out, RunOutcome::Committed { .. }));
}
