//! The semantic-correctness oracle (paper §3.1–§3.3).
//!
//! The ACC's guarantee is: *the precondition of a step is true when the step
//! is initiated*. Under the paper's implemented variant — assertional locks
//! acquired dynamically with conventional locks — "initiated" means the
//! moment the step first touches the items the assertion references: an
//! attempt whose precondition does not hold blocks right there (on the
//! writer's guard pin) and is retried; it never gets to *observe* a false
//! precondition. The faithful oracle therefore evaluates `bill`'s
//! precondition `I1(o)` from inside the step, through the step's own reads:
//! every bill that completes must have seen its precondition satisfied, over
//! many seeded interleavings, plus the consistency constraint at quiescence.
//!
//! To show the oracle has teeth, the scheduler hook also records that `I1`
//! *was* violated for in-flight orders at other moments during the run
//! (new-order breaks it between steps by design); the ACC's job is keeping
//! those moments away from the transactions whose preconditions need `I1`.

use assertional_acc::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

const COUNTERS: TableId = TableId(0);
const ORDERS: TableId = TableId(1);
const STOCK: TableId = TableId(2);
const LINES: TableId = TableId(3);

const NO_S1: StepTypeId = StepTypeId(1);
const NO_S2: StepTypeId = StepTypeId(2);
const BILL_S: StepTypeId = StepTypeId(3);
const NO_CS: StepTypeId = StepTypeId(4);
const TY_NEW_ORDER: TxnTypeId = TxnTypeId(1);
const TY_BILL: TxnTypeId = TxnTypeId(2);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("counters")
            .column("id", ColumnType::Int)
            .column("value", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("orders")
            .column("order_id", ColumnType::Int)
            .column("num_items", ColumnType::Int)
            .column("billed", ColumnType::Bool)
            .key(&["order_id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("stock")
            .column("item_id", ColumnType::Int)
            .column("level", ColumnType::Int)
            .key(&["item_id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("orderlines")
            .column("order_id", ColumnType::Int)
            .column("line_no", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("filled", ColumnType::Int)
            .key(&["order_id", "line_no"])
            .rows_per_page(1)
            .build(),
    );
    c
}

/// `I1(o)`: order `o` exists and its declared item count equals its actual
/// line count.
fn i1_holds(db: &Database, o: i64) -> bool {
    let Some((_, order)) = db.table(ORDERS).unwrap().get(&Key::ints(&[o])) else {
        return false;
    };
    let lines = db
        .table(LINES)
        .unwrap()
        .scan_prefix(&Key::ints(&[o]))
        .count() as i64;
    order.int(1) == lines
}

struct NewOrder {
    items: Vec<i64>,
    o_num: Option<i64>,
}

impl TxnProgram for NewOrder {
    fn txn_type(&self) -> TxnTypeId {
        TY_NEW_ORDER
    }
    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        if i == 0 {
            let counter = ctx
                .read_for_update(COUNTERS, &Key::ints(&[0]))?
                .expect("counter");
            let o = counter.int(1);
            ctx.update_key(COUNTERS, &Key::ints(&[0]), |r| {
                r.set(1, Value::Int(o + 1));
            })?;
            self.o_num = Some(o);
            ctx.insert(
                ORDERS,
                Row(vec![
                    Value::Int(o),
                    Value::Int(self.items.len() as i64),
                    Value::Bool(false),
                ]),
            )?;
            return Ok(StepOutcome::Continue);
        }
        let idx = (i - 1) as usize;
        let item = self.items[idx];
        let o = self.o_num.expect("step 0 ran");
        let stock = ctx
            .read_for_update(STOCK, &Key::ints(&[item]))?
            .expect("stock row");
        let fill = stock.int(1).min(2);
        ctx.update_key(STOCK, &Key::ints(&[item]), |r| {
            let level = r.int(1);
            r.set(1, Value::Int(level - fill));
        })?;
        ctx.insert(
            LINES,
            Row(vec![
                Value::Int(o),
                Value::Int(i as i64),
                Value::Int(item),
                Value::Int(fill),
            ]),
        )?;
        Ok(if idx + 1 == self.items.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let o = self.o_num.expect("compensating after step 0");
        for line_no in (1..steps_completed as i64).rev() {
            if let Some(line) = ctx.read_for_update(LINES, &Key::ints(&[o, line_no]))? {
                let (item, fill) = (line.int(2), line.int(3));
                ctx.update_key(STOCK, &Key::ints(&[item]), |r| {
                    let level = r.int(1);
                    r.set(1, Value::Int(level + fill));
                })?;
                ctx.delete_key(LINES, &Key::ints(&[o, line_no]))?;
            }
        }
        ctx.delete_key(ORDERS, &Key::ints(&[o]))?;
        Ok(())
    }
}

struct Bill {
    o_num: i64,
    /// Shared sink: every *completed* observation `(order, precondition_ok)`
    /// this bill made through its own (assertionally locked) reads.
    observations: Rc<RefCell<Vec<(i64, bool)>>>,
}

impl TxnProgram for Bill {
    fn txn_type(&self) -> TxnTypeId {
        TY_BILL
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        // Precondition: I1(o), observed through the step's own reads. The
        // first read pins A(I1) on the order row — if an in-flight new-order
        // still owns it, this read blocks and the attempt is retried, so a
        // completing bill can only ever observe a true precondition.
        let Some(order) = ctx.read(ORDERS, &Key::ints(&[self.o_num]))? else {
            return Ok(StepOutcome::Done); // order never entered this run
        };
        let declared = order.int(1);
        let lines = ctx.scan_prefix(LINES, &Key::ints(&[self.o_num]))?.len() as i64;
        self.observations
            .borrow_mut()
            .push((self.o_num, declared == lines));
        ctx.update_key(ORDERS, &Key::ints(&[self.o_num]), |r| {
            r.set(2, Value::Bool(true));
        })?;
        Ok(StepOutcome::Done)
    }
}

fn build_system() -> (Arc<SharedDb>, Arc<Acc>) {
    let mut reg = AssertionRegistry::new();
    let i1 = reg.define(
        "I1",
        vec![
            TableFootprint::columns(ORDERS, [1]),
            TableFootprint::rows(LINES, []),
        ],
        None,
    );
    let no_loop = reg.define(
        "no-loop",
        vec![
            TableFootprint::columns(ORDERS, [1]),
            TableFootprint::rows(LINES, []),
        ],
        None,
    );
    let (tables, _) = Analysis::new(&reg)
        .step(StepFootprint::new(
            NO_S1,
            "no-s1",
            vec![
                TableFootprint::columns(COUNTERS, [1]),
                TableFootprint::rows(ORDERS, [0, 1, 2]),
            ],
        ))
        .step(StepFootprint::new(
            NO_S2,
            "no-s2",
            vec![
                TableFootprint::rows(LINES, [0, 1, 2, 3]),
                TableFootprint::columns(STOCK, [1]),
            ],
        ))
        .step(StepFootprint::new(
            BILL_S,
            "bill",
            vec![TableFootprint::columns(ORDERS, [2])],
        ))
        .step(StepFootprint::new(
            NO_CS,
            "no-cs",
            vec![
                TableFootprint::rows(ORDERS, []),
                TableFootprint::rows(LINES, []),
                TableFootprint::columns(STOCK, [1]),
            ],
        ))
        .declare_safe(NO_S1, no_loop, "unique order ids")
        .declare_safe(NO_S2, no_loop, "own order's lines; stock deltas commute")
        .declare_safe(NO_CS, no_loop, "own rows only")
        .declare_safe(NO_S1, DIRTY, "counter increments commute")
        .declare_safe(NO_S2, DIRTY, "stock decrements commute; fresh keys")
        .declare_safe(NO_CS, DIRTY, "restock commutes")
        .build();

    let registry = Arc::new(reg);
    let acc = Arc::new(Acc::new(
        Arc::clone(&registry),
        vec![
            TxnSpec {
                txn_type: TY_NEW_ORDER,
                name: "new-order".into(),
                steps: vec![
                    StepSpec {
                        step_type: NO_S1,
                        active: vec![no_loop],
                    },
                    StepSpec {
                        step_type: NO_S2,
                        active: vec![no_loop],
                    },
                ],
                overflow: Some(1),
                comp_step: Some(NO_CS),
                guard: DIRTY,
                version_safe: false,
            },
            TxnSpec {
                txn_type: TY_BILL,
                name: "bill".into(),
                steps: vec![StepSpec {
                    step_type: BILL_S,
                    active: vec![i1],
                }],
                overflow: None,
                comp_step: None,
                guard: DIRTY,
                version_safe: false,
            },
        ],
    ));

    let mut db = Database::new(&catalog());
    db.table_mut(COUNTERS)
        .unwrap()
        .insert(Row(vec![Value::Int(0), Value::Int(1)]))
        .unwrap();
    for item in 0..6i64 {
        db.table_mut(STOCK)
            .unwrap()
            .insert(Row(vec![Value::Int(item), Value::Int(100)]))
            .unwrap();
    }
    (Arc::new(SharedDb::new(db, Arc::new(tables))), acc)
}

#[test]
fn bill_precondition_holds_at_every_step_start_across_seeds() {
    let mut total_bill_starts = 0usize;
    let mut saw_broken_i1_midflight = false;

    for seed in 0..60u64 {
        let (shared, acc) = build_system();
        // 4 new-orders (ids 1..=4) and 4 bills racing them.
        let mut programs: Vec<Box<dyn TxnProgram>> = Vec::new();
        let mut kinds: Vec<Option<i64>> = Vec::new(); // Some(o) = bill of o
        for k in 0..4i64 {
            programs.push(Box::new(NewOrder {
                items: vec![k % 6, (k + 1) % 6, (k + 2) % 6],
                o_num: None,
            }));
            kinds.push(None);
        }
        let observations: Rc<RefCell<Vec<(i64, bool)>>> = Rc::new(RefCell::new(Vec::new()));
        for o in 1..=4i64 {
            programs.push(Box::new(Bill {
                o_num: o,
                observations: Rc::clone(&observations),
            }));
            kinds.push(Some(o));
        }

        let bill_starts = RefCell::new(0usize);
        let broken_midflight = RefCell::new(false);
        {
            let mut stepper = Stepper::new(&shared, &*acc);
            let kinds_ref = &kinds;
            stepper.on_step_start = Some(Box::new(|db, program_idx, _step| {
                if kinds_ref[program_idx].is_some() {
                    *bill_starts.borrow_mut() += 1;
                }
                // Teeth check: I1 *is* broken for some in-flight order at
                // some moment (new-order's header precedes its lines).
                for o in 1..=4i64 {
                    if db.table(ORDERS).unwrap().get(&Key::ints(&[o])).is_some() && !i1_holds(db, o)
                    {
                        *broken_midflight.borrow_mut() = true;
                    }
                }
            }));
            stepper
                .run_all(
                    &mut programs,
                    &StepperConfig {
                        seed,
                        max_resubmits: 30,
                    },
                )
                .unwrap();
        }
        // The oracle proper: every bill observation — including ones from
        // step attempts that were later undone and retried — saw I1 hold.
        for (o, ok) in observations.borrow().iter() {
            assert!(
                ok,
                "seed {seed}: bill({o}) observed a violated precondition"
            );
        }
        total_bill_starts += *bill_starts.borrow();
        saw_broken_i1_midflight |= *broken_midflight.borrow();

        // Quiescence: the consistency constraint holds for every order.
        let db = shared.snapshot_db();
        for (_, order) in db.table(ORDERS).unwrap().iter() {
            assert!(i1_holds(&db, order.int(0)), "seed {seed}");
        }
        assert_eq!(shared.total_grants(), 0);
    }

    assert!(total_bill_starts >= 60 * 4, "bills actually ran");
    assert!(
        saw_broken_i1_midflight,
        "the oracle never observed a mid-flight I1 violation — the check is vacuous"
    );
}
